#!/usr/bin/env python3
"""Site-map construction — a paper Section 1 motivating application.

Builds the map of a synthetic documentation domain by shipping a single
structural query; only the link lists travel over the network.  For
contrast, the same map is derived centrally (data shipping) and the wire
economics of both approaches are printed side by side.

Run:
    python examples/sitemap_builder.py
"""

from repro.apps import build_site_map
from repro.apps.sitemap import site_map_disql
from repro.baselines import DataShippingEngine
from repro.web import SyntheticWebConfig, build_synthetic_web
from repro.web.synthetic import synthetic_start_url


def main() -> None:
    config = SyntheticWebConfig(
        sites=6, pages_per_site=5, local_out_degree=2, global_out_degree=1,
        padding_words=300, seed=2000,
    )
    web = build_synthetic_web(config)
    start = synthetic_start_url(config)

    site_map = build_site_map(web, start, depth=6, include_global=True)
    print(site_map.render())
    print()
    print(f"pages mapped        : {len(site_map.pages)}")
    print(f"edges recorded      : {len(site_map.edges)}")
    print(f"bytes (query ship)  : {site_map.bytes_on_wire}")

    # The centralized alternative must download every document it maps.
    ds = DataShippingEngine(web)
    ds.run_query(site_map_disql(start, depth=6, include_global=True))
    print(f"bytes (data ship)   : {ds.stats.bytes_sent} "
          f"({ds.stats.documents_shipped} documents downloaded)")
    ratio = ds.stats.bytes_sent / max(1, site_map.bytes_on_wire)
    print(f"traffic ratio       : {ratio:.1f}x in favour of query shipping")


if __name__ == "__main__":
    main()
