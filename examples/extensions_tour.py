#!/usr/bin/env python3
"""A tour of the paper's Section 7.1 future work, implemented.

Three extensions on one small web:

1. **approximate queries** — ``contains~1`` finds a convener whose page
   misspells the word;
2. **multi-document node-queries** — a second ``document`` alias ranging
   sitewide joins each matching page with its site's contact page;
3. **explain** — the compiled query shown in the paper's formalism
   ``Q = S p1 q1 ...``.

Run:
    python examples/extensions_tour.py
"""

from repro import WebDisEngine, compile_disql
from repro.disql import explain_webquery
from repro.web.builders import WebBuilder

QUERY = """
select d.url, r.text, e.url
from document d such that "http://labs.example/" L*1 d,
     relinfon r such that r.delimiter = "hr",
     document e such that sitewide
where r.text contains~1 "convener" and e.title contains "contact"
"""


def build_web():
    builder = WebBuilder()
    site = builder.site("labs.example")
    site.page(
        "/",
        title="Laboratory index",
        links=[("systems", "/systems.html"), ("theory", "/theory.html"),
               ("contact", "/contact.html")],
    )
    # Note the typo: "convenor".
    site.page("/systems.html", title="Systems Lab", ruled=["CONVENOR Prof. Rao"])
    site.page("/theory.html", title="Theory Lab", ruled=["Chair Prof. Iyer"])
    site.page("/contact.html", title="Contact the office",
              paragraphs=["office@labs.example"])
    return builder.build()


def main() -> None:
    web = build_web()

    print("=== the compiled web-query (paper formalism) ===")
    print(explain_webquery(compile_disql(QUERY)))

    engine = WebDisEngine(web)
    handle = engine.run_query(QUERY)

    print("=== results ===")
    for row in handle.unique_rows():
        print(" ", dict(zip(row.header, row.values)))
    print()
    print("contains~1 matched the misspelled 'CONVENOR'; the sitewide alias")
    print("joined the match with the site's contact page; the Theory Lab")
    print("('Chair', two edits away) was correctly excluded.")


if __name__ == "__main__":
    main()
