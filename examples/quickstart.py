#!/usr/bin/env python3
"""Quickstart: run the paper's example query 2 on the campus web replica.

This is the smallest complete WEBDIS program: build a simulated web, stand
up a distributed deployment (one query-server per site), ship a DISQL query
to its start node, and read the results back — reproducing the paper's
Figure 8 results table.

Run:
    python examples/quickstart.py
"""

from repro import WebDisEngine
from repro.web import build_campus_web
from repro.web.campus import CAMPUS_QUERY_DISQL


def main() -> None:
    web = build_campus_web()
    engine = WebDisEngine(web)

    print("DISQL query:")
    print(CAMPUS_QUERY_DISQL.strip())
    print()

    handle = engine.run_query(CAMPUS_QUERY_DISQL)

    print(handle.display_table())
    print()
    print(f"status            : {handle.status.value}")
    print(f"response time     : {handle.response_time():.3f} simulated seconds")
    print(f"messages on wire  : {engine.stats.messages_sent}")
    print(f"bytes on wire     : {engine.stats.bytes_sent}")
    print(f"documents shipped : {engine.stats.documents_shipped}  (query shipping moves none)")


if __name__ == "__main__":
    main()
