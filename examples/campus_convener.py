#!/usr/bin/env python3
"""The paper's sample execution in full: traversal trace + results.

Reproduces Section 5: the query starts at the CSA department homepage,
follows one local link to the Laboratories page (the only page whose title
contains "lab"), hops one global link to each lab homepage, and within one
more local link finds each lab's convener — set off by a horizontal rule.

The printed trace is the textual analogue of the paper's Figure 7 (query
states as it migrates) and the results table is Figure 8.

Run:
    python examples/campus_convener.py
"""

from repro import WebDisEngine
from repro.web import build_campus_web
from repro.web.campus import CAMPUS_QUERY_DISQL


def main() -> None:
    engine = WebDisEngine(build_campus_web(), trace=True)
    handle = engine.run_query(CAMPUS_QUERY_DISQL)

    print("=== Traversal of the query (Figure 7 analogue) ===")
    print(engine.tracer.render())
    print()

    print("=== Results of the query (Figure 8 analogue) ===")
    print(handle.display_table())
    print()

    answered = [e for e in engine.tracer.events if e.action == "answered"]
    failed = [e for e in engine.tracer.events if e.action == "failed"]
    print(f"node-queries answered: {len(answered)}, failed (dead ends): {len(failed)}")
    print(f"query completed at t={handle.completion_time:.3f}s "
          f"(CHT detected completion exactly; no timeouts involved)")


if __name__ == "__main__":
    main()
