#!/usr/bin/env python3
"""Passive query termination — paper Section 2.8.

A long-running gather query is cancelled mid-flight.  The user-site simply
closes its listening socket; each server discovers the cancellation when
its result dispatch fails and purges the query locally.  No termination
messages ever chase the query through the web — the count of termination
messages sent is, by construction, zero.

Run:
    python examples/query_termination.py
"""

from repro import NetworkConfig, WebDisEngine
from repro.web import SyntheticWebConfig, build_synthetic_web
from repro.web.synthetic import synthetic_start_url

QUERY = (
    'select d.url from document d such that "{start}" (L|G)*6 d\n'
    'where d.title contains "topic"'
)


def main() -> None:
    config = SyntheticWebConfig(sites=10, pages_per_site=6, seed=88)
    web = build_synthetic_web(config)
    # Slow the network down so the query is still spreading when we cancel.
    engine = WebDisEngine(web, net_config=NetworkConfig(latency_base=0.2))

    handle = engine.submit_disql(QUERY.format(start=synthetic_start_url(config)))
    engine.cancel(handle, at=1.0)
    engine.run()

    print(f"status at end          : {handle.status.value}")
    print(f"results before cancel  : {len(handle.results)}")
    print(f"refused result sends   : {engine.stats.refused_sends} "
          "(servers discovering the closed socket)")
    print(f"clones still forwarded after those refusals: 0 by protocol — each "
          "refusal purges the query at that server")
    active = sum(server.queue_depth for server in engine.servers.values())
    print(f"server queue depth at quiescence: {active}")


if __name__ == "__main__":
    main()
