#!/usr/bin/env python3
"""Automated StartNode resolution from a search index (paper §1.1, §7.1).

The paper assumes StartNodes come "from either the user's domain knowledge
or from existing search-indices".  This example shows the automated path:
crawl the campus web once into a TF-IDF index, resolve the keyword
"laboratories" to StartNodes, and ship the convener query from there —
without the user knowing any URL at all.

Run:
    python examples/search_index_starts.py
"""

from repro import WebDisEngine
from repro.index import build_index_for_web, resolve_start_nodes
from repro.web import build_campus_web


def main() -> None:
    web = build_campus_web()

    index = build_index_for_web(web)
    print(f"indexed {index.document_count} documents, "
          f"{index.vocabulary_size} distinct terms")

    starts = resolve_start_nodes(index, "laboratories CSA", k=1)
    print(f"StartNodes resolved for 'laboratories CSA': {starts}")

    start_clause = " | ".join(f'"{s}"' for s in starts)
    disql = (
        "select d.url, d.title, r.text\n"
        f"from document d such that {start_clause} G.(L*1) d,\n"
        '     relinfon r such that r.delimiter = "hr"\n'
        'where r.text contains "convener"'
    )
    print("\nshipped DISQL:\n" + disql + "\n")

    engine = WebDisEngine(web)
    handle = engine.run_query(disql)
    print(handle.display_table())
    print(f"\nmessages: {engine.stats.messages_sent}, "
          f"bytes: {engine.stats.bytes_sent}, documents shipped: 0")


if __name__ == "__main__":
    main()
