#!/usr/bin/env python3
"""Floating-link detection — the maintenance task of paper Section 1.2.

A synthetic web is generated with a fraction of deliberately dangling
hyperlinks; the detector gathers the hyperlink inventory with one shipped
query and probes each target.

Run:
    python examples/link_maintenance.py
"""

from repro.apps import find_floating_links
from repro.web import SyntheticWebConfig, build_synthetic_web
from repro.web.synthetic import synthetic_start_url


def main() -> None:
    config = SyntheticWebConfig(
        sites=5, pages_per_site=4, local_out_degree=2, global_out_degree=2,
        floating_fraction=0.15, seed=404,
    )
    web = build_synthetic_web(config)

    report = find_floating_links(
        web, synthetic_start_url(config), depth=6, include_global=True
    )
    print(report.render())
    print()
    print(f"bytes on wire: {report.bytes_on_wire} "
          "(the documents themselves never travelled)")
    if not report.ok:
        rate = 100.0 * len(report.floating) / report.links_checked
        print(f"floating-link rate: {rate:.1f}%")


if __name__ == "__main__":
    main()
