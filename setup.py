"""Setup shim: enables legacy editable installs where the `wheel` package
(required by PEP 660 builds) is unavailable."""

from setuptools import setup

setup()
