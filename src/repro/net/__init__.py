"""The network layer: one transport seam, two substrates.

The original WEBDIS ran over TCP sockets between campus web-servers.  The
protocols here talk to the network only through the
:class:`~repro.net.transport.Transport` seam, which has two
implementations:

* :mod:`repro.net.network` + :mod:`repro.net.simclock` — a deterministic
  discrete-event simulator (virtual time, FIFO ties, latency + bandwidth
  cost model, byte-accounted delivery, failure injection).  The default:
  tier-1 tests, DST and the benches run here (DESIGN.md Section 2).
* :mod:`repro.net.aio` — real TCP sockets on an asyncio event loop
  (length-prefixed frames, per-peer connections, connect/read timeouts),
  with :mod:`repro.net.chaos` mapping the fault DSL onto in-path
  socket-level chaos.

Shared layers, identical over either substrate:

* :mod:`repro.net.stats` — traffic counters shared by all engines;
* :mod:`repro.net.reliable` — retry/backoff channel over transient faults;
* :mod:`repro.net.faults` — seeded, composable fault-plan DSL.
"""

from .faults import FaultPlan
from .network import (
    FIRST_RESULT_PORT,
    HELPER_PORT,
    QUERY_PORT,
    Listener,
    Network,
    NetworkConfig,
    Payload,
    SendOutcome,
)
from .reliable import ReliableChannel, RetryPolicy
from .simclock import SimClock
from .stats import TrafficStats
from .transport import Clock, Transport, refusal_outcome

__all__ = [
    "Clock",
    "FIRST_RESULT_PORT",
    "FaultPlan",
    "HELPER_PORT",
    "Listener",
    "Network",
    "NetworkConfig",
    "Payload",
    "QUERY_PORT",
    "ReliableChannel",
    "RetryPolicy",
    "SendOutcome",
    "SimClock",
    "TrafficStats",
    "Transport",
    "refusal_outcome",
]
