"""Deterministic discrete-event network simulation.

The original WEBDIS ran over TCP sockets between campus web-servers.  This
package replaces that substrate with a discrete-event simulator so the
protocols become deterministic, measurable and failure-injectable:

* :mod:`repro.net.simclock` — the event loop (virtual time, FIFO ties);
* :mod:`repro.net.network` — sites, listening ports, latency + bandwidth
  cost model, byte-accounted delivery, failure injection;
* :mod:`repro.net.stats` — traffic counters shared by all engines;
* :mod:`repro.net.reliable` — retry/backoff channel over transient faults;
* :mod:`repro.net.faults` — seeded, composable fault-plan DSL.

The WEBDIS protocols only depend on message *ordering* and *connect
success/failure* semantics, both of which are reproduced here (DESIGN.md
Section 2).
"""

from .faults import FaultPlan
from .network import Listener, Network, NetworkConfig, Payload, SendOutcome
from .reliable import ReliableChannel, RetryPolicy
from .simclock import SimClock
from .stats import TrafficStats

__all__ = [
    "FaultPlan",
    "Listener",
    "Network",
    "NetworkConfig",
    "Payload",
    "ReliableChannel",
    "RetryPolicy",
    "SendOutcome",
    "SimClock",
    "TrafficStats",
]
