"""The transport seam: what the WEBDIS protocols require from a network.

Every protocol component — :class:`~repro.core.server.QueryServer`,
:class:`~repro.core.client.UserSiteClient`,
:class:`~repro.net.reliable.ReliableChannel` — talks to the network through
this small surface: register sites, open/close listening ports, send a
payload to ``(site, port)`` and learn the connect's
:class:`~repro.net.network.SendOutcome`.  Two implementations exist:

* :class:`~repro.net.network.Network` — the deterministic discrete-event
  simulator (``synchronous = True``: the connect outcome is returned from
  ``send`` itself, and delivery rides the :class:`~repro.net.simclock.SimClock`);
* :class:`~repro.net.aio.AsyncioTransport` — real TCP sockets on an asyncio
  event loop (``synchronous = False``: ``send`` returns
  :data:`~repro.net.network.SendOutcome.IN_FLIGHT` and the real outcome —
  resolved by an actual connect, a framed write and a one-byte delivery
  ack — arrives later through the ``on_outcome`` callback).

Both implementations deliver messages to listeners as ``(src_site,
payload)`` and settle every send with exactly one final outcome, so the
protocol layer is transport-agnostic: the same :class:`ReliableChannel`
retry/backoff, the same Figure-3 dispatch-before-forward ordering, the same
self-healing supervisor run unchanged over either backend.

Refusal classification on real sockets
--------------------------------------

The simulator knows authoritatively whether a refused connect means
"nothing listens on that port" (REFUSED — the active passive-termination
signal, §2.8) or "the host is down" (HOST_DOWN — transient, retryable).  A
raw TCP stack reports both as ``ECONNREFUSED``, so the real backend applies
a *port-role* policy, :func:`refusal_outcome`:

* daemon ports (:data:`~repro.net.network.QUERY_PORT`,
  :data:`~repro.net.network.HELPER_PORT`) are expected to be listening for
  as long as their host is up, so a refused connect there means the server
  process is down — ``HOST_DOWN``, retryable;
* ephemeral result ports (>= :data:`~repro.net.network.FIRST_RESULT_PORT`)
  belong to the user-site client, which closes them *deliberately* to
  signal termination — ``REFUSED``, final, never retried.

This keeps the paper's zero-message termination protocol intact over real
sockets: a query-server whose result dispatch is refused purges the query,
exactly as in the simulator.
"""

from __future__ import annotations

from typing import Callable, Protocol, runtime_checkable

from .network import (
    FIRST_RESULT_PORT,
    HELPER_PORT,
    QUERY_PORT,
    Listener,
    Payload,
    SendOutcome,
)
from .stats import TrafficStats

__all__ = ["Clock", "Transport", "DAEMON_PORTS", "refusal_outcome"]

#: Ports expected to be bound whenever their host process is alive.
DAEMON_PORTS = frozenset({QUERY_PORT, HELPER_PORT})


def refusal_outcome(port: int) -> SendOutcome:
    """Classify a refused connect by the destination port's protocol role.

    See the module docstring: daemon ports refuse only when their process
    is down (``HOST_DOWN``); result ports refuse because the user-site
    closed them on purpose (``REFUSED`` — termination, never retried).
    Ports below :data:`FIRST_RESULT_PORT` that are not daemon ports get the
    conservative transient reading.
    """
    if port in DAEMON_PORTS:
        return SendOutcome.HOST_DOWN
    if port >= FIRST_RESULT_PORT:
        return SendOutcome.REFUSED
    return SendOutcome.HOST_DOWN


class Clock(Protocol):
    """What the protocol layer needs from a clock.

    :class:`~repro.net.simclock.SimClock` implements it over virtual time;
    :class:`~repro.net.aio.LoopClock` over the asyncio event loop's wall
    clock.  Timers are fire-and-forget: the protocols guard staleness with
    epochs, not by cancelling callbacks.
    """

    @property
    def now(self) -> float: ...

    def schedule(self, delay: float, callback: Callable[[], None]) -> None: ...

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None: ...


@runtime_checkable
class Transport(Protocol):
    """The message fabric between sites, simulated or real.

    ``synchronous`` declares whether ``send`` resolves the connect outcome
    before returning (the simulator) or settles it later through
    ``on_outcome`` (real sockets, returning
    :data:`~repro.net.network.SendOutcome.IN_FLIGHT` immediately).  Either
    way ``on_outcome`` — when supplied — fires exactly once per send with
    the final connect outcome; callers that need the outcome must use the
    callback, not the return value, to stay backend-agnostic.
    """

    synchronous: bool
    stats: TrafficStats

    def register_site(self, site: str) -> None: ...

    @property
    def sites(self) -> frozenset[str]: ...

    def listen(self, site: str, port: int, listener: Listener) -> None: ...

    def close(self, site: str, port: int) -> None: ...

    def is_listening(self, site: str, port: int) -> bool: ...

    def set_admission(
        self, site: str, port: int, probe: Callable[[str, Payload], bool] | None
    ) -> None: ...

    def send(
        self,
        src: str,
        dst: str,
        port: int,
        payload: Payload,
        *,
        on_outcome: Callable[[SendOutcome], None] | None = None,
    ) -> SendOutcome: ...
