"""The simulated network: sites, listeners, latency, failures.

Semantics mirror what the WEBDIS protocols rely on:

* ``send`` models a TCP connect + transfer.  The *connect* outcome is known
  synchronously (this is what Figure 3's "if dispatch of results is
  successful" tests, and what passive termination exploits when the
  user-site closes its listening socket); the *delivery* happens after the
  modelled latency.
* The connect outcome is a :class:`SendOutcome`, not a bare bool, because
  the protocols assign opposite meanings to different failures: a REFUSED
  connect is an *active* signal (the peer is up but not listening — passive
  termination, or a non-participating site), while HOST_DOWN and FAULT are
  *transient* conditions that a reliability layer may retry
  (:mod:`repro.net.reliable`).  Retrying a REFUSED connect is forbidden —
  it would erase the paper's zero-message termination protocol (§2.8).
* Every site hosts listeners on numbered ports.  Query-servers all listen on
  the common :data:`QUERY_PORT`; each user query opens its own result port.
* Failure injection: one-shot scheduled failures (optionally per port), a
  port-aware fault injector (see :mod:`repro.net.faults` for the composable
  plan DSL), and whole-site crash/recovery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Mapping, Protocol

from ..errors import NetworkError, SimulationError
from .simclock import SimClock
from .stats import TrafficStats

__all__ = [
    "Payload",
    "Listener",
    "NetworkConfig",
    "Network",
    "SendOutcome",
    "QUERY_PORT",
    "HELPER_PORT",
    "FIRST_RESULT_PORT",
]

#: The "common pre-specified port number" all query-servers listen on (§4.4).
QUERY_PORT = 4000

#: Port of the user-site central helper (hybrid engine, paper §7.1).
HELPER_PORT = 4500

#: First per-query result port the user-site client allocates (Figure 2's
#: ``receive_results`` socket).  Everything at or above this is an
#: ephemeral, query-scoped port; the real transport's refusal
#: classification (:func:`repro.net.transport.refusal_outcome`) keys on it.
FIRST_RESULT_PORT = 5000


class SendOutcome(enum.Enum):
    """The synchronously-known result of one connect attempt.

    Truthiness equals "connect succeeded", so legacy ``if network.send(...)``
    call sites keep working; callers that must tell termination apart from
    faults test the named predicates instead.
    """

    #: Connect succeeded; delivery is scheduled after the transfer time.
    DELIVERED = "delivered"
    #: The destination host is up but nothing listens on the port.  This is
    #: an *active* refusal — the termination signal — and must never be
    #: retried.
    REFUSED = "refused"
    #: The destination host is crashed or unknown; connect timed out.
    HOST_DOWN = "host-down"
    #: A transient network fault broke this particular connect.
    FAULT = "fault"
    #: The destination accepted the connect but refused to *admit* the
    #: payload: its queues are at their configured ceiling (admission
    #: control).  Transient — the sender's reliability layer retries with
    #: backoff, which is the backpressure.  Distinct from REFUSED: an
    #: overloaded server is alive and still working the query; a refused
    #: connect is the §2.8 termination signal and must never be retried.
    OVERLOADED = "overloaded"
    #: The sending process gave the send up before it could settle — its
    #: channel was reset (process crash, query cancellation).  Terminal:
    #: the payload was never delivered and no further attempt will be made.
    ABANDONED = "abandoned"
    #: Returned (never delivered to callbacks) by *deferred* transports —
    #: real sockets cannot know the connect outcome synchronously, so
    #: ``send`` returns this placeholder and the final outcome arrives via
    #: the ``on_outcome`` callback.  The simulator never returns it.
    IN_FLIGHT = "in-flight"

    def __bool__(self) -> bool:
        return self is SendOutcome.DELIVERED

    @property
    def delivered(self) -> bool:
        return self is SendOutcome.DELIVERED

    @property
    def refused(self) -> bool:
        return self is SendOutcome.REFUSED

    @property
    def transient(self) -> bool:
        """True for outcomes a retry could plausibly fix."""
        return self in (SendOutcome.HOST_DOWN, SendOutcome.FAULT, SendOutcome.OVERLOADED)


class Payload(Protocol):
    """Anything sendable: must know its serialized size and kind."""

    def size_bytes(self) -> int: ...

    @property
    def kind(self) -> str: ...


Listener = Callable[[str, "Payload"], None]  # (src_site, payload) -> None

#: ``probe(src, payload) -> bool`` — True admits the payload; False turns the
#: connect into :attr:`SendOutcome.OVERLOADED` (admission control).
AdmissionProbe = Callable[[str, "Payload"], bool]

#: ``injector(src, dst, port, now) -> bool`` — True breaks the connect.
FaultInjector = Callable[[str, str, int, float], bool]


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Latency/cost model parameters (abstract seconds and bytes).

    ``latency_base`` is the per-message setup cost; transfer time adds
    ``size / bandwidth``.  ``intra_site_latency`` applies when src == dst
    (loopback); WEBDIS forwards same-site clones without the network at all,
    so this only matters for baselines that centralize processing.

    ``latency_overrides`` replaces the base latency for specific directed
    ``(src, dst)`` pairs — the knob for modelling WAN/LAN asymmetry and for
    forcing *message reordering* in protocol tests (a slow path's report
    can then arrive after its children's reports).

    The timeout fields are the **one policy surface shared by both
    transport backends** (they used to live as scattered literals).  The
    simulator resolves connects synchronously and ignores them; the real
    asyncio backend (:mod:`repro.net.aio`) bounds every TCP connect with
    ``connect_timeout`` and every framed write's delivery ack with
    ``read_timeout`` (both wall-clock seconds), surfacing expiry as the
    transient ``SendOutcome`` the :class:`~repro.net.reliable.RetryPolicy`
    then retries.  ``max_frame_bytes`` caps one framed message on the wire
    (oversized frames abort the connection, see :mod:`repro.wire`).
    """

    latency_base: float = 0.050
    bandwidth: float = 100_000.0  # bytes per simulated second
    intra_site_latency: float = 0.001
    envelope_bytes: int = 64
    latency_overrides: Mapping[tuple[str, str], float] | None = None
    #: TCP connect budget on the real backend (wall seconds); expiry is
    #: HOST_DOWN, exactly like the simulator's crashed-site connects.
    connect_timeout: float = 1.0
    #: Delivery-ack budget per framed message on the real backend (wall
    #: seconds); expiry is FAULT — a transient wire fault, retryable.
    read_timeout: float = 2.0
    #: Per-frame size ceiling on the real backend.
    max_frame_bytes: int = 8 * 1024 * 1024

    def transfer_time(self, src: str, dst: str, size: int) -> float:
        if src == dst:
            return self.intra_site_latency
        base = self.latency_base
        if self.latency_overrides is not None:
            base = self.latency_overrides.get((src, dst), base)
        return base + size / self.bandwidth


class Network:
    """Message fabric between sites."""

    #: The simulator resolves every connect before ``send`` returns; real
    #: transports set this ``False`` and settle through ``on_outcome``.
    synchronous = True

    def __init__(
        self,
        clock: SimClock,
        stats: TrafficStats | None = None,
        config: NetworkConfig | None = None,
    ) -> None:
        self.clock = clock
        self.stats = stats if stats is not None else TrafficStats()
        self.config = config if config is not None else NetworkConfig()
        self._listeners: dict[tuple[str, int], Listener] = {}
        self._admission: dict[tuple[str, int], AdmissionProbe] = {}
        self._sites: set[str] = set()
        self._fail_once: list[tuple[str, str, int | None]] = []
        self._fault_injector: FaultInjector | None = None
        self._down_sites: set[str] = set()
        self._taps: list[Callable[[float, str, str, int, Payload], None]] = []

    def set_tap(self, tap: Callable[[float, str, str, int, "Payload"], None] | None) -> None:
        """Install an observer called for every successfully sent message.

        Used by :class:`repro.journal.ProtocolJournal` to record traffic;
        the tap sees ``(time, src, dst, port, payload)`` and must not
        mutate anything.  Replaces all previously installed taps (legacy
        single-observer semantics); use :meth:`add_tap` to stack observers.
        """
        self._taps = [tap] if tap is not None else []

    def add_tap(self, tap: Callable[[float, str, str, int, "Payload"], None]) -> None:
        """Add an observer alongside any already installed (see :meth:`set_tap`).

        Multiple subsystems — the protocol journal, the DST harness's
        message-log fingerprint — can observe traffic simultaneously; taps
        fire in installation order.
        """
        self._taps.append(tap)

    def remove_tap(self, tap: Callable[[float, str, str, int, "Payload"], None]) -> None:
        """Remove a tap previously installed via :meth:`add_tap`/:meth:`set_tap`."""
        self._taps = [t for t in self._taps if t is not tap]

    # -- topology ---------------------------------------------------------

    def register_site(self, site: str) -> None:
        """Declare that ``site`` exists (needed before listening/sending)."""
        self._sites.add(site)

    @property
    def sites(self) -> frozenset[str]:
        return frozenset(self._sites)

    # -- listeners (sockets) ----------------------------------------------

    def listen(self, site: str, port: int, listener: Listener) -> None:
        """Open a listening socket at ``site:port``."""
        if site not in self._sites:
            raise SimulationError(f"unknown site {site!r}; register it first")
        key = (site, port)
        if key in self._listeners:
            raise NetworkError(f"port {port} already bound at {site}")
        self._listeners[key] = listener

    def close(self, site: str, port: int) -> None:
        """Close the socket; later connects to it are refused (termination)."""
        self._listeners.pop((site, port), None)

    def is_listening(self, site: str, port: int) -> bool:
        return (site, port) in self._listeners

    def set_admission(self, site: str, port: int, probe: AdmissionProbe | None) -> None:
        """Install (or clear) an admission probe guarding ``site:port``.

        The probe is consulted after a connect reaches a live listener and
        before any bytes are accounted; rejecting returns
        :attr:`SendOutcome.OVERLOADED` to the sender, whose
        :class:`~repro.net.reliable.ReliableChannel` backs off and retries.
        """
        key = (site, port)
        if probe is None:
            self._admission.pop(key, None)
        else:
            self._admission[key] = probe

    # -- failure injection --------------------------------------------------

    def fail_next(self, src: str, dst: str, port: int | None = None) -> None:
        """Make the next ``src -> dst`` send fail (transient fault).

        With ``port`` given, only a send to that destination port trips the
        fault — necessary when one server talks to another site on several
        ports (e.g. a clone forward on :data:`QUERY_PORT` versus a result
        dispatch on the query's result port): a portless injection could hit
        the wrong one.
        """
        self._fail_once.append((src, dst, port))

    def set_failure_predicate(
        self, predicate: Callable[[str, str, float], bool] | None
    ) -> None:
        """Install ``predicate(src, dst, now) -> bool`` deciding send failures.

        Legacy form of :meth:`set_fault_injector` without port visibility;
        prefer a :class:`repro.net.faults.FaultPlan` for new code.
        """
        if predicate is None:
            self._fault_injector = None
        else:
            self._fault_injector = lambda src, dst, port, now: predicate(src, dst, now)

    def set_fault_injector(self, injector: FaultInjector | None) -> None:
        """Install ``injector(src, dst, port, now) -> bool`` breaking connects."""
        self._fault_injector = injector

    # -- whole-site failures (crash / recovery, §7.1 future work) -----------

    def set_site_down(self, site: str) -> None:
        """Crash ``site``: every connect to it times out (HOST_DOWN) and
        in-flight deliveries to it are lost until :meth:`set_site_up`."""
        if site not in self._sites:
            raise SimulationError(f"cannot crash unregistered site {site!r}")
        self._down_sites.add(site)

    def set_site_up(self, site: str) -> None:
        """Bring ``site`` back; its listeners resume receiving."""
        self._down_sites.discard(site)

    def is_site_up(self, site: str) -> bool:
        return site not in self._down_sites

    def crash_site(self, site: str) -> None:
        """Hard-crash ``site``: mark it down *and* drop all its sockets.

        Unlike :meth:`set_site_down` alone, the site's listening sockets do
        not survive into recovery — a restarted process must re-bind them
        (``QueryServer.restart`` does).  In-flight deliveries are lost.
        """
        self.set_site_down(site)
        for key in [key for key in self._listeners if key[0] == site]:
            del self._listeners[key]

    # -- transfer -----------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        port: int,
        payload: Payload,
        *,
        on_outcome: Callable[[SendOutcome], None] | None = None,
    ) -> SendOutcome:
        """Attempt a connect + transfer of ``payload`` from ``src`` to ``dst:port``.

        Returns the connect's :class:`SendOutcome`.  On DELIVERED, delivery
        to the listener is scheduled after the modelled transfer time (but
        may still be lost if the listener closes or the site crashes before
        it — see :meth:`_deliver`).  The caller decides what each failure
        means; for WEBDIS, REFUSED means "do not forward" / "purge the
        query", while transient outcomes may be retried by a
        :class:`repro.net.reliable.ReliableChannel`.

        ``on_outcome`` is the backend-agnostic way to learn the outcome
        (see :class:`repro.net.transport.Transport`): the simulator invokes
        it inline with the same value it returns, so callers written
        against the deferred contract behave identically here.
        """
        outcome = self._send_impl(src, dst, port, payload)
        if on_outcome is not None:
            on_outcome(outcome)
        return outcome

    def _send_impl(self, src: str, dst: str, port: int, payload: Payload) -> SendOutcome:
        if src not in self._sites:
            raise SimulationError(f"send from unregistered site {src!r}")
        if dst not in self._sites:
            # Unknown destination host: behaves like a DNS failure / connect
            # timeout, which is what forwarding to a nonexistent site hits.
            self.stats.unknown_host_sends += 1
            return SendOutcome.HOST_DOWN
        if dst in self._down_sites:
            self.stats.down_sends += 1
            return SendOutcome.HOST_DOWN
        for index, (fsrc, fdst, fport) in enumerate(self._fail_once):
            if fsrc == src and fdst == dst and (fport is None or fport == port):
                del self._fail_once[index]
                self.stats.failed_sends += 1
                return SendOutcome.FAULT
        if self._fault_injector is not None and self._fault_injector(
            src, dst, port, self.clock.now
        ):
            self.stats.failed_sends += 1
            return SendOutcome.FAULT
        listener = self._listeners.get((dst, port))
        if listener is None:
            self.stats.refused_sends += 1
            return SendOutcome.REFUSED
        probe = self._admission.get((dst, port))
        if probe is not None and not probe(src, payload):
            self.stats.overloaded_sends += 1
            return SendOutcome.OVERLOADED
        size = payload.size_bytes() + self.config.envelope_bytes
        self.stats.record_send(src, payload.kind, size)
        for tap in self._taps:
            tap(self.clock.now, src, dst, port, payload)
        delay = self.config.transfer_time(src, dst, size)
        self.clock.schedule(delay, lambda: self._deliver(src, dst, port, payload))
        return SendOutcome.DELIVERED

    def _deliver(self, src: str, dst: str, port: int, payload: Payload) -> None:
        # The listener may have closed — or the whole site crashed — between
        # connect and delivery; in-flight data is then lost silently.
        if dst in self._down_sites:
            return
        listener = self._listeners.get((dst, port))
        if listener is not None:
            listener(src, payload)
