"""A minimal discrete-event simulation clock.

Events are ``(time, tiebreak, sequence, callback)`` tuples in a binary heap;
the sequence number makes simultaneous events FIFO and the whole simulation
deterministic.  Time is a float in abstract seconds.

Schedule exploration (DST extension): the protocols must be correct under
*any* ordering of simultaneous events, not just the FIFO one this clock
happens to produce.  :meth:`set_tie_breaker` installs a seeded tie-break
jitter — every scheduled event draws a random priority that orders it
against other events at the same virtual time.  The permutation is a pure
function of the seed and the schedule order, so a run with tie-break seed
``s`` replays bit-identically, while different seeds explore different
interleavings (the deterministic-simulation-testing harness in
:mod:`repro.testing` sweeps them to shake out ordering races).
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable

from ..errors import SimulationError

__all__ = ["SimClock"]


class SimClock:
    """The event loop driving one simulation run."""

    def __init__(self, tie_break_seed: int | None = None) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._running = False
        self._tie_rng: random.Random | None = (
            random.Random(tie_break_seed) if tie_break_seed is not None else None
        )
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def set_tie_breaker(self, seed: int | None) -> None:
        """Opt in to seeded permutation of same-time events (None restores FIFO).

        Only events scheduled *after* this call draw a jittered priority;
        call it before driving the simulation for a fully permuted run.
        """
        self._tie_rng = random.Random(seed) if seed is not None else None

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (``delay`` must be >= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        tiebreak = self._tie_rng.random() if self._tie_rng is not None else 0.0
        heapq.heappush(
            self._heap, (self._now + delay, tiebreak, next(self._sequence), callback)
        )

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual ``time`` (must be >= now).

        Validates the absolute time itself — mirroring :meth:`schedule`'s
        delay check — so a caller handing in a stale timestamp gets an error
        naming the offending time instead of a derived negative delay.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} which is in the past (now={self._now})"
            )
        self.schedule(time - self._now, callback)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Execute events until the queue drains (or ``until``/``max_events``).

        Returns the final virtual time.  ``max_events`` is a runaway guard:
        exactly ``max_events`` events may execute; attempting one more raises
        :class:`SimulationError` *before* running it, which in practice means
        an engine is forwarding clones in an unbounded loop.
        """
        if self._running:
            raise SimulationError("SimClock.run is not reentrant")
        self._running = True
        try:
            executed = 0
            while self._heap:
                time, __, ___, callback = self._heap[0]
                if until is not None and time > until:
                    self._now = until
                    break
                if executed >= max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; suspected unbounded forwarding loop"
                    )
                heapq.heappop(self._heap)
                self._now = time
                callback()
                executed += 1
                self.events_executed += 1
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of scheduled, not yet executed events."""
        return len(self._heap)
