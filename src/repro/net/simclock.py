"""A minimal discrete-event simulation clock.

Events are ``(time, sequence, callback)`` triples in a binary heap; the
sequence number makes simultaneous events FIFO and the whole simulation
deterministic.  Time is a float in abstract seconds.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..errors import SimulationError

__all__ = ["SimClock"]


class SimClock:
    """The event loop driving one simulation run."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._running = False
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (``delay`` must be >= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap, (self._now + delay, next(self._sequence), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute virtual ``time`` (>= now)."""
        self.schedule(time - self._now, callback)

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Execute events until the queue drains (or ``until``/``max_events``).

        Returns the final virtual time.  ``max_events`` is a runaway guard:
        exceeding it raises :class:`SimulationError`, which in practice means
        an engine is forwarding clones in an unbounded loop.
        """
        if self._running:
            raise SimulationError("SimClock.run is not reentrant")
        self._running = True
        try:
            executed = 0
            while self._heap:
                time, __, callback = self._heap[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                self._now = time
                callback()
                executed += 1
                self.events_executed += 1
                if executed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; suspected unbounded forwarding loop"
                    )
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def pending(self) -> int:
        """Number of scheduled, not yet executed events."""
        return len(self._heap)
