"""A seeded, composable fault-injection plan DSL.

Tests and chaos benches used to express failure scenarios as ad-hoc
``set_failure_predicate`` lambdas, which cannot be combined, reused or
reproduced across runs.  A :class:`FaultPlan` is a declarative bundle of
fault rules sharing one seeded RNG:

* :meth:`drop` — per-edge drop probability, optionally filtered by source,
  destination, port and a time window;
* :meth:`flaky` — sugar for a guaranteed-drop window on one directed edge;
* :meth:`partition` — all connects crossing between two site groups fail
  during a window (both directions);
* :meth:`crash` — schedule a query-server crash (and optional restart) on
  the engine.

``install`` wires the message rules into the network's port-aware fault
injector and the crash schedule onto the engine.  Every probabilistic
decision draws from ``random.Random(seed)`` in event order, so a plan
replays identically on the deterministic simulator.

Injected message faults surface as ``SendOutcome.FAULT`` — transient, hence
retryable by a :class:`repro.net.reliable.ReliableChannel`; crashes surface
as ``SendOutcome.HOST_DOWN`` while the site is down.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Protocol

from ..errors import SimulationError
from .network import Network

__all__ = ["DropRule", "PartitionRule", "CrashRule", "FaultPlan"]


class _CrashableEngine(Protocol):
    """What :meth:`FaultPlan.install` needs from an engine for crash rules."""

    def crash_server(self, site: str, at: float | None = None) -> None: ...

    def restart_server(self, site: str, at: float | None = None) -> None: ...


@dataclass(frozen=True, slots=True)
class DropRule:
    """Drop matching connects with ``probability`` inside ``[start, end)``."""

    probability: float
    src: str | None = None
    dst: str | None = None
    port: int | None = None
    start: float = 0.0
    end: float | None = None

    def matches(self, src: str, dst: str, port: int, now: float) -> bool:
        return (
            (self.src is None or self.src == src)
            and (self.dst is None or self.dst == dst)
            and (self.port is None or self.port == port)
            and now >= self.start
            and (self.end is None or now < self.end)
        )


@dataclass(frozen=True, slots=True)
class PartitionRule:
    """Sever all connects crossing between two site groups (both ways)."""

    group_a: frozenset[str]
    group_b: frozenset[str]
    start: float = 0.0
    end: float | None = None

    def severs(self, src: str, dst: str, now: float) -> bool:
        if now < self.start or (self.end is not None and now >= self.end):
            return False
        return (src in self.group_a and dst in self.group_b) or (
            src in self.group_b and dst in self.group_a
        )


@dataclass(frozen=True, slots=True)
class CrashRule:
    """Crash ``site``'s query-server at ``at``; restart at ``restart_at``."""

    site: str
    at: float
    restart_at: float | None = None


class FaultPlan:
    """A reproducible bundle of fault rules.  Builder methods chain."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._drops: list[DropRule] = []
        self._partitions: list[PartitionRule] = []
        self._crashes: list[CrashRule] = []

    # -- builders -----------------------------------------------------------

    def drop(
        self,
        probability: float,
        *,
        src: str | None = None,
        dst: str | None = None,
        port: int | None = None,
        start: float = 0.0,
        end: float | None = None,
    ) -> "FaultPlan":
        """Drop matching connects with ``probability`` (0..1)."""
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(f"drop probability must be in [0, 1], got {probability}")
        self._drops.append(DropRule(probability, src, dst, port, start, end))
        return self

    def flaky(
        self,
        src: str | None = None,
        dst: str | None = None,
        *,
        start: float,
        end: float,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """A time window during which the (src, dst) edge is broken."""
        return self.drop(probability, src=src, dst=dst, start=start, end=end)

    def partition(
        self,
        group_a: Iterable[str],
        group_b: Iterable[str],
        *,
        start: float = 0.0,
        end: float | None = None,
    ) -> "FaultPlan":
        """Sever every connect between the two groups during the window."""
        self._partitions.append(
            PartitionRule(frozenset(group_a), frozenset(group_b), start, end)
        )
        return self

    def crash(
        self, site: str, *, at: float, restart_at: float | None = None
    ) -> "FaultPlan":
        """Crash ``site``'s query-server at ``at`` (restarting if asked)."""
        if restart_at is not None and restart_at <= at:
            raise SimulationError(f"restart_at {restart_at} must follow crash at {at}")
        self._crashes.append(CrashRule(site, at, restart_at))
        return self

    # -- rule inspection -----------------------------------------------------
    # Read-only views used by the real-socket backend to translate the plan
    # into chaos-proxy rules and kill/restart schedules (repro.net.chaos).

    @property
    def drops(self) -> tuple[DropRule, ...]:
        return tuple(self._drops)

    @property
    def partitions(self) -> tuple[PartitionRule, ...]:
        return tuple(self._partitions)

    @property
    def crashes(self) -> tuple[CrashRule, ...]:
        return tuple(self._crashes)

    # -- installation --------------------------------------------------------

    def install(self, network: Network, engine: _CrashableEngine | None = None) -> None:
        """Activate the plan: message rules on ``network``, crashes on ``engine``.

        Replaces any previously installed fault injector.  Crash rules need
        the engine (they touch server state, not just the network).
        """
        if self._crashes and engine is None:
            raise SimulationError("a FaultPlan with crash rules needs the engine")
        rng = random.Random(self.seed)
        drops = tuple(self._drops)
        partitions = tuple(self._partitions)

        def injector(src: str, dst: str, port: int, now: float) -> bool:
            for rule in partitions:
                if rule.severs(src, dst, now):
                    return True
            for rule in drops:
                if rule.matches(src, dst, port, now) and rng.random() < rule.probability:
                    return True
            return False

        if drops or partitions:
            network.set_fault_injector(injector)
        for crash in self._crashes:
            engine.crash_server(crash.site, at=crash.at)
            if crash.restart_at is not None:
                engine.restart_server(crash.site, at=crash.restart_at)

    def describe(self) -> str:
        """One line per rule — chaos benches print this next to results."""
        lines = [f"FaultPlan(seed={self.seed})"]
        for rule in self._drops:
            edge = f"{rule.src or '*'} -> {rule.dst or '*'}"
            port = f":{rule.port}" if rule.port is not None else ""
            window = "" if rule.end is None else f" in [{rule.start}, {rule.end})"
            lines.append(f"  drop p={rule.probability} {edge}{port}{window}")
        for rule in self._partitions:
            window = "" if rule.end is None else f" in [{rule.start}, {rule.end})"
            lines.append(
                f"  partition {sorted(rule.group_a)} | {sorted(rule.group_b)}{window}"
            )
        for rule in self._crashes:
            restart = "" if rule.restart_at is None else f", restart at {rule.restart_at}"
            lines.append(f"  crash {rule.site} at {rule.at}{restart}")
        return "\n".join(lines)
