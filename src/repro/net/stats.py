"""Traffic and load accounting.

A single :class:`TrafficStats` instance is shared by the network and every
engine in a run, so query-shipping and data-shipping executions of the same
workload produce directly comparable numbers (EXP-C1, EXP-C6 in DESIGN.md).

Concurrency rule
----------------

The counters are plain ints updated with read-modify-write — safe on the
single-threaded simulator, and equally safe on the asyncio backend
*provided every update happens on one event loop's thread*: asyncio tasks
only interleave at ``await`` points, so ``self.x += 1`` is atomic with
respect to other tasks on the same loop.  What would silently corrupt the
numbers is updates from a second loop or a worker thread.  Call
:meth:`bind_owner` (the asyncio backend does) to *enforce* that rule:
after binding, any counter write from a different thread raises instead of
racing, so backend stats are trustworthy by construction rather than by
convention.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field

__all__ = ["TrafficStats"]


@dataclass
class TrafficStats:
    """Counters for one simulation run."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    messages_by_site: Counter = field(default_factory=Counter)
    #: Injected transient connect faults (SendOutcome.FAULT).
    failed_sends: int = 0
    #: Wire frames rejected by the real-socket backend (oversized frame or
    #: an undecodable body); the offending connection is aborted.
    frames_rejected: int = 0
    #: Active refusals — the destination host is up but nothing listens on
    #: the port (closed result socket, non-participating site).
    refused_sends: int = 0
    #: Connects to a crashed (down) site (SendOutcome.HOST_DOWN).
    down_sends: int = 0
    #: Connects to a host that does not exist at all (DNS failure).
    unknown_host_sends: int = 0
    #: Retry attempts scheduled by a ReliableChannel after a transient fault.
    retried_sends: int = 0
    #: Reliable sends that exhausted their retry budget without delivery.
    retries_exhausted: int = 0
    #: In-flight reliable sends terminated by a channel reset (crash or
    #: cancellation) before they could settle — reported as ABANDONED.
    sends_abandoned: int = 0

    # Multi-tenant overload control (scheduler + admission + shedding).
    #: Connects rejected by an admission probe (SendOutcome.OVERLOADED) —
    #: the receiver is alive but its queues are at a configured ceiling.
    overloaded_sends: int = 0
    #: Reliable sends deferred (backed off for retry) specifically because
    #: the receiver answered OVERLOADED; a subset of ``retried_sends``.
    sends_deferred: int = 0
    #: Clones dropped by overload shedding, with retractions sent so the
    #: CHT retires their entries and the query degrades to PARTIAL.
    clones_shed: int = 0
    #: Queries evicted from a saturated server's run-queues by shedding.
    queries_shed: int = 0
    #: Frontier-overflow clones put back on their own run-queue instead of
    #: being processed in the same pump (pump_budget backpressure).
    clones_requeued: int = 0
    #: Queued clones lost when a server crashed (all run-queues drain);
    #: lets the oracle attribute PARTIAL coverage under multi-tenant load.
    clones_lost_in_crash: int = 0

    # Completion-protocol idempotence counters (incremented by the client).
    #: Reports retiring a CHT entry instance that was already retired —
    #: absorbed harmlessly by dispatch-identity accounting.
    duplicate_reports_absorbed: int = 0
    #: Reports for a superseded dispatch (an older recovery epoch) whose
    #: retirement was absorbed because a re-forward replaced the dispatch.
    stale_reports_absorbed: int = 0
    #: Result-row batches dropped because the same (node, state) processing
    #: already contributed rows under another dispatch identity.
    duplicate_rows_dropped: int = 0
    #: Clones re-dispatched by recovery (reforward_pending).
    clones_reforwarded: int = 0
    #: Queries escalated to PARTIAL by a supervisor (graceful degradation).
    queries_partial: int = 0

    # Engine-level counters (incremented by query processors).
    documents_shipped: int = 0
    document_bytes_shipped: int = 0
    documents_parsed: int = 0
    node_queries_evaluated: int = 0
    duplicates_dropped: int = 0
    queries_rewritten: int = 0
    clones_forwarded: int = 0
    dead_ends: int = 0
    local_hops: int = 0
    processing_by_site: Counter = field(default_factory=Counter)

    # Frontier batching (EXP-P2).
    #: Pump steps that coalesced more than one clone into a frontier.
    frontier_batches: int = 0
    #: Clones processed inside those frontiers (seeds + absorbed local
    #: hops).  Each beyond the first per frontier is a saved SimClock
    #: schedule/complete round trip.
    frontier_clones_batched: int = 0
    #: Coalesced clone-forward messages (one CloneBundle per destination
    #: site per frontier) and the clones they carried; each bundle replaces
    #: ``clones_bundled`` separate network messages with one.
    clone_bundles_sent: int = 0
    clones_bundled: int = 0

    # Cross-query caching (EXP-P4).
    #: ResultMemo probes answered from cache — each one skipped a node-query
    #: evaluation (rows probe) or a link-graph fan-out scan (state probe).
    memo_hits: int = 0
    #: ResultMemo probes that missed and paid the full computation (which
    #: then populated the memo for the next structurally-equal query).
    memo_misses: int = 0
    #: Plan-cache hits where the plan had been compiled for a *different*
    #: web-query — structural sharing across qids.
    plans_shared: int = 0
    #: Memo hits served from a strictly more general logged PRE state via
    #: A*m·B containment plus a residual fan-out filter.
    residual_filters: int = 0
    #: Memo entries dropped by the LRU bound (``EngineConfig.memo_capacity``).
    memo_evictions: int = 0
    #: Estimated bytes currently held by result memos — a gauge, not a
    #: counter: stores add their entry's estimate, evictions/clears subtract.
    memo_bytes_est: int = 0

    # Database-constructor caches (EXP-P5 satellites).
    #: Node databases served from the constructor's LRU without rebuilding.
    db_cache_hits: int = 0
    #: Constructions that had to (re)build the node database.
    db_cache_misses: int = 0
    #: Builds that skipped HTML tokenization because the parsed document was
    #: already cached (a subset of ``db_cache_misses``).
    parse_cache_hits: int = 0

    # Join-key hash indexes (EXP-P6 outer-level batching).
    #: Per-column hash indexes built by ``Table.index()`` — one per
    #: (table generation, column) the batch executor probed.
    index_builds: int = 0
    #: Probes served from an already-built index; repeated node-queries on
    #: the same node (or the long-lived sitewide table) hit instead of
    #: rebuilding, mirroring ``forward_targets``-style reuse.
    index_hits: int = 0

    @property
    def events_saved(self) -> int:
        """SimClock events avoided by frontier batching (one schedule +
        one completion callback per clone that rode along instead of being
        pumped individually)."""
        return 2 * (self.frontier_clones_batched - self.frontier_batches)

    @property
    def messages_saved(self) -> int:
        """Network messages avoided by coalescing forwards into bundles."""
        return self.clones_bundled - self.clone_bundles_sent

    def bind_owner(self, thread_id: int | None = None) -> None:
        """Restrict counter writes to one thread (default: the caller's).

        The asyncio backend binds its event-loop thread so that any stray
        update from another loop or worker thread raises immediately
        instead of silently losing increments to a read-modify-write race.
        Scalar counter writes are checked in ``__setattr__``; the Counter
        fields are only mutated through :meth:`record_send` /
        :meth:`record_processing`, whose scalar twins trip the same check.
        """
        self.__dict__["_owner_thread"] = (
            threading.get_ident() if thread_id is None else thread_id
        )

    def unbind_owner(self) -> None:
        """Lift the :meth:`bind_owner` restriction (single-threaded again)."""
        self.__dict__.pop("_owner_thread", None)

    def __setattr__(self, name: str, value: object) -> None:
        owner = self.__dict__.get("_owner_thread")
        if owner is not None and threading.get_ident() != owner:
            raise RuntimeError(
                f"TrafficStats.{name} written from thread {threading.get_ident()}"
                f" but the stats are owned by thread {owner}; counters are not"
                " thread-safe — route updates through the owning event loop"
            )
        object.__setattr__(self, name, value)

    def record_send(self, src_site: str, kind: str, size: int) -> None:
        """Account one successfully initiated message."""
        self.messages_sent += 1
        self.bytes_sent += size
        self.messages_by_kind[kind] += 1
        self.bytes_by_kind[kind] += size
        self.messages_by_site[src_site] += 1

    def record_processing(self, site: str, weight: float = 1.0) -> None:
        """Account ``weight`` units of CPU work done at ``site``."""
        self.processing_by_site[site] += weight

    def max_site_load(self) -> tuple[str, float]:
        """The most loaded site and its processing weight (EXP-C6)."""
        if not self.processing_by_site:
            return ("", 0.0)
        site, load = self.processing_by_site.most_common(1)[0]
        return (site, load)

    def summary(self) -> dict[str, object]:
        """A flat dictionary for bench tables."""
        return {
            "messages": self.messages_sent,
            "bytes": self.bytes_sent,
            "failed_sends": self.failed_sends,
            "frames_rejected": self.frames_rejected,
            "refused_sends": self.refused_sends,
            "down_sends": self.down_sends,
            "unknown_host_sends": self.unknown_host_sends,
            "retried_sends": self.retried_sends,
            "retries_exhausted": self.retries_exhausted,
            "sends_abandoned": self.sends_abandoned,
            "overloaded_sends": self.overloaded_sends,
            "sends_deferred": self.sends_deferred,
            "clones_shed": self.clones_shed,
            "queries_shed": self.queries_shed,
            "clones_requeued": self.clones_requeued,
            "clones_lost_in_crash": self.clones_lost_in_crash,
            "duplicate_reports_absorbed": self.duplicate_reports_absorbed,
            "stale_reports_absorbed": self.stale_reports_absorbed,
            "duplicate_rows_dropped": self.duplicate_rows_dropped,
            "clones_reforwarded": self.clones_reforwarded,
            "queries_partial": self.queries_partial,
            "documents_shipped": self.documents_shipped,
            "document_bytes_shipped": self.document_bytes_shipped,
            "documents_parsed": self.documents_parsed,
            "node_queries_evaluated": self.node_queries_evaluated,
            "duplicates_dropped": self.duplicates_dropped,
            "queries_rewritten": self.queries_rewritten,
            "clones_forwarded": self.clones_forwarded,
            "dead_ends": self.dead_ends,
            "local_hops": self.local_hops,
            "frontier_batches": self.frontier_batches,
            "frontier_clones_batched": self.frontier_clones_batched,
            "clone_bundles_sent": self.clone_bundles_sent,
            "clones_bundled": self.clones_bundled,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "plans_shared": self.plans_shared,
            "residual_filters": self.residual_filters,
            "memo_evictions": self.memo_evictions,
            "memo_bytes_est": self.memo_bytes_est,
            "db_cache_hits": self.db_cache_hits,
            "db_cache_misses": self.db_cache_misses,
            "parse_cache_hits": self.parse_cache_hits,
            "index_builds": self.index_builds,
            "index_hits": self.index_hits,
            "events_saved": self.events_saved,
            "messages_saved": self.messages_saved,
        }
