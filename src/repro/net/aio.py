"""Real TCP transport: the WEBDIS protocols over asyncio sockets.

This is the second implementation of the :class:`~repro.net.transport.Transport`
seam.  Sites live on ``127.0.0.1`` with one real TCP listening socket per
``(site, logical_port)``; a :class:`PortMap` translates the protocol's
logical ports (:data:`~repro.net.network.QUERY_PORT`, per-query result
ports, ...) into distinct real ports so any number of sites share one
loopback interface — within one process (sites as asyncio tasks) or across
OS processes (:class:`StaticPortMap` + ``tools/socket_cluster.py``).

Wire format and delivery contract
---------------------------------

Each message is one length-prefixed frame (:func:`repro.wire.encode_frame`)
carrying a source-stamped envelope (:func:`repro.wire.encode_envelope`)
over a persistent per-``(src, dst, port)`` connection.  After the receiving
listener has *processed* a frame the receiver writes back a one-byte ack
(:data:`ACK_BYTE`); the sender reports ``DELIVERED`` only on that ack, so —
exactly as on the simulator, where ``DELIVERED`` means the delivery event
is scheduled and listeners never observe a vanished delivered message —
a delivered send has really been handled.  Sends on one link are
serialized by an (FIFO-fair) ``asyncio.Lock``, preserving the simulator's
per-edge FIFO ordering.  A write or ack failure on a *reused* connection is
retried once on a fresh connection (the peer may simply have closed an
idle keep-alive); the retry can duplicate a processed-but-unacked message,
which is safe because the protocols are idempotent — the CHT's
dispatch-identity accounting absorbs duplicate reports, the log table
absorbs duplicate clones.  That is the same at-least-once envelope the
:class:`~repro.net.reliable.ReliableChannel` already imposes.

Outcome mapping (see :func:`repro.net.transport.refusal_outcome` for the
REFUSED/HOST_DOWN split on refused connects):

=============================  ==========================================
real-socket event              ``SendOutcome``
=============================  ==========================================
frame written, ack received    DELIVERED
frame written, nak received    OVERLOADED (admission refused; back off)
ECONNREFUSED, result port      REFUSED (deliberate close = termination)
ECONNREFUSED, daemon port      HOST_DOWN (server process is down)
connect timeout / no route     HOST_DOWN
ack timeout / reset / EOF      FAULT (transient wire fault)
destination never registered   HOST_DOWN (DNS failure analogue)
=============================  ==========================================

The nak (:data:`NAK_BYTE`) carries admission control across the wire: a
listener guarded by an admission probe (:meth:`AsyncioTransport.set_admission`)
that declines a frame never sees it — the receiver answers one nak byte on
the same healthy connection, the sender reports the transient
``OVERLOADED`` outcome, and the :class:`~repro.net.reliable.ReliableChannel`
backs off and retries.  Distinct on purpose from a refused connect (§2.8
termination, never retried) and from a missing ack (FAULT — the frame may
or may not have been processed; a nak'd frame definitely was not).

All outcomes settle through the deferred ``on_outcome`` callback;
``send`` itself returns :data:`~repro.net.network.SendOutcome.IN_FLIGHT`
(or, for failures decidable without touching the network, the final
outcome directly, with ``on_outcome`` invoked inline like the simulator).

Everything runs on one event loop: listeners are invoked synchronously
from receive coroutines, settle callbacks from send tasks, and
:class:`LoopClock` timers from ``loop.call_later`` — so the protocol code
(written for the single-threaded simulator) needs no locks.  The shared
:class:`~repro.net.stats.TrafficStats` is bound to the loop thread
(:meth:`~repro.net.stats.TrafficStats.bind_owner`) to enforce that.
"""

from __future__ import annotations

import asyncio
import socket
from typing import TYPE_CHECKING, Callable, Iterable

from ..errors import NetworkError, SimulationError
from ..wire import (
    WireError,
    FrameDecoder,
    decode_envelope,
    encode_envelope,
    encode_frame,
)
from .network import (
    QUERY_PORT,
    Listener,
    NetworkConfig,
    Payload,
    SendOutcome,
)
from .stats import TrafficStats
from .transport import refusal_outcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .chaos import ChaosRules

__all__ = [
    "ACK_BYTE",
    "NAK_BYTE",
    "LoopClock",
    "PortMap",
    "StaticPortMap",
    "AsyncioTransport",
]

#: Written by the receiver after its listener has processed one frame.
ACK_BYTE = b"\x06"

#: Written by the receiver when an admission probe declines a frame: the
#: frame was *not* processed and the sender should back off and retry
#: (SendOutcome.OVERLOADED).  The connection itself stays healthy.
NAK_BYTE = b"\x15"

_READ_CHUNK = 65536


class LoopClock:
    """:class:`~repro.net.transport.Clock` over the event loop's wall clock.

    ``now`` starts at 0.0 when the clock is constructed, so protocol
    timestamps (CHT add/retire times, supervisor timeouts) look like the
    simulator's — seconds since the run began — just measured by
    ``loop.time()`` instead of virtual time.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._t0 = self._loop.time()

    @property
    def now(self) -> float:
        return self._loop.time() - self._t0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        self._loop.call_later(max(delay, 0.0), callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        self._loop.call_at(self._t0 + time, callback)


class PortMap:
    """Dynamic ``(site, logical_port) -> real port`` registry (in-process).

    ``bind`` allocates an ephemeral real port and records it; ``lookup``
    answers senders.  Entries survive :meth:`AsyncioTransport.close` on
    purpose: connecting to the *closed* real socket yields a genuine
    ``ECONNREFUSED``, which is exactly the signal the refusal-classification
    policy feeds on.  Rebinding after a crash allocates a fresh port and
    replaces the entry.
    """

    def __init__(self, host: str = "127.0.0.1") -> None:
        self.host = host
        self._map: dict[tuple[str, int], int] = {}

    def bind(self, site: str, logical_port: int) -> socket.socket:
        """Bind (and start listening on) the real socket for a logical port."""
        sock = self._bound_socket(0)
        self._map[(site, logical_port)] = sock.getsockname()[1]
        return sock

    def lookup(self, site: str, logical_port: int) -> int | None:
        """The real port to connect to, or None if it was never bound."""
        return self._map.get((site, logical_port))

    def _bound_socket(self, real_port: int) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind((self.host, real_port))
            sock.listen(128)
        except OSError:
            sock.close()
            raise
        sock.setblocking(False)
        return sock


class StaticPortMap(PortMap):
    """Arithmetic port map shared by cooperating OS processes.

    Every process derives the same mapping from the same ordered site list,
    with no registry to synchronize: site ``i`` owns the real-port range
    ``[first_base + i*SPAN, first_base + (i+1)*SPAN)`` and logical port
    ``p`` lands on ``base + (p - QUERY_PORT)``.  ``SPAN = 2000`` leaves
    room for the daemon ports (offsets 0 and 500) plus ~1000 per-query
    result ports per site.
    """

    SPAN = 2000

    def __init__(
        self,
        sites: Iterable[str],
        host: str = "127.0.0.1",
        first_base: int = 20000,
    ) -> None:
        super().__init__(host)
        self._bases = {
            site: first_base + index * self.SPAN
            for index, site in enumerate(sorted(sites))
        }

    def bind(self, site: str, logical_port: int) -> socket.socket:
        real = self.lookup(site, logical_port)
        if real is None:
            raise SimulationError(
                f"no static port mapping for {site!r}:{logical_port}"
            )
        sock = self._bound_socket(real)
        self._map[(site, logical_port)] = real
        return sock

    def lookup(self, site: str, logical_port: int) -> int | None:
        base = self._bases.get(site)
        offset = logical_port - QUERY_PORT
        if base is None or not 0 <= offset < self.SPAN:
            return None
        return base + offset


class _Link:
    """One persistent outbound connection, serialized by a FIFO lock."""

    __slots__ = ("lock", "reader", "writer")

    def __init__(self) -> None:
        self.lock = asyncio.Lock()
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None


class AsyncioTransport:
    """Real TCP sockets on one asyncio event loop (see module docstring).

    Must be constructed on a running loop.  ``local_sites`` restricts which
    sites may :meth:`listen` here — ``None`` (in-process mode) allows all;
    a multi-process worker passes its own site so a misrouted listen fails
    loudly instead of silently binding the wrong process.

    ``chaos`` threads every *inbound* connection through an in-path
    :class:`~repro.net.chaos.ChaosProxy` applying the rules at the socket
    layer (see :mod:`repro.net.chaos`).
    """

    synchronous = False

    def __init__(
        self,
        clock: LoopClock | None = None,
        stats: TrafficStats | None = None,
        config: NetworkConfig | None = None,
        *,
        port_map: PortMap | None = None,
        local_sites: Iterable[str] | None = None,
        chaos: "ChaosRules | None" = None,
    ) -> None:
        self._loop = asyncio.get_running_loop()
        self.clock = clock if clock is not None else LoopClock(self._loop)
        self.stats = stats if stats is not None else TrafficStats()
        self.stats.bind_owner()
        self.config = config if config is not None else NetworkConfig()
        self.port_map = port_map if port_map is not None else PortMap()
        self.chaos = chaos
        self._local_sites = (
            None if local_sites is None else {site.lower() for site in local_sites}
        )
        self._sites: set[str] = set()
        self._listeners: dict[tuple[str, int], Listener] = {}
        self._admission: dict[tuple[str, int], Callable[[str, Payload], bool]] = {}
        self._servers: dict[tuple[str, int], asyncio.AbstractServer] = {}
        self._proxies: dict[tuple[str, int], object] = {}
        self._inbound: dict[tuple[str, int], set[asyncio.StreamWriter]] = {}
        self._links: dict[tuple[str, str, int], _Link] = {}
        self._tasks: set[asyncio.Task] = set()
        self._taps: list[Callable[[float, str, str, int, Payload], None]] = []
        self._chaos_totals: dict[str, int] = {}
        self._closed = False

    # -- observation (same surface as the simulator) ------------------------

    def set_tap(
        self, tap: Callable[[float, str, str, int, Payload], None] | None
    ) -> None:
        self._taps = [tap] if tap is not None else []

    def add_tap(self, tap: Callable[[float, str, str, int, Payload], None]) -> None:
        self._taps.append(tap)

    def remove_tap(self, tap: Callable[[float, str, str, int, Payload], None]) -> None:
        self._taps = [t for t in self._taps if t is not tap]

    # -- topology -----------------------------------------------------------

    def register_site(self, site: str) -> None:
        self._sites.add(site)

    @property
    def sites(self) -> frozenset[str]:
        return frozenset(self._sites)

    # -- listeners ----------------------------------------------------------

    def listen(self, site: str, port: int, listener: Listener) -> None:
        """Bind ``site:port`` for real and start accepting.

        The OS socket is bound *synchronously* — connects succeed (queueing
        in the backlog) from this call on, killing the race between a
        result-port listen and the first server's result dispatch — while
        the asyncio accept loop attaches as a task moments later.
        """
        if site not in self._sites:
            raise SimulationError(f"unknown site {site!r}; register it first")
        if self._local_sites is not None and site not in self._local_sites:
            raise SimulationError(
                f"site {site!r} is not hosted by this process"
            )
        key = (site, port)
        if key in self._listeners:
            raise NetworkError(f"port {port} already bound at {site}")
        advertised = self.port_map.bind(site, port)  # may raise: nothing to undo yet
        self._listeners[key] = listener
        self._inbound[key] = set()
        if self.chaos is not None:
            # In-path proxy: the advertised socket is served by the chaos
            # proxy, which forwards (seeded drop/delay/partition/reset) to
            # an inner socket served by the real handler.  One lifecycle:
            # close/crash tears both down, so refused connects stay honest.
            from .chaos import ChaosProxy

            inner = PortMap(self.port_map.host)
            inner_sock = inner.bind(site, port)
            inner_port = inner.lookup(site, port)
            assert inner_port is not None
            proxy = ChaosProxy(
                self.chaos, self.clock, site, port,
                upstream_host=self.port_map.host, upstream_port=inner_port,
            )
            self._proxies[key] = proxy
            self._spawn(self._start_server(key, inner_sock))
            self._spawn(proxy.start(advertised))
        else:
            self._spawn(self._start_server(key, advertised))

    async def _start_server(self, key: tuple[str, int], sock: socket.socket) -> None:
        server = await asyncio.start_server(
            lambda reader, writer: self._serve_connection(key, reader, writer),
            sock=sock,
        )
        if key in self._listeners and not self._closed:
            self._servers[key] = server
        else:
            server.close()  # closed before the accept loop attached

    async def _serve_connection(
        self,
        key: tuple[str, int],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        peers = self._inbound.get(key)
        if peers is None:  # listener closed while the connect was in flight
            _abort(writer)
            return
        peers.add(writer)
        decoder = FrameDecoder(self.config.max_frame_bytes)
        try:
            while True:
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    break
                try:
                    frames = decoder.feed(chunk)
                except WireError:
                    self.stats.frames_rejected += 1
                    _abort(writer)
                    return
                for body in frames:
                    try:
                        src, message = decode_envelope(body)
                    except WireError:
                        self.stats.frames_rejected += 1
                        _abort(writer)
                        return
                    listener = self._listeners.get(key)
                    if listener is None:
                        # Port closed mid-stream: refuse (no ack) so the
                        # sender's retry meets the real refused connect.
                        _abort(writer)
                        return
                    probe = self._admission.get(key)
                    if probe is not None and not probe(src, message):
                        writer.write(NAK_BYTE)
                        continue
                    listener(src, message)
                    writer.write(ACK_BYTE)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown (aclose / asyncio.run teardown): end the
            # handler quietly; the socket is aborted below either way.
            pass
        finally:
            if peers is not None:
                peers.discard(writer)
            _abort(writer)

    def close(self, site: str, port: int) -> None:
        """Close the listener; later connects are refused for real.

        The port-map entry survives, so senders still find the (now
        closed) real port and get ``ECONNREFUSED`` — which
        :func:`~repro.net.transport.refusal_outcome` turns into the
        termination signal on result ports.
        """
        key = (site, port)
        self._listeners.pop(key, None)
        server = self._servers.pop(key, None)
        if server is not None:
            server.close()
        proxy = self._proxies.pop(key, None)
        if proxy is not None:
            proxy.stop()  # type: ignore[attr-defined]
            for name, value in proxy.summary().items():  # type: ignore[attr-defined]
                self._chaos_totals[name] = self._chaos_totals.get(name, 0) + value
        for writer in self._inbound.pop(key, set()):
            _abort(writer)

    def is_listening(self, site: str, port: int) -> bool:
        return (site, port) in self._listeners

    def set_admission(
        self, site: str, port: int, probe: Callable[[str, Payload], bool] | None
    ) -> None:
        """Install (or clear) an admission probe guarding ``site:port``.

        A declined frame is answered with :data:`NAK_BYTE` instead of being
        delivered to the listener; the sender observes the transient
        ``OVERLOADED`` outcome (see module docstring).
        """
        key = (site, port)
        if probe is None:
            self._admission.pop(key, None)
        else:
            self._admission[key] = probe

    # -- whole-site failures ------------------------------------------------

    def crash_site(self, site: str) -> None:
        """Kill every socket the site's process would hold.

        Listeners close (connects now refused), inbound connections are
        reset, and the site's *outbound* links are torn down too — a dead
        process keeps nothing open.  ``QueryServer.restart`` re-binds via
        :meth:`listen`, which allocates a fresh real port.
        """
        for key in [key for key in self._listeners if key[0] == site]:
            self.close(*key)
        for lkey in [lkey for lkey, _ in self._links.items() if lkey[0] == site]:
            link = self._links.pop(lkey)
            _drop_link(link)

    def set_site_up(self, site: str) -> None:
        """No-op on real sockets: a site is 'up' once its ports re-bind."""

    def chaos_summary(self) -> dict[str, int]:
        """Aggregated chaos-proxy counters, live listeners plus closed ones."""
        totals = dict(self._chaos_totals)
        for proxy in self._proxies.values():
            for name, value in proxy.summary().items():  # type: ignore[attr-defined]
                totals[name] = totals.get(name, 0) + value
        return totals

    # -- transfer -----------------------------------------------------------

    def send(
        self,
        src: str,
        dst: str,
        port: int,
        payload: Payload,
        *,
        on_outcome: Callable[[SendOutcome], None] | None = None,
    ) -> SendOutcome:
        if src not in self._sites:
            raise SimulationError(f"send from unregistered site {src!r}")
        if dst not in self._sites:
            self.stats.unknown_host_sends += 1
            if on_outcome is not None:
                on_outcome(SendOutcome.HOST_DOWN)
            return SendOutcome.HOST_DOWN
        self._spawn(self._send_task(src, dst, port, payload, on_outcome))
        return SendOutcome.IN_FLIGHT

    async def _send_task(
        self,
        src: str,
        dst: str,
        port: int,
        payload: Payload,
        on_outcome: Callable[[SendOutcome], None] | None,
    ) -> None:
        outcome = await self._attempt(src, dst, port, payload)
        if on_outcome is not None:
            on_outcome(outcome)

    async def _attempt(
        self, src: str, dst: str, port: int, payload: Payload
    ) -> SendOutcome:
        try:
            frame = encode_frame(
                encode_envelope(src, payload), self.config.max_frame_bytes
            )
        except WireError:
            self.stats.frames_rejected += 1
            return SendOutcome.FAULT
        key = (src, dst, port)
        link = self._links.get(key)
        if link is None:
            link = self._links[key] = _Link()
        async with link.lock:
            reused_first = link.writer is not None
            attempt = 0
            while True:
                attempt += 1
                if link.writer is None:
                    outcome = await self._connect(link, dst, port)
                    if outcome is not None:
                        return outcome
                try:
                    assert link.writer is not None and link.reader is not None
                    link.writer.write(frame)
                    await asyncio.wait_for(
                        link.writer.drain(), self.config.read_timeout
                    )
                    ack = await asyncio.wait_for(
                        link.reader.readexactly(1), self.config.read_timeout
                    )
                except (
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    OSError,
                ):
                    _drop_link(link)
                    if reused_first and attempt == 1:
                        # A stale keep-alive the peer closed: one internal
                        # retry on a fresh connection.  May duplicate a
                        # processed-but-unacked frame; the protocols are
                        # idempotent (module docstring).
                        continue
                    self.stats.failed_sends += 1
                    return SendOutcome.FAULT
                if ack == NAK_BYTE:
                    # Admission refused: the frame was definitely not
                    # processed and the connection is still good — report
                    # the transient OVERLOADED so the channel backs off.
                    self.stats.overloaded_sends += 1
                    return SendOutcome.OVERLOADED
                if ack != ACK_BYTE:
                    _drop_link(link)
                    self.stats.failed_sends += 1
                    return SendOutcome.FAULT
                size = payload.size_bytes() + self.config.envelope_bytes
                self.stats.record_send(src, payload.kind, size)
                for tap in self._taps:
                    tap(self.clock.now, src, dst, port, payload)
                return SendOutcome.DELIVERED

    async def _connect(
        self, link: _Link, dst: str, port: int
    ) -> SendOutcome | None:
        """Populate ``link``; None on success, else the failure outcome."""
        real = self.port_map.lookup(dst, port)
        if real is None:
            # Never bound: same classification a refused connect would get.
            outcome = refusal_outcome(port)
        else:
            try:
                link.reader, link.writer = await asyncio.wait_for(
                    asyncio.open_connection(self.port_map.host, real),
                    self.config.connect_timeout,
                )
                return None
            except ConnectionRefusedError:
                outcome = refusal_outcome(port)
            except (asyncio.TimeoutError, OSError):
                self.stats.down_sends += 1
                return SendOutcome.HOST_DOWN
        if outcome is SendOutcome.REFUSED:
            self.stats.refused_sends += 1
        else:
            self.stats.down_sends += 1
        return outcome

    # -- lifecycle ----------------------------------------------------------

    def _spawn(self, coro) -> None:
        task = self._loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def aclose(self) -> None:
        """Tear everything down (tests and runners call this on exit)."""
        self._closed = True
        for key in list(self._listeners):
            self.close(*key)
        for link in self._links.values():
            _drop_link(link)
        self._links.clear()
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        self.stats.unbind_owner()


def _abort(writer: asyncio.StreamWriter) -> None:
    """Hard-close a stream (RST if data is pending), swallowing raciness."""
    try:
        writer.transport.abort()
    except Exception:
        pass


def _drop_link(link: _Link) -> None:
    if link.writer is not None:
        _abort(link.writer)
    link.reader = None
    link.writer = None
