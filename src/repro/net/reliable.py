"""Reliable transport: retry/backoff on top of the raw network.

The WEBDIS protocols (and the paper's §7.1 open problem of node failures)
need one missing layer: a channel that distinguishes *what kind* of connect
failure occurred and retries only the transient kinds.  The policy mirrors
per-hop retry/timeout layers in distributed XQuery network specs:

* DELIVERED — done;
* REFUSED — **final, never retried**.  A refused connect is the active
  signal passive termination (§2.8) and the §7.1 participation test are
  built on; retrying it would turn "the user cancelled" into "try again
  later" and break both protocols;
* HOST_DOWN / FAULT / OVERLOADED — transient: retried with exponential
  backoff and seeded jitter on the simulation clock, up to the policy's
  attempt budget and deadline.  OVERLOADED (admission control: the
  receiver is alive but its queues are full) additionally counts as a
  *deferral* — the backoff is the backpressure.  Exhaustion is reported to
  the caller, who falls back to the protocol's existing failure paths
  (CHT retraction, purge).

Everything is deterministic: jitter comes from a ``random.Random`` seeded
from the policy seed plus the channel's name, and retries are ordinary
clock events.

The channel runs over any :class:`~repro.net.transport.Transport`.  On the
synchronous simulator each attempt's outcome is known when ``send``
returns; on a deferred backend (real sockets) the outcome arrives through
the transport's ``on_outcome`` callback and ``send`` returns
:data:`~repro.net.network.SendOutcome.IN_FLIGHT` — either way the retry
loop and the caller's ``on_final`` behave identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .network import Payload, SendOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .transport import Clock, Transport

__all__ = ["RetryPolicy", "ReliableChannel"]

#: Callback receiving the final outcome of a reliable send: DELIVERED,
#: REFUSED, the last transient outcome once retries are exhausted, or
#: ABANDONED when the channel was reset while the send awaited a retry.
FinalCallback = Callable[[SendOutcome], None]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Retry budget and backoff shape for one :class:`ReliableChannel`.

    ``max_attempts`` counts every connect, including the first; 1 disables
    retrying.  The delay before retry *n* is
    ``base_delay * multiplier**(n-1)`` capped at ``max_delay``, then
    jittered by up to ±``jitter`` (a fraction).  ``deadline`` bounds the
    total elapsed time since the first attempt: a retry that would fire
    past it is not scheduled.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before attempt ``attempt + 1`` (``attempt`` just failed)."""
        delay = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(delay, 0.0)


class ReliableChannel:
    """Connect-with-retry over one :class:`~repro.net.transport.Transport`.

    On the simulator ``send`` performs the first connect synchronously and
    returns its outcome, so existing dispatch-before-forward ordering still
    observes immediate REFUSED/DELIVERED results.  On a deferred backend
    ``send`` returns :data:`~repro.net.network.SendOutcome.IN_FLIGHT` and
    settles later.  Either way, when the outcome is transient and the
    policy allows, retries are scheduled on the clock; ``on_final`` fires
    exactly once with the final outcome (synchronously when the backend is
    synchronous and no retry is needed).

    With ``policy=None`` the channel is a passthrough — a single attempt
    whose transient failure is immediately final — which reproduces the
    pre-reliability protocol behaviour exactly.
    """

    def __init__(
        self,
        network: "Transport",
        clock: "Clock",
        policy: RetryPolicy | None = None,
        *,
        name: str = "",
        trace: Callable[[str, str], None] | None = None,
    ) -> None:
        self.network = network
        self.clock = clock
        self.policy = policy
        self.stats = network.stats
        self._rng = random.Random(f"{policy.seed if policy is not None else 0}:{name}")
        self._trace = trace
        self._send_serial = 0
        #: Unsettled sends: key -> (on_final, tag).  Registered *before*
        #: the transport attempt (a deferred backend may settle — or the
        #: channel may be reset — while the connect is in flight) and
        #: removed on the final outcome.  A key removed by :meth:`reset`
        #: makes any scheduled retry or late transport callback a no-op.
        self._pending: dict[int, tuple[FinalCallback | None, object]] = {}

    def pending_sends(self, tag: object | None = None) -> int:
        """Sends not yet settled — awaiting a scheduled retry or, on a
        deferred backend, an in-flight connect (optionally by tag)."""
        if tag is None:
            return len(self._pending)
        return sum(1 for __, t in self._pending.values() if t == tag)

    def reset(self, tag: object | None = None) -> int:
        """Abandon scheduled retries; their ``on_final`` fires with ABANDONED.

        Used on server crash (a dead process does not keep retrying) and on
        query cancellation (retries aimed at a closed result port are
        pointless).  With ``tag`` given, only sends carrying that tag are
        abandoned — so cancelling one query leaves another query's retries
        running on a shared channel.  Every abandoned send's ``on_final``
        is invoked exactly once with :data:`SendOutcome.ABANDONED`, so no
        caller waits forever on a send that will never settle.  Returns the
        number of sends abandoned.
        """
        if tag is None:
            doomed = list(self._pending.keys())
        else:
            doomed = [key for key, (__, t) in self._pending.items() if t == tag]
        for key in doomed:
            on_final, __ = self._pending.pop(key)
            self.stats.sends_abandoned += 1
            if self._trace is not None:
                self._trace("send-abandoned", f"serial {key}")
            if on_final is not None:
                on_final(SendOutcome.ABANDONED)
        return len(doomed)

    def send(
        self,
        src: str,
        dst: str,
        port: int,
        payload: Payload,
        on_final: FinalCallback | None = None,
        *,
        tag: object | None = None,
    ) -> SendOutcome:
        """Reliably send ``payload``; returns the *first* attempt's outcome
        (or :data:`SendOutcome.IN_FLIGHT` on a deferred backend).

        ``tag`` labels the send for selective :meth:`reset` (e.g. the qid of
        the query the send belongs to).
        """
        self._send_serial += 1
        return self._attempt(
            src, dst, port, payload, on_final,
            attempt=1, started=self.clock.now, key=self._send_serial, tag=tag,
        )

    # -- internals -----------------------------------------------------------

    def _attempt(
        self,
        src: str,
        dst: str,
        port: int,
        payload: Payload,
        on_final: FinalCallback | None,
        attempt: int,
        started: float,
        key: int,
        tag: object | None,
    ) -> SendOutcome:
        # Register the pending entry *before* the transport attempt: on a
        # deferred backend the connect may still be in flight when a crash
        # or cancellation calls reset(), and the entry is what lets the
        # abandonment win (the late transport callback then no-ops).
        self._pending[key] = (on_final, tag)
        first: list[SendOutcome] = []

        def settle(outcome: SendOutcome) -> None:
            first.append(outcome)
            self._settle(
                src, dst, port, payload, on_final, attempt, started, key, tag, outcome
            )

        self.network.send(src, dst, port, payload, on_outcome=settle)
        return first[0] if first else SendOutcome.IN_FLIGHT

    def _settle(
        self,
        src: str,
        dst: str,
        port: int,
        payload: Payload,
        on_final: FinalCallback | None,
        attempt: int,
        started: float,
        key: int,
        tag: object | None,
        outcome: SendOutcome,
    ) -> None:
        if key not in self._pending:
            return  # reset() abandoned this send mid-connect: on_final fired
        if not outcome.transient:
            # DELIVERED or REFUSED: final either way.  REFUSED is the
            # termination/participation signal and is deliberately never
            # retried, no matter the policy.
            self._pending.pop(key, None)
            if outcome.delivered and attempt > 1 and self._trace is not None:
                self._trace("retry-delivered", f"{dst}:{port} attempt {attempt}")
            if on_final is not None:
                on_final(outcome)
            return
        if self._retry_allowed(attempt, started):
            delay = self.policy.backoff(attempt, self._rng)
            if (
                self.policy.deadline is None
                or (self.clock.now + delay) - started <= self.policy.deadline
            ):
                self.stats.retried_sends += 1
                if outcome is SendOutcome.OVERLOADED:
                    # Backpressure: the receiver is alive but full, so this
                    # backoff is a deferral, not a fault recovery.
                    self.stats.sends_deferred += 1
                if self._trace is not None:
                    self._trace(
                        "retry-scheduled",
                        f"{dst}:{port} attempt {attempt + 1} in {delay:.3f}s"
                        f" ({outcome.value})",
                    )
                self.clock.schedule(
                    delay,
                    lambda: self._fire(
                        src, dst, port, payload, on_final, attempt + 1, started, key, tag
                    ),
                )
                return
        self._pending.pop(key, None)
        if self.policy is not None:
            self.stats.retries_exhausted += 1
            if self._trace is not None:
                self._trace(
                    "retries-exhausted",
                    f"{dst}:{port} after {attempt} attempt(s) ({outcome.value})",
                )
        if on_final is not None:
            on_final(outcome)

    def _retry_allowed(self, attempt: int, started: float) -> bool:
        return self.policy is not None and attempt < self.policy.max_attempts

    def _fire(
        self,
        src: str,
        dst: str,
        port: int,
        payload: Payload,
        on_final: FinalCallback | None,
        attempt: int,
        started: float,
        key: int,
        tag: object | None,
    ) -> None:
        if key not in self._pending:
            return  # abandoned by reset (crash/cancel): on_final already fired
        self._attempt(src, dst, port, payload, on_final, attempt, started, key, tag)
