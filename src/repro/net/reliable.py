"""Reliable transport: retry/backoff on top of the raw network.

The WEBDIS protocols (and the paper's §7.1 open problem of node failures)
need one missing layer: a channel that distinguishes *what kind* of connect
failure occurred and retries only the transient kinds.  The policy mirrors
per-hop retry/timeout layers in distributed XQuery network specs:

* DELIVERED — done;
* REFUSED — **final, never retried**.  A refused connect is the active
  signal passive termination (§2.8) and the §7.1 participation test are
  built on; retrying it would turn "the user cancelled" into "try again
  later" and break both protocols;
* HOST_DOWN / FAULT — transient: retried with exponential backoff and
  seeded jitter on the simulation clock, up to the policy's attempt budget
  and deadline.  Exhaustion is reported to the caller, who falls back to
  the protocol's existing failure paths (CHT retraction, purge).

Everything is deterministic: jitter comes from a ``random.Random`` seeded
from the policy seed plus the channel's name, and retries are ordinary
``SimClock`` events.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from .network import Network, Payload, SendOutcome
from .simclock import SimClock

__all__ = ["RetryPolicy", "ReliableChannel"]

#: Callback receiving the final outcome of a reliable send: DELIVERED,
#: REFUSED, or the last transient outcome once retries are exhausted.
FinalCallback = Callable[[SendOutcome], None]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Retry budget and backoff shape for one :class:`ReliableChannel`.

    ``max_attempts`` counts every connect, including the first; 1 disables
    retrying.  The delay before retry *n* is
    ``base_delay * multiplier**(n-1)`` capped at ``max_delay``, then
    jittered by up to ±``jitter`` (a fraction).  ``deadline`` bounds the
    total elapsed time since the first attempt: a retry that would fire
    past it is not scheduled.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    deadline: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Delay before attempt ``attempt + 1`` (``attempt`` just failed)."""
        delay = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(delay, 0.0)


class ReliableChannel:
    """Connect-with-retry over one :class:`Network`.

    ``send`` performs the first connect synchronously and returns its
    outcome, so existing dispatch-before-forward ordering still observes
    immediate REFUSED/DELIVERED results.  When the outcome is transient and
    the policy allows, retries are scheduled on the clock; ``on_final``
    fires exactly once with the final outcome (synchronously when no retry
    is needed).

    With ``policy=None`` the channel is a passthrough — a single attempt
    whose transient failure is immediately final — which reproduces the
    pre-reliability protocol behaviour exactly.
    """

    def __init__(
        self,
        network: Network,
        clock: SimClock,
        policy: RetryPolicy | None = None,
        *,
        name: str = "",
        trace: Callable[[str, str], None] | None = None,
    ) -> None:
        self.network = network
        self.clock = clock
        self.policy = policy
        self.stats = network.stats
        self._rng = random.Random(f"{policy.seed if policy is not None else 0}:{name}")
        self._trace = trace
        self._generation = 0

    def reset(self) -> None:
        """Abandon every scheduled retry (their ``on_final`` never fires).

        Used on server crash: a dead process does not keep retrying.
        """
        self._generation += 1

    def send(
        self,
        src: str,
        dst: str,
        port: int,
        payload: Payload,
        on_final: FinalCallback | None = None,
    ) -> SendOutcome:
        """Reliably send ``payload``; returns the *first* attempt's outcome."""
        return self._attempt(
            src, dst, port, payload, on_final,
            attempt=1, started=self.clock.now, generation=self._generation,
        )

    # -- internals -----------------------------------------------------------

    def _attempt(
        self,
        src: str,
        dst: str,
        port: int,
        payload: Payload,
        on_final: FinalCallback | None,
        attempt: int,
        started: float,
        generation: int,
    ) -> SendOutcome:
        outcome = self.network.send(src, dst, port, payload)
        if not outcome.transient:
            # DELIVERED or REFUSED: final either way.  REFUSED is the
            # termination/participation signal and is deliberately never
            # retried, no matter the policy.
            if outcome.delivered and attempt > 1 and self._trace is not None:
                self._trace("retry-delivered", f"{dst}:{port} attempt {attempt}")
            if on_final is not None:
                on_final(outcome)
            return outcome
        if self._retry_allowed(attempt, started):
            delay = self.policy.backoff(attempt, self._rng)
            if (
                self.policy.deadline is None
                or (self.clock.now + delay) - started <= self.policy.deadline
            ):
                self.stats.retried_sends += 1
                if self._trace is not None:
                    self._trace(
                        "retry-scheduled",
                        f"{dst}:{port} attempt {attempt + 1} in {delay:.3f}s"
                        f" ({outcome.value})",
                    )
                self.clock.schedule(
                    delay,
                    lambda: self._fire(
                        src, dst, port, payload, on_final, attempt + 1, started, generation
                    ),
                )
                return outcome
        if self.policy is not None:
            self.stats.retries_exhausted += 1
            if self._trace is not None:
                self._trace(
                    "retries-exhausted",
                    f"{dst}:{port} after {attempt} attempt(s) ({outcome.value})",
                )
        if on_final is not None:
            on_final(outcome)
        return outcome

    def _retry_allowed(self, attempt: int, started: float) -> bool:
        return self.policy is not None and attempt < self.policy.max_attempts

    def _fire(
        self,
        src: str,
        dst: str,
        port: int,
        payload: Payload,
        on_final: FinalCallback | None,
        attempt: int,
        started: float,
        generation: int,
    ) -> None:
        if generation != self._generation:
            return  # channel was reset (process crash): the retry dies with it
        self._attempt(src, dst, port, payload, on_final, attempt, started, generation)
