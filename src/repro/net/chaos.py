"""Wire-level chaos: the FaultPlan DSL mapped onto real sockets.

On the simulator a :class:`~repro.net.faults.FaultPlan` installs a fault
injector that breaks connects before they happen.  Real sockets offer no
such hook, so the asyncio backend threads every inbound connection through
an **in-path proxy**: the advertised port for a listener is served by a
:class:`ChaosProxy`, which parses the sender's frames and — per frame,
seeded — forwards, drops, delays or resets at the socket layer before the
real handler ever sees a byte.  The fault *mechanisms* are therefore the
real ones the transport must survive:

=================  =====================================================
plan rule          wire behaviour (sender's view)
=================  =====================================================
``drop`` (p)       frame swallowed → delivery-ack timeout → ``FAULT``;
                   or connection reset mid-exchange → ``FAULT``
                   (a seeded coin picks which, both happen in the wild)
``partition``      every frame whose envelope source is across the cut
                   is dropped while the window is open — connects still
                   succeed, bytes die, exactly like a blackhole route
``crash``          not the proxy's job: the engine/runner kills the
                   site's sockets (and process) and restarts it —
                   see ``AsyncioWebDisEngine.apply_chaos`` and
                   ``tools/socket_cluster.py``
delay (extra)      frame held for a seeded interval before forwarding —
                   real reordering across links (no FaultPlan analogue
                   because the simulator models latency directly)
=================  =====================================================

Windows in plan rules are *plan seconds*; ``time_scale`` (wall seconds per
plan second) maps them onto the wall clock, so a DST repro whose faults
fire at sim-time 3.0 can replay with the same shape in a faster or slower
real run.  Decisions draw from one ``random.Random(seed)`` — seeded, but
(unlike the simulator) not bit-reproducible, because real arrival order is
not: the point here is a reproducible *distribution* of chaos, while
bit-level determinism stays the simulator's job.
"""

from __future__ import annotations

import asyncio
import random
import socket
from typing import TYPE_CHECKING, Sequence

from ..wire import WireError, FrameDecoder, encode_frame, envelope_source
from .faults import CrashRule, DropRule, PartitionRule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .faults import FaultPlan
    from .transport import Clock

__all__ = ["ChaosRules", "ChaosProxy"]

_READ_CHUNK = 65536


class ChaosRules:
    """Seeded per-frame fault decisions shared by all of a run's proxies.

    Built directly or from a :class:`~repro.net.faults.FaultPlan` via
    :meth:`from_plan` (which carries over the plan's message rules; crash
    rules are returned separately by :meth:`crash_schedule` for the
    engine/runner to enact with real kills).
    """

    def __init__(
        self,
        seed: int = 0,
        drops: Sequence[DropRule] = (),
        partitions: Sequence[PartitionRule] = (),
        *,
        time_scale: float = 1.0,
        delay_range: tuple[float, float] = (0.0, 0.0),
        delay_probability: float = 0.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.seed = seed
        self.drops = tuple(drops)
        self.partitions = tuple(partitions)
        self.time_scale = time_scale
        self.delay_range = delay_range
        self.delay_probability = delay_probability
        self._rng = random.Random(seed)
        self._crashes: tuple[CrashRule, ...] = ()

    @classmethod
    def from_plan(
        cls,
        plan: "FaultPlan",
        *,
        time_scale: float = 1.0,
        delay_range: tuple[float, float] = (0.0, 0.0),
        delay_probability: float = 0.0,
    ) -> "ChaosRules":
        rules = cls(
            plan.seed,
            plan.drops,
            plan.partitions,
            time_scale=time_scale,
            delay_range=delay_range,
            delay_probability=delay_probability,
        )
        rules._crashes = plan.crashes
        return rules

    def crash_schedule(self) -> tuple[tuple[str, float, float | None], ...]:
        """``(site, wall_kill_at, wall_restart_at)`` rows, time-scaled."""
        return tuple(
            (
                rule.site,
                rule.at * self.time_scale,
                None if rule.restart_at is None else rule.restart_at * self.time_scale,
            )
            for rule in self._crashes
        )

    def plan_now(self, wall_now: float) -> float:
        return wall_now / self.time_scale

    def verdict(self, src: str, dst: str, port: int, wall_now: float) -> str | None:
        """``"swallow"``, ``"reset"`` or None (forward) for one frame."""
        now = self.plan_now(wall_now)
        dropped = any(rule.severs(src, dst, now) for rule in self.partitions)
        if not dropped:
            for rule in self.drops:
                if rule.matches(src, dst, port, now) and (
                    rule.probability >= 1.0 or self._rng.random() < rule.probability
                ):
                    dropped = True
                    break
        if not dropped:
            return None
        return "reset" if self._rng.random() < 0.5 else "swallow"

    def delay_draw(self) -> float:
        """Extra forwarding delay for one frame (0.0 = none)."""
        lo, hi = self.delay_range
        if hi <= 0.0 or self.delay_probability <= 0.0:
            return 0.0
        if self._rng.random() >= self.delay_probability:
            return 0.0
        return self._rng.uniform(lo, hi)


class ChaosProxy:
    """In-path frame-level proxy for one listener (see module docstring).

    Serves the listener's *advertised* socket; each inbound connection gets
    a matching upstream connection to the real handler.  Downstream bytes
    (delivery acks) pass through verbatim; upstream frames are re-framed
    individually so a swallowed frame leaves the stream aligned.
    """

    def __init__(
        self,
        rules: ChaosRules,
        clock: "Clock",
        site: str,
        port: int,
        *,
        upstream_host: str,
        upstream_port: int,
    ) -> None:
        self.rules = rules
        self.clock = clock
        self.site = site
        self.port = port
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.frames_forwarded = 0
        self.frames_swallowed = 0
        self.frames_delayed = 0
        self.connections_reset = 0
        self._server: asyncio.AbstractServer | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._tasks: set[asyncio.Task] = set()
        self._stopped = False

    async def start(self, sock: socket.socket) -> None:
        server = await asyncio.start_server(self._handle, sock=sock)
        if self._stopped:
            server.close()
            return
        self._server = server

    def stop(self) -> None:
        self._stopped = True
        if self._server is not None:
            self._server.close()
            self._server = None
        for writer in list(self._writers):
            _abort(writer)
        self._writers.clear()
        for task in list(self._tasks):
            task.cancel()

    async def _handle(
        self, client_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        try:
            upstream_reader, upstream_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port
            )
        except OSError:
            _abort(client_writer)
            return
        self._writers.add(client_writer)
        self._writers.add(upstream_writer)
        loop = asyncio.get_running_loop()
        ack_pump = loop.create_task(self._pump_acks(upstream_reader, client_writer))
        self._tasks.add(ack_pump)
        ack_pump.add_done_callback(self._tasks.discard)
        decoder = FrameDecoder()
        try:
            while True:
                chunk = await client_reader.read(_READ_CHUNK)
                if not chunk:
                    break
                try:
                    frames = decoder.feed(chunk)
                except WireError:
                    break
                for body in frames:
                    try:
                        src = envelope_source(body)
                    except WireError:
                        src = ""
                    action = self.rules.verdict(
                        src, self.site, self.port, self.clock.now
                    )
                    if action == "reset":
                        self.connections_reset += 1
                        return
                    if action == "swallow":
                        self.frames_swallowed += 1
                        continue
                    delay = self.rules.delay_draw()
                    if delay > 0.0:
                        self.frames_delayed += 1
                        await asyncio.sleep(delay)
                    self.frames_forwarded += 1
                    upstream_writer.write(encode_frame(body))
                    await upstream_writer.drain()
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            pass  # loop shutdown: both sockets are aborted below
        finally:
            ack_pump.cancel()
            self._writers.discard(client_writer)
            self._writers.discard(upstream_writer)
            _abort(client_writer)
            _abort(upstream_writer)

    async def _pump_acks(
        self, upstream_reader: asyncio.StreamReader, client_writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                chunk = await upstream_reader.read(_READ_CHUNK)
                if not chunk:
                    break
                client_writer.write(chunk)
                await client_writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass

    def summary(self) -> dict[str, int]:
        return {
            "frames_forwarded": self.frames_forwarded,
            "frames_swallowed": self.frames_swallowed,
            "frames_delayed": self.frames_delayed,
            "connections_reset": self.connections_reset,
        }


def _abort(writer: asyncio.StreamWriter) -> None:
    try:
        writer.transport.abort()
    except Exception:
        pass
