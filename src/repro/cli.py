"""Command-line interface for the WEBDIS reproduction.

Usage (installed as ``python -m repro.cli`` or via the console entry)::

    python -m repro.cli query --web campus --file query.disql --trace
    python -m repro.cli query --web campus --disql 'select d.url from ...'
    python -m repro.cli sitemap --web synthetic --start http://site000.example/
    python -m repro.cli linkcheck --web synthetic --floating 0.2
    python -m repro.cli demo

Webs: ``campus`` (the paper's scenario), ``figure1`` / ``figure5`` (the
paper's traversal examples) or ``synthetic`` (seeded random; shape flags
``--sites/--pages/--seed/--floating``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .apps import build_site_map, find_floating_links
from .core.engine import WebDisEngine
from .errors import WebDisError
from .web import (
    SyntheticWebConfig,
    Web,
    build_campus_web,
    build_figure1_web,
    build_figure5_web,
    build_synthetic_web,
)
from .web.campus import CAMPUS_QUERY_DISQL, CAMPUS_START_URL
from .web.synthetic import synthetic_start_url

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="webdis",
        description="WEBDIS: distributed query-shipping over a simulated Web",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_web_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--web",
            choices=("campus", "figure1", "figure5", "synthetic"),
            default="campus",
            help="which simulated web to deploy on (default: campus)",
        )
        sub.add_argument("--sites", type=int, default=8, help="synthetic web: site count")
        sub.add_argument("--pages", type=int, default=6, help="synthetic web: pages per site")
        sub.add_argument("--seed", type=int, default=1999, help="synthetic web: RNG seed")
        sub.add_argument(
            "--floating", type=float, default=0.0,
            help="synthetic web: fraction of dangling links",
        )

    query = subparsers.add_parser("query", help="run a DISQL query")
    add_web_flags(query)
    source = query.add_mutually_exclusive_group()
    source.add_argument("--disql", help="the DISQL text")
    source.add_argument("--file", help="file containing the DISQL text")
    query.add_argument("--trace", action="store_true", help="print the traversal trace")
    query.add_argument("--stats", action="store_true", help="print traffic statistics")
    query.add_argument("--html", metavar="PATH", help="write a standalone HTML run report")
    query.add_argument("--dot", metavar="PATH", help="write the traversal as Graphviz DOT")

    sitemap = subparsers.add_parser("sitemap", help="build a domain site map")
    add_web_flags(sitemap)
    sitemap.add_argument("--start", help="root URL (defaults to the web's natural root)")
    sitemap.add_argument("--depth", type=int, default=6)
    sitemap.add_argument("--global-links", action="store_true", dest="global_links")

    linkcheck = subparsers.add_parser("linkcheck", help="find floating links")
    add_web_flags(linkcheck)
    linkcheck.add_argument("--start", help="root URL (defaults to the web's natural root)")
    linkcheck.add_argument("--depth", type=int, default=6)

    lint = subparsers.add_parser("lint", help="lint a web for authoring defects")
    add_web_flags(lint)
    lint.add_argument("--root", action="append", dest="roots",
                      help="reachability root URL (repeatable)")

    explain = subparsers.add_parser(
        "explain", help="show a DISQL query in the paper's Q = S p1 q1 ... formalism"
    )
    explain_source = explain.add_mutually_exclusive_group(required=True)
    explain_source.add_argument("--disql", help="the DISQL text")
    explain_source.add_argument("--file", help="file containing the DISQL text")

    subparsers.add_parser("demo", help="run the paper's sample query end to end")
    return parser


def _build_web(args: argparse.Namespace) -> tuple[Web, str]:
    """The selected web plus its natural root/start URL."""
    if args.web == "campus":
        return build_campus_web(), CAMPUS_START_URL
    if args.web == "figure1":
        return build_figure1_web(), "http://site-s.example/"
    if args.web == "figure5":
        return build_figure5_web(), "http://site-s.example/"
    config = SyntheticWebConfig(
        sites=args.sites,
        pages_per_site=args.pages,
        seed=args.seed,
        floating_fraction=args.floating,
    )
    return build_synthetic_web(config), synthetic_start_url(config)


def _cmd_query(args: argparse.Namespace) -> int:
    web, __ = _build_web(args)
    if args.file:
        with open(args.file, encoding="utf-8") as handle:
            disql = handle.read()
    elif args.disql:
        disql = args.disql
    else:
        disql = CAMPUS_QUERY_DISQL
        if args.web != "campus":
            print("error: --disql or --file is required for non-campus webs", file=sys.stderr)
            return 2
    want_trace = args.trace or bool(args.dot) or bool(args.html)
    engine = WebDisEngine(web, trace=want_trace)
    handle = engine.run_query(disql)
    if args.trace:
        print(engine.tracer.render())
        print()
    if args.html:
        from .report_html import render_run_report

        with open(args.html, "w", encoding="utf-8") as out:
            out.write(render_run_report(engine, handle))
        print(f"wrote HTML report to {args.html}")
    if args.dot:
        with open(args.dot, "w", encoding="utf-8") as out:
            out.write(engine.tracer.to_dot())
        print(f"wrote DOT traversal to {args.dot}")
    print(handle.display_table())
    print()
    print(f"status: {handle.status.value}  "
          f"response time: {handle.response_time():.3f}s  "
          f"rows: {len(handle.rows())}")
    if args.stats:
        for key, value in engine.stats.summary().items():
            print(f"  {key:<24} {value}")
    return 0


def _cmd_sitemap(args: argparse.Namespace) -> int:
    web, default_start = _build_web(args)
    start = args.start or default_start
    site_map = build_site_map(
        web, start, depth=args.depth, include_global=args.global_links
    )
    print(site_map.render())
    print()
    print(f"pages: {len(site_map.pages)}  edges: {len(site_map.edges)}  "
          f"bytes on wire: {site_map.bytes_on_wire}")
    return 0


def _cmd_linkcheck(args: argparse.Namespace) -> int:
    web, default_start = _build_web(args)
    start = args.start or default_start
    report = find_floating_links(web, start, depth=args.depth, include_global=True)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .web.validation import lint_web

    web, default_start = _build_web(args)
    roots = args.roots if args.roots else [default_start]
    report = lint_web(web, roots)
    print(report.render())
    return 0 if report.ok else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    from .disql import compile_disql, explain_webquery

    if args.file:
        with open(args.file, encoding="utf-8") as handle:
            disql = handle.read()
    else:
        disql = args.disql
    print(explain_webquery(compile_disql(disql), narrate=True))
    return 0


def _cmd_demo(__: argparse.Namespace) -> int:
    engine = WebDisEngine(build_campus_web(), trace=True)
    handle = engine.run_query(CAMPUS_QUERY_DISQL)
    print("DISQL (the paper's example query 2):")
    print(CAMPUS_QUERY_DISQL.strip())
    print()
    print(engine.tracer.render())
    print()
    print(handle.display_table())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "query": _cmd_query,
        "sitemap": _cmd_sitemap,
        "linkcheck": _cmd_linkcheck,
        "lint": _cmd_lint,
        "explain": _cmd_explain,
        "demo": _cmd_demo,
    }
    try:
        return handlers[args.command](args)
    except WebDisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
