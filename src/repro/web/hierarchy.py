"""Hierarchical webs: organization trees of sites.

Real campus webs (the paper's deployment environment) are roughly
tree-shaped: an institute portal links to departments, departments to
groups, groups to pages.  This generator builds that shape deterministically
with controllable depth and fanout — the workload for the PRE-radius sweep
(bench EXP-X7), where the paper's claim that StartNodes + bounded PREs
"restrict the search space to a feasible level" becomes measurable.

Every tree node is one *site*; each site has a homepage linking globally to
its children's homepages and locally to ``leaf_pages`` content pages.  The
content page of every site at depth ``d`` carries a marker segment
``level-d`` so queries can tell how deep they reached.
"""

from __future__ import annotations

from dataclasses import dataclass

from .builders import WebBuilder
from .web import Web

__all__ = ["HierarchyConfig", "build_hierarchy_web", "hierarchy_root_url", "sites_at_depth"]


@dataclass(frozen=True, slots=True)
class HierarchyConfig:
    """Shape of the organization tree."""

    depth: int = 3
    fanout: int = 3
    leaf_pages: int = 2
    padding_words: int = 60

    def __post_init__(self) -> None:
        if self.depth < 0 or self.fanout < 1 or self.leaf_pages < 1:
            raise ValueError("need depth >= 0, fanout >= 1, leaf_pages >= 1")

    def site_count(self) -> int:
        """Total sites: ``sum(fanout^d for d in 0..depth)``."""
        return sum(self.fanout**d for d in range(self.depth + 1))


def _site_name(path: tuple[int, ...]) -> str:
    if not path:
        return "org.example"
    return "org-" + "-".join(str(p) for p in path) + ".example"


def hierarchy_root_url(config: HierarchyConfig | None = None) -> str:
    return "http://org.example/"


def sites_at_depth(config: HierarchyConfig, depth: int) -> int:
    return config.fanout**depth if depth <= config.depth else 0


def build_hierarchy_web(config: HierarchyConfig) -> Web:
    """Build the tree web described by ``config``."""
    builder = WebBuilder()
    _build_subtree(builder, config, path=())
    return builder.build()


def _build_subtree(builder: WebBuilder, config: HierarchyConfig, path: tuple[int, ...]) -> None:
    depth = len(path)
    site = builder.site(_site_name(path))
    links = []
    if depth < config.depth:
        for child in range(config.fanout):
            links.append(
                (f"unit {child}", f"http://{_site_name(path + (child,))}/")
            )
    for page in range(config.leaf_pages):
        links.append((f"page {page}", f"/content{page}.html"))
    site.page(
        "/",
        title=f"unit {'-'.join(map(str, path)) or 'root'} portal level-{depth}",
        links=links,
        padding=config.padding_words,
    )
    for page in range(config.leaf_pages):
        site.page(
            f"/content{page}.html",
            title=f"content {page} of {_site_name(path)}",
            emphasized=[("b", f"marker level-{depth} item {page}")],
            padding=config.padding_words,
        )
    if depth < config.depth:
        for child in range(config.fanout):
            _build_subtree(builder, config, path + (child,))
