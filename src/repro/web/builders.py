"""Fluent construction of hand-crafted webs.

Example::

    builder = WebBuilder()
    (builder.site("csa.iisc.ernet.in")
        .page("/", title="CSA Department", links=[("Labs", "/labs.html")])
        .page("/labs.html", title="Laboratories", links=[...]))
    web = builder.build()
"""

from __future__ import annotations

from typing import Sequence

from ..html.generator import PageSpec
from .site import Page, Site
from .web import Web

__all__ = ["WebBuilder", "SiteBuilder"]


class SiteBuilder:
    """Accumulates pages for one site; obtained via :meth:`WebBuilder.site`."""

    def __init__(self, site: Site) -> None:
        self._site = site

    def page(
        self,
        path: str,
        *,
        title: str,
        paragraphs: Sequence[str] = (),
        links: Sequence[tuple[str, str]] = (),
        emphasized: Sequence[tuple[str, str]] = (),
        ruled: Sequence[str] = (),
        padding: int = 0,
    ) -> "SiteBuilder":
        """Add a page described structurally (see :class:`PageSpec`)."""
        spec = PageSpec(
            title=title,
            paragraphs=tuple(paragraphs),
            links=tuple(links),
            emphasized=tuple(emphasized),
            ruled=tuple(ruled),
            padding=padding,
        )
        self._site.add(Page(path, spec=spec))
        return self

    def raw_page(self, path: str, html: str) -> "SiteBuilder":
        """Add a page with verbatim HTML (for parser edge-case scenarios)."""
        self._site.add(Page(path, html=html))
        return self

    @property
    def name(self) -> str:
        return self._site.name


class WebBuilder:
    """Top-level builder producing a :class:`Web`."""

    def __init__(self) -> None:
        self._web = Web()

    def site(self, name: str) -> SiteBuilder:
        """Start (or continue) building the site called ``name``."""
        return SiteBuilder(self._web.ensure_site(name))

    def build(self) -> Web:
        return self._web
