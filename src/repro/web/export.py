"""Filesystem export/import of simulated webs.

A :class:`~repro.web.web.Web` round-trips to a plain directory tree —

::

    <root>/
      <site-name>/
        index.html          (the "/" page)
        Labs.html ...       (other pages; '/' in paths becomes '__')

— which makes it possible to (a) inspect generated webs with a browser,
(b) hand-edit scenario pages, and (c) import small dumps of *real* HTML
into the simulator.  A manifest file records the exact path mapping so the
round-trip is loss-free even for paths the flattening would collide.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import WebDisError
from .site import Page
from .web import Web

__all__ = ["save_web", "load_web"]

_MANIFEST = "webdis-manifest.json"


def _flatten(path: str) -> str:
    """Filesystem-safe single-segment name for a page path."""
    if path == "/":
        return "index.html"
    name = path.lstrip("/").replace("/", "__")
    if not name.endswith((".html", ".htm")):
        name += ".html"
    return name


def save_web(web: Web, root: str | Path) -> int:
    """Write every page of ``web`` under ``root``; returns the page count.

    Raises :class:`WebDisError` if the flattening would collide (two paths
    mapping to one file) — rename the pages rather than lose one silently.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, dict[str, str]] = {}
    count = 0
    for site_name in web.site_names:
        site = web.site(site_name)
        site_dir = root / site_name
        site_dir.mkdir(exist_ok=True)
        mapping: dict[str, str] = {}
        for path in sorted(site.pages):
            flat = _flatten(path)
            if flat in mapping.values():
                raise WebDisError(
                    f"page paths collide when flattened: {path!r} at {site_name}"
                )
            mapping[path] = flat
            (site_dir / flat).write_text(site.pages[path].html, encoding="utf-8")
            count += 1
        manifest[site_name] = mapping
    (root / _MANIFEST).write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )
    return count


def load_web(root: str | Path) -> Web:
    """Rebuild a :class:`Web` from a :func:`save_web` directory.

    Without a manifest, the directory layout itself is used: each
    subdirectory is a site, ``index.html`` is ``/``, and ``__`` separators
    fold back into ``/`` — enough to import hand-assembled HTML dumps.
    """
    root = Path(root)
    if not root.is_dir():
        raise WebDisError(f"no web directory at {root}")
    manifest_path = root / _MANIFEST
    web = Web()
    if manifest_path.exists():
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        for site_name, mapping in sorted(manifest.items()):
            site = web.ensure_site(site_name)
            for path, flat in sorted(mapping.items()):
                html = (root / site_name / flat).read_text(encoding="utf-8")
                site.add(Page(path, html=html))
        return web
    for site_dir in sorted(p for p in root.iterdir() if p.is_dir()):
        site = web.ensure_site(site_dir.name)
        for file in sorted(site_dir.glob("*.htm*")):
            if file.name == "index.html":
                path = "/"
            else:
                path = "/" + file.name.replace("__", "/")
            site.add(Page(path, html=file.read_text(encoding="utf-8")))
    return web
