"""Seeded synthetic webs for benchmark workloads.

The generator produces a multi-site web with controllable shape so the
benches can sweep the axes the paper's claims depend on:

* **size** — number of sites and pages per site (corpus bytes);
* **connectivity** — local/global out-degree, which drives how many nodes a
  PRE reaches and how much duplication the log table must absorb;
* **selectivity** — the fraction of pages whose title carries the query
  keyword (``"topic"``) and the fraction carrying a bold ``"detail"``
  segment, which drives result volume and dead-end rates;
* **document size** — filler padding, which separates query-shipping bytes
  (independent of document size) from data-shipping bytes (proportional).

Everything is driven by one :class:`random.Random` seed, so runs are
reproducible and paired engine comparisons see the identical web.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .builders import WebBuilder
from .web import Web

__all__ = ["SyntheticWebConfig", "build_synthetic_web", "synthetic_start_url"]


@dataclass(frozen=True, slots=True)
class SyntheticWebConfig:
    """Parameters of a synthetic web."""

    sites: int = 8
    pages_per_site: int = 6
    local_out_degree: int = 2
    global_out_degree: int = 2
    topic_fraction: float = 0.4
    detail_fraction: float = 0.3
    padding_words: int = 50
    #: Fraction of hyperlinks pointing at nonexistent pages (floating links).
    floating_fraction: float = 0.0
    seed: int = 1999

    def __post_init__(self) -> None:
        if self.sites < 1 or self.pages_per_site < 1:
            raise ValueError("need at least one site and one page per site")
        for name in ("topic_fraction", "detail_fraction", "floating_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


def _site_name(index: int) -> str:
    return f"site{index:03d}.example"


def _page_path(index: int) -> str:
    return "/" if index == 0 else f"/page{index}.html"


def synthetic_start_url(config: SyntheticWebConfig) -> str:
    """The canonical start node: the first site's homepage."""
    return f"http://{_site_name(0)}/"


def build_synthetic_web(config: SyntheticWebConfig) -> Web:
    """Generate the web described by ``config`` (deterministic in the seed)."""
    rng = random.Random(config.seed)
    builder = WebBuilder()

    for site_idx in range(config.sites):
        site = builder.site(_site_name(site_idx))
        for page_idx in range(config.pages_per_site):
            has_topic = rng.random() < config.topic_fraction
            has_detail = rng.random() < config.detail_fraction
            title_tail = "topic digest" if has_topic else "general notes"
            links = _links_for(rng, config, site_idx, page_idx)
            emphasized = []
            if has_detail:
                emphasized.append(
                    ("b", f"detail item {site_idx}-{page_idx} of the synthetic corpus")
                )
            site.page(
                _page_path(page_idx),
                title=f"{_site_name(site_idx)} page {page_idx} {title_tail}",
                paragraphs=[
                    f"Synthetic page {page_idx} hosted at {_site_name(site_idx)}.",
                ],
                emphasized=emphasized,
                links=links,
                padding=config.padding_words,
            )
    return builder.build()


def _links_for(
    rng: random.Random,
    config: SyntheticWebConfig,
    site_idx: int,
    page_idx: int,
) -> list[tuple[str, str]]:
    links: list[tuple[str, str]] = []
    # Local links: to other pages of the same site (never self).
    local_candidates = [i for i in range(config.pages_per_site) if i != page_idx]
    rng.shuffle(local_candidates)
    for target in local_candidates[: config.local_out_degree]:
        href = _page_path(target)
        links.append((f"local {target}", _maybe_float(rng, config, href)))
    # Global links: to pages of other sites (never the same site).
    if config.sites > 1:
        for __ in range(config.global_out_degree):
            other = rng.randrange(config.sites - 1)
            if other >= site_idx:
                other += 1
            target_page = rng.randrange(config.pages_per_site)
            href = f"http://{_site_name(other)}{_page_path(target_page)}"
            links.append((f"global {other}", _maybe_float(rng, config, href)))
    return links


def _maybe_float(rng: random.Random, config: SyntheticWebConfig, href: str) -> str:
    """Occasionally rewrite ``href`` to a dangling target (floating link)."""
    if config.floating_fraction and rng.random() < config.floating_fraction:
        if href.startswith("http://"):
            return href.rstrip("/") + "/missing.html"
        return "/missing-" + href.lstrip("/")
    return href
