"""Scenario linting: catch web-authoring mistakes before running queries.

Hand-built webs accumulate the same defects — dangling hrefs, pages no
query can ever reach, duplicate titles that make ``contains`` predicates
ambiguous, contentless pages.  :func:`lint_web` sweeps a
:class:`~repro.web.web.Web` and returns structured findings; the CLI's
``lint`` command wraps it.

Findings are advisory (a web with floating links is *valid* — the engine
treats them as the paper's floating links) except ``error``-severity ones,
which almost certainly mean the scenario will not do what its author
intended.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..html.parser import parse_html
from ..urlutils import Url, parse_url
from .web import Web

__all__ = ["Finding", "LintReport", "lint_web"]


@dataclass(frozen=True, slots=True)
class Finding:
    """One lint finding."""

    severity: str  # "error" | "warning" | "info"
    code: str
    subject: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code} {self.subject}: {self.message}"


@dataclass
class LintReport:
    """All findings for one web."""

    findings: list[Finding]

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_code(self, code: str) -> list[Finding]:
        return [f for f in self.findings if f.code == code]

    def render(self) -> str:
        if not self.findings:
            return "web lint: clean"
        lines = [f"web lint: {len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        lines += [str(f) for f in self.findings]
        return "\n".join(lines)


def lint_web(web: Web, roots: list[str] | None = None) -> LintReport:
    """Sweep ``web`` for authoring defects.

    ``roots`` (URL strings) enable the reachability check; when omitted,
    each site's lexicographically first page is treated as a root.

    Checks:

    * ``floating-link`` (warning) — href resolves to no page;
    * ``unreachable-page`` (warning) — no link path from any root;
    * ``empty-site`` (error) — a site with zero pages;
    * ``no-title`` (warning) — page with an empty ``<title>``;
    * ``duplicate-title`` (info) — same title on several pages of one site;
    * ``empty-page`` (warning) — page with no visible text at all;
    * ``self-link-only`` (info) — page whose only links point at itself.
    """
    findings: list[Finding] = []

    for site_name in web.site_names:
        site = web.site(site_name)
        if not site.pages:
            findings.append(
                Finding("error", "empty-site", site_name, "site has no pages")
            )

    titles_by_site: dict[str, dict[str, list[str]]] = {}
    for url in web.urls():
        html = web.html_for(url)
        assert html is not None
        parsed = parse_html(html)
        subject = str(url)
        if not parsed.title:
            findings.append(
                Finding("warning", "no-title", subject, "page has an empty <title>")
            )
        else:
            titles_by_site.setdefault(url.host, {}).setdefault(
                parsed.title, []
            ).append(subject)
        if not parsed.text:
            findings.append(
                Finding("warning", "empty-page", subject, "page has no visible text")
            )
        links = web.out_links(url)
        for href, __ in links:
            target = href.without_fragment()
            if not web.resolves(target):
                findings.append(
                    Finding(
                        "warning", "floating-link", subject,
                        f"links to nonexistent {target}",
                    )
                )
        if links and all(
            href.without_fragment() == url.without_fragment() for href, __ in links
        ):
            findings.append(
                Finding("info", "self-link-only", subject, "all links point at itself")
            )

    for site_name, titles in titles_by_site.items():
        for title, pages in titles.items():
            if len(pages) > 1:
                findings.append(
                    Finding(
                        "info", "duplicate-title", site_name,
                        f"title {title!r} appears on {len(pages)} pages",
                    )
                )

    findings.extend(_reachability_findings(web, roots))
    return LintReport(findings)


def _reachability_findings(web: Web, roots: list[str] | None) -> list[Finding]:
    if roots is None:
        root_urls = []
        for site_name in web.site_names:
            site = web.site(site_name)
            if site.pages:
                root_urls.append(Url(site_name, sorted(site.pages)[0]))
    else:
        root_urls = [parse_url(text).without_fragment() for text in roots]

    reachable: set[Url] = set()
    frontier = deque(u for u in root_urls if web.resolves(u))
    reachable.update(frontier)
    while frontier:
        url = frontier.popleft()
        for href, __ in web.out_links(url):
            target = href.without_fragment()
            if target not in reachable and web.resolves(target):
                reachable.add(target)
                frontier.append(target)

    return [
        Finding(
            "warning", "unreachable-page", str(url),
            "no link path from any root reaches this page",
        )
        for url in web.urls()
        if url not in reachable
    ]
