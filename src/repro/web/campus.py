"""A replica of the paper's IISc campus web (example query 2, Figures 7-8).

The scenario: starting from the CSA department homepage, one local link
reaches the Laboratories page (title contains "lab"); each lab homepage is
one global link from there; the lab convener's name sits within one further
local link, set off by a horizontal rule (``delimiter = "hr"``).

The three expected answers are the rows of the paper's Figure 8:

=============================================  ========================================  ================================
d1.url                                         d1.title                                  r.text
=============================================  ========================================  ================================
dsl.serc.iisc.ernet.in/people                  Database Systems Lab People               CONVENER Jayant Haritsa
www-compiler.csa.iisc.ernet.in/people          Students of the Compiler Lab at IISc      Convener Prof. Y.N. Srikant
www2.csa.iisc.ernet.in/~gang/lab               HOMEPAGE: SYSTEM SOFTWARE LAB             Convener : Prof. D. K. Subramanian
=============================================  ========================================  ================================

(The figure truncates the third name; we complete it.)  Note the third
convener is announced on the lab homepage itself — zero local links — which
is why the paper's PRE is ``G·(L*1)`` and not ``G·L``.
"""

from __future__ import annotations

from .builders import WebBuilder
from .web import Web

__all__ = [
    "build_campus_web",
    "CAMPUS_START_URL",
    "CAMPUS_QUERY_DISQL",
    "EXPECTED_CONVENER_ROWS",
    "EXPECTED_D0_URL",
]

#: Where example query 2 starts (the CSA department homepage).
CAMPUS_START_URL = "http://www.csa.iisc.ernet.in/"

#: The paper's example query 2, verbatim modulo the www host alias.
CAMPUS_QUERY_DISQL = """
select d0.url, d1.url, d1.title, r.text
from document d0 such that "http://www.csa.iisc.ernet.in/" L d0
where d0.title contains "lab"
     document d1 such that d0 G.(L*1) d1,
     relinfon r such that r.delimiter = "hr"
where r.text contains "convener"
"""

#: Figure 8's d0 column (the Laboratories page).
EXPECTED_D0_URL = "http://www.csa.iisc.ernet.in/Labs"

#: Figure 8's result rows as (d1.url, d1.title, r.text).
EXPECTED_CONVENER_ROWS = (
    (
        "http://dsl.serc.iisc.ernet.in/people",
        "Database Systems Lab People",
        "CONVENER Jayant Haritsa",
    ),
    (
        "http://www-compiler.csa.iisc.ernet.in/people",
        "Students of the Compiler Lab at IISc",
        "Convener Prof. Y.N. Srikant",
    ),
    (
        "http://www2.csa.iisc.ernet.in/~gang/lab",
        "HOMEPAGE: SYSTEM SOFTWARE LAB",
        "Convener : Prof. D. K. Subramanian",
    ),
)


def build_campus_web() -> Web:
    """Construct the campus web replica."""
    builder = WebBuilder()

    (
        builder.site("www.csa.iisc.ernet.in")
        .page(
            "/",
            title="Department of Computer Science and Automation",
            paragraphs=[
                "Welcome to the Department of Computer Science and Automation, "
                "Indian Institute of Science, Bangalore."
            ],
            links=[
                ("Laboratories", "/Labs"),
                ("People", "/People"),
                ("Research", "/Research"),
                ("Courses", "/Courses"),
                ("Indian Institute of Science", "http://www.iisc.ernet.in/"),
            ],
        )
        .page(
            "/Labs",
            title="Laboratories @ CSA IISc",
            paragraphs=["The department hosts several research laboratories."],
            links=[
                ("Database Systems Lab", "http://dsl.serc.iisc.ernet.in/"),
                ("Compiler Lab", "http://www-compiler.csa.iisc.ernet.in/"),
                ("System Software Lab", "http://www2.csa.iisc.ernet.in/~gang/lab"),
            ],
        )
        .page(
            "/People",
            title="Faculty and Staff",
            paragraphs=["Directory of faculty, students and staff."],
            links=[("Home", "/")],
        )
        .page(
            "/Research",
            title="Research Areas",
            paragraphs=["Algorithms, databases, compilers, systems."],
            links=[("Home", "/")],
        )
        .page(
            "/Courses",
            title="Course Listing",
            paragraphs=["Graduate courses offered this term."],
            links=[("Home", "/")],
        )
    )

    (
        builder.site("dsl.serc.iisc.ernet.in")
        .page(
            "/",
            title="Database Systems Lab",
            paragraphs=["The DSL studies database system internals and web querying."],
            links=[
                ("People", "/people"),
                ("Publications", "/pubs"),
                ("DIASPORA project", "/diaspora"),
            ],
        )
        .page(
            "/people",
            title="Database Systems Lab People",
            ruled=["CONVENER Jayant Haritsa"],
            paragraphs=["Students: Nalin Gupta, Maya Ramanath."],
            links=[("DSL home", "/")],
        )
        .page(
            "/pubs",
            title="DSL Publications",
            paragraphs=["Technical reports and conference papers."],
            links=[("DSL home", "/")],
        )
        .page(
            "/diaspora",
            title="DIASPORA: Distributed Web Querying",
            paragraphs=["A fully distributed web-query processing system."],
            links=[("DSL home", "/")],
        )
    )

    (
        builder.site("www-compiler.csa.iisc.ernet.in")
        .page(
            "/",
            title="Compiler Laboratory",
            paragraphs=["Research on compilation techniques."],
            links=[("People", "/people"), ("Projects", "/projects")],
        )
        .page(
            "/people",
            title="Students of the Compiler Lab at IISc",
            ruled=["Convener Prof. Y.N. Srikant"],
            paragraphs=["Research students and project staff."],
            links=[("Compiler Lab home", "/")],
        )
        .page(
            "/projects",
            title="Compiler Lab Projects",
            paragraphs=["Ongoing compiler infrastructure projects."],
            links=[("Compiler Lab home", "/")],
        )
    )

    (
        builder.site("www2.csa.iisc.ernet.in")
        .page(
            "/~gang/lab",
            title="HOMEPAGE: SYSTEM SOFTWARE LAB",
            ruled=["Convener : Prof. D. K. Subramanian"],
            paragraphs=["Operating systems and system software research."],
            links=[("Members", "/~gang/lab/members")],
        )
        .page(
            "/~gang/lab/members",
            title="System Software Lab Members",
            paragraphs=["Graduate students of the lab."],
            links=[("Lab home", "/~gang/lab")],
        )
    )

    builder.site("www.iisc.ernet.in").page(
        "/",
        title="Indian Institute of Science",
        paragraphs=["Institute homepage."],
        links=[("CSA Department", "http://www.csa.iisc.ernet.in/")],
    )

    return builder.build()
