"""Pages and sites of the simulated Web."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import WebDisError
from ..html.generator import PageSpec, render_page
from ..urlutils import Url

__all__ = ["Page", "Site"]


class Page:
    """One web resource: a URL path plus its HTML content.

    Content can be given directly (``html=``) or as a :class:`PageSpec`
    (``spec=``), in which case it is rendered lazily and cached.  Rendered
    pages flow through the real HTML parser at query time, so the full
    document pipeline is exercised.
    """

    __slots__ = ("path", "_spec", "_html")

    def __init__(self, path: str, *, spec: PageSpec | None = None, html: str | None = None) -> None:
        if (spec is None) == (html is None):
            raise WebDisError("Page needs exactly one of spec= or html=")
        if not path.startswith("/"):
            raise WebDisError(f"page path must be absolute, got {path!r}")
        self.path = path
        self._spec = spec
        self._html = html

    @property
    def html(self) -> str:
        if self._html is None:
            assert self._spec is not None
            self._html = render_page(self._spec)
        return self._html

    @property
    def spec(self) -> PageSpec | None:
        return self._spec

    def __repr__(self) -> str:
        return f"Page({self.path!r})"


@dataclass
class Site:
    """A named web-server hosting a set of pages.

    One WEBDIS query-server daemon runs per site (paper Section 2.4).
    """

    name: str
    pages: dict[str, Page]

    def __init__(self, name: str) -> None:
        if not name:
            raise WebDisError("site name must be non-empty")
        self.name = name.lower()
        self.pages = {}

    def add(self, page: Page) -> None:
        if page.path in self.pages:
            raise WebDisError(f"site {self.name} already has a page at {page.path}")
        self.pages[page.path] = page

    def page_at(self, path: str) -> Page | None:
        return self.pages.get(path)

    def url_of(self, path: str) -> Url:
        """The absolute URL of the page at ``path`` on this site."""
        return Url(self.name, path)

    def __len__(self) -> int:
        return len(self.pages)

    def __repr__(self) -> str:
        return f"Site({self.name!r}, {len(self.pages)} pages)"
