"""The Web container: a directed graph of pages across sites."""

from __future__ import annotations

from typing import Iterator

from ..errors import WebDisError
from ..html.parser import parse_html
from ..urlutils import Url, classify_link, parse_url
from .site import Site

__all__ = ["Web"]


class Web:
    """A set of :class:`Site` objects addressable by URL.

    This is the ground truth the simulated network serves.  ``html_for``
    returns ``None`` for URLs that do not resolve — those are the paper's
    "floating links" (Section 1.2), which the link-maintenance application
    detects.
    """

    def __init__(self) -> None:
        self._sites: dict[str, Site] = {}

    # -- construction -------------------------------------------------------

    def add_site(self, site: Site) -> Site:
        if site.name in self._sites:
            raise WebDisError(f"duplicate site {site.name!r}")
        self._sites[site.name] = site
        return site

    def ensure_site(self, name: str) -> Site:
        """Return the site called ``name``, creating it when absent."""
        name = name.lower()
        site = self._sites.get(name)
        if site is None:
            site = self.add_site(Site(name))
        return site

    # -- lookup ---------------------------------------------------------------

    @property
    def site_names(self) -> list[str]:
        return sorted(self._sites)

    def site(self, name: str) -> Site:
        try:
            return self._sites[name.lower()]
        except KeyError:
            raise WebDisError(f"no site named {name!r}") from None

    def has_site(self, name: str) -> bool:
        return name.lower() in self._sites

    def html_for(self, url: Url) -> str | None:
        """The HTML at ``url`` (fragment ignored), or ``None`` when floating."""
        site = self._sites.get(url.host)
        if site is None:
            return None
        page = site.page_at(url.path)
        return page.html if page is not None else None

    def resolves(self, url: Url) -> bool:
        return self.html_for(url) is not None

    def urls(self) -> Iterator[Url]:
        """Every page URL, sorted for determinism."""
        for name in sorted(self._sites):
            site = self._sites[name]
            for path in sorted(site.pages):
                yield Url(name, path)

    def page_count(self) -> int:
        return sum(len(site) for site in self._sites.values())

    def total_bytes(self) -> int:
        """Total HTML bytes across the Web (the data-shipping worst case)."""
        return sum(
            len(page.html) for site in self._sites.values() for page in site.pages.values()
        )

    # -- graph analysis --------------------------------------------------------

    def out_links(self, url: Url) -> list[tuple[Url, str]]:
        """Parsed, classified outgoing links of the page at ``url``.

        Returns ``(href, ltype_symbol)`` pairs; unresolvable hrefs are
        skipped, matching the Database Constructor's behaviour.
        """
        html = self.html_for(url)
        if html is None:
            return []
        base = url.without_fragment()
        parsed = parse_html(html)
        resolve_base = base
        if parsed.base_href:
            try:
                resolve_base = parse_url(parsed.base_href, base=base)
            except Exception:
                pass
        links: list[tuple[Url, str]] = []
        for anchor in parsed.anchors:
            try:
                href = parse_url(anchor.href, base=resolve_base)
            except Exception:
                continue
            links.append((href, classify_link(base, href)))
        return links

    def to_networkx(self):  # pragma: no cover - convenience for notebooks
        """Export the link graph as a ``networkx.DiGraph`` (edge attr ``ltype``)."""
        import networkx as nx

        graph = nx.DiGraph()
        for url in self.urls():
            graph.add_node(str(url), site=url.host)
        for url in self.urls():
            for href, ltype in self.out_links(url):
                graph.add_edge(str(url), str(href.without_fragment()), ltype=ltype)
        return graph

    def __repr__(self) -> str:
        return f"Web({len(self._sites)} sites, {self.page_count()} pages)"
