"""The exact web topologies behind the paper's Figures 1 and 5.

The figures illustrate the traversal of the web-query

    Q = S  G·(G|L)  q1  (G|L)  q2

over small node sets.  The paper does not print the underlying link tables,
so this module reconstructs topologies consistent with every stated fact:

**Figure 1** — nodes {1,2,3} act as PureRouters, {4,5,6,7,8} as
ServerRouters; node 4 acts *twice* (once for q1, once for q2 with no further
forwarding); node 7 is a dead end because it fails q1.

**Figure 5** — node 4 is visited five times (visits a-e), and visits c, d, e
arrive in the *same* state of computation, so with the node-query log table
exactly two of them are dropped as duplicates.

``q1`` matches documents whose title contains ``"topic"``; ``q2`` matches
documents containing a bold segment mentioning ``"detail"``.
"""

from __future__ import annotations

from .builders import WebBuilder
from .web import Web

__all__ = [
    "FIGURE_QUERY_DISQL",
    "FIGURE1_START_URL",
    "FIGURE5_START_URL",
    "EXPECTED_FIG1_PURE_ROUTERS",
    "EXPECTED_FIG1_SERVER_ROUTERS",
    "EXPECTED_FIG1_DEAD_ENDS",
    "EXPECTED_FIG1_DOUBLE_ACTOR",
    "EXPECTED_FIG5_FOCUS_NODE",
    "EXPECTED_FIG5_VISITS",
    "EXPECTED_FIG5_DUPLICATE_DROPS",
    "build_figure1_web",
    "build_figure5_web",
    "figure_query_disql",
]

FIGURE1_START_URL = "http://site-s.example/"
FIGURE5_START_URL = "http://site-s.example/"

#: DISQL text for ``Q = S G·(G|L) q1 (G|L) q2`` parameterized by start URL.
FIGURE_QUERY_DISQL = """
select d0.url, d1.url, r.text
from document d0 such that "{start}" G.(G|L) d0
where d0.title contains "topic"
     document d1 such that d0 (G|L) d1,
     relinfon r such that r.delimiter = "b"
where r.text contains "detail"
"""


def figure_query_disql(start_url: str) -> str:
    """The figure query with its start node filled in."""
    return FIGURE_QUERY_DISQL.format(start=start_url)


# --- Figure 1 -----------------------------------------------------------------

#: Node name -> expected role(s), as stated under Figure 1.
EXPECTED_FIG1_PURE_ROUTERS = ("node1", "node2", "node3")
EXPECTED_FIG1_SERVER_ROUTERS = ("node4", "node5", "node6", "node7", "node8")
EXPECTED_FIG1_DEAD_ENDS = ("node7",)
EXPECTED_FIG1_DOUBLE_ACTOR = "node4"


def build_figure1_web() -> Web:
    """Reconstruct the Figure 1 topology.

    Link plan (PRE stage in brackets)::

        S -G-> 1, 2, 3                 [first G of p1]
        1 -G-> 4 ; 2 -L-> 5 ; 3 -G-> 6 ; 3 -L-> 7    [(G|L) of p1]
        4 -G-> 8 ; 5 -G-> 4            [(G|L) = p2]
        7 -G-> 8                       (never followed: 7 fails q1)

    Nodes 4, 5, 6 satisfy q1 (title contains "topic"); node 7 does not.
    Nodes 4 and 8 satisfy q2 (bold segment mentioning "detail").
    """
    builder = WebBuilder()
    builder.site("site-s.example").page(
        "/",
        title="Start node S",
        links=[
            ("one", "http://site-a.example/"),
            ("two", "http://site-b.example/"),
            ("three", "http://site-c.example/"),
        ],
    )
    builder.site("site-a.example").page(
        "/",
        title="node1 index",
        links=[("four", "http://site-d.example/")],
    )
    (
        builder.site("site-b.example")
        .page("/", title="node2 index", links=[("five", "/five.html")])
        .page(
            "/five.html",
            title="node5 topic survey",
            links=[("four", "http://site-d.example/")],
        )
    )
    (
        builder.site("site-c.example")
        .page(
            "/",
            title="node3 index",
            links=[("six", "http://site-e.example/"), ("seven", "/seven.html")],
        )
        .page(
            "/seven.html",
            title="node7 miscellany",  # fails q1: no "topic" in the title
            links=[("eight", "http://site-f.example/")],
        )
    )
    builder.site("site-d.example").page(
        "/",
        title="node4 topic overview",
        emphasized=[("b", "detail digest for node4")],
        links=[("eight", "http://site-f.example/")],
    )
    builder.site("site-e.example").page(
        "/",
        title="node6 topic notes",
        # Leaf: satisfies q1 but has no (G|L) links to forward q2 along.
    )
    builder.site("site-f.example").page(
        "/",
        title="node8 archive",
        emphasized=[("b", "detail archive for node8")],
    )
    return builder.build()


#: Page URL -> figure node name, for trace rendering.
FIG1_NODE_NAMES = {
    "http://site-s.example/": "S",
    "http://site-a.example/": "node1",
    "http://site-b.example/": "node2",
    "http://site-b.example/five.html": "node5",
    "http://site-c.example/": "node3",
    "http://site-c.example/seven.html": "node7",
    "http://site-d.example/": "node4",
    "http://site-e.example/": "node6",
    "http://site-f.example/": "node8",
}


# --- Figure 5 -----------------------------------------------------------------

EXPECTED_FIG5_FOCUS_NODE = "http://site-four.example/"
#: Total arrivals at node 4 (visits a-e of the figure).
EXPECTED_FIG5_VISITS = 5
#: With the log table on, visits d and e are dropped as duplicates of c.
EXPECTED_FIG5_DUPLICATE_DROPS = 2


def build_figure5_web() -> Web:
    """Reconstruct the Figure 5 topology (five visits to node 4).

    Link plan (every link global; one site per node)::

        S -G-> 4            visit a: state (2, G|L)   — PureRouter
        S -G-> 1
        1 -G-> 4            visit b: state (2, N)     — evaluates q1
        1 -G-> X1, X2, X3   (each evaluates q1, succeeds)
        X1 -G-> 4 ; X2 -G-> 4 ; X3 -G-> 4
                            visits c, d, e: state (1, N) — same state!
        4 -G-> 2            (q2 forwarded from visits a/b paths)

    Node 4 and the X nodes satisfy q1; nodes 4 and 2 satisfy q2.
    """
    builder = WebBuilder()
    builder.site("site-s.example").page(
        "/",
        title="Start node S",
        links=[("four", "http://site-four.example/"), ("one", "http://site-one.example/")],
    )
    builder.site("site-one.example").page(
        "/",
        title="node1 index",
        links=[
            ("four", "http://site-four.example/"),
            ("x1", "http://site-x1.example/"),
            ("x2", "http://site-x2.example/"),
            ("x3", "http://site-x3.example/"),
        ],
    )
    builder.site("site-four.example").page(
        "/",
        title="node4 topic hub",
        emphasized=[("b", "detail hub for node4")],
        links=[("two", "http://site-two.example/")],
    )
    for name in ("x1", "x2", "x3"):
        builder.site(f"site-{name}.example").page(
            "/",
            title=f"node {name} topic page",
            links=[("four", "http://site-four.example/")],
        )
    builder.site("site-two.example").page(
        "/",
        title="node2 terminus",
        emphasized=[("b", "detail terminus for node2")],
    )
    return builder.build()
