"""The simulated Web: sites, pages, and generators.

The paper ran WEBDIS on the live IISc campus web.  We substitute an
in-memory Web whose pages are real HTML (rendered from structural specs and
re-parsed by the query-servers), organised into named sites — one WEBDIS
query-server per site, exactly as deployed in the paper.

Generators:

* :mod:`repro.web.builders` — fluent construction of hand-crafted webs;
* :mod:`repro.web.synthetic` — seeded random webs with tunable size, fanout
  and keyword selectivity (benchmark workloads);
* :mod:`repro.web.campus` — a replica of the paper's campus scenario
  (example query 2, Figures 7 and 8);
* :mod:`repro.web.figures` — the exact Figure 1 and Figure 5 topologies.
"""

from .builders import SiteBuilder, WebBuilder
from .campus import build_campus_web
from .export import load_web, save_web
from .figures import build_figure1_web, build_figure5_web
from .site import Page, Site
from .synthetic import SyntheticWebConfig, build_synthetic_web
from .web import Web

__all__ = [
    "Page",
    "Site",
    "SiteBuilder",
    "SyntheticWebConfig",
    "Web",
    "WebBuilder",
    "build_campus_web",
    "build_figure1_web",
    "build_figure5_web",
    "build_synthetic_web",
    "load_web",
    "save_web",
]
