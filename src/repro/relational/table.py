"""In-memory tables of immutable rows."""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import SchemaError
from .expr import _to_number
from .schema import Schema

__all__ = ["ColumnIndex", "Table"]

#: Shared empty probe result — `ColumnIndex.probe` misses return this.
_NO_ROWS: tuple[int, ...] = ()


def _maybe_numeric_str(text: str) -> bool:
    """Cheap pre-filter for "does this string parse as a number?".

    A string that compares equal to a *finite* number under
    :func:`~repro.relational.expr._coerce_pair` must start with a digit,
    a sign, a dot or whitespace.  Spellings like ``"inf"``/``"nan"`` slip
    through the filter, but they can never equal an ``int`` probe value
    (and ``float`` probes always bypass the hash path), so missing them
    keeps :meth:`ColumnIndex.probe` sound.
    """
    head = text[:1]
    if not (head.isdigit() or head in "+-." or head.isspace()):
        return False
    return _to_number(text) is not None


class ColumnIndex:
    """Hash index over one column: value → row positions, insertion-ordered.

    Bucket lists preserve row order, so probing reproduces the row
    executor's scan order exactly.  The index also profiles the column's
    value kinds, because Python ``==`` (what dict lookup uses) is only the
    interpreter's *coerced* equality when numeric coercion provably cannot
    apply: :func:`~repro.relational.expr._coerce_pair` makes ``5 = "5"``
    true, which a hash lookup on mixed keys would miss.  :meth:`probe`
    refuses (returns ``None``) whenever the profile cannot rule that out.
    """

    __slots__ = ("buckets", "has_number", "has_numeric_str", "hash_exact")

    def __init__(self, values: Iterable[object]) -> None:
        buckets: dict[object, list[int]] | None = {}
        has_number = False
        has_numeric_str = False
        #: False when the column holds values for which dict equality may
        #: diverge from the interpreter's (floats: NaN identity shortcut;
        #: unhashables; exotic types with custom __eq__/__hash__).
        hash_exact = True
        try:
            for position, value in enumerate(values):
                kind = type(value)
                if kind is str:
                    if not has_numeric_str and _maybe_numeric_str(value):
                        has_numeric_str = True
                elif kind is int or kind is bool:
                    has_number = True
                else:
                    hash_exact = False
                    if isinstance(value, float):
                        has_number = True
                bucket = buckets.get(value)
                if bucket is None:
                    buckets[value] = [position]
                else:
                    bucket.append(position)
        except TypeError:
            buckets = None  # unhashable value: the index can only refuse
        self.buckets = buckets
        self.has_number = has_number
        self.has_numeric_str = has_numeric_str
        self.hash_exact = hash_exact

    def probe(self, value: object) -> "list[int] | tuple[int, ...] | None":
        """Positions whose value compares ``=``-equal to ``value``.

        Returns the bucket (row positions in insertion order; a shared
        empty tuple on a miss), or ``None`` when a hash lookup is not
        provably the interpreter's equality for this value — numeric
        coercion could apply, the column profile is not hash-exact, or the
        probe value is outside the ``str``/``int`` system types.  ``None``
        means "fall back to a scan", never "no rows".
        """
        buckets = self.buckets
        if buckets is None or not self.hash_exact:
            return None
        kind = type(value)
        if kind is str:
            if self.has_number and _to_number(value) is not None:
                return None
        elif kind is int or kind is bool:
            if self.has_numeric_str:
                return None
        else:
            return None
        return buckets.get(value, _NO_ROWS)


class Table:
    """A bag of rows conforming to a :class:`Schema`.

    Rows are plain tuples in schema attribute order.  Node databases are
    built once, scanned a handful of times, then purged, so the structure is
    deliberately simple: an append-only list with full scans.

    The columnar executor (:mod:`repro.relational.columnar`) reads the same
    data as parallel per-attribute arrays via :meth:`columns` and probes
    equality joins through per-column hash indexes via :meth:`index`; both
    are built lazily on first use and cached until the next :meth:`insert`,
    so row-only consumers never pay for them.  ``stats`` (a
    :class:`~repro.net.stats.TrafficStats`) mirrors index reuse into the
    ``index_builds`` / ``index_hits`` counters when provided.
    """

    __slots__ = ("schema", "stats", "_rows", "_columns", "_indexes")

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[tuple[object, ...]] = (),
        stats: "object | None" = None,
    ) -> None:
        self.schema = schema
        self.stats = stats
        self._rows: list[tuple[object, ...]] = []
        self._columns: tuple[list[object], ...] | None = None
        self._indexes: dict[int, ColumnIndex] = {}
        for row in rows:
            self.insert(row)

    def insert(self, row: tuple[object, ...]) -> None:
        """Append ``row``; its arity must match the schema."""
        if len(row) != self.schema.arity:
            raise SchemaError(
                f"row arity {len(row)} does not match schema "
                f"{self.schema.name!r} arity {self.schema.arity}"
            )
        self._rows.append(tuple(row))
        self._columns = None
        if self._indexes:
            self._indexes.clear()

    def rows(self) -> Iterator[tuple[object, ...]]:
        """Iterate rows in insertion order."""
        return iter(self._rows)

    def row_list(self) -> list[tuple[object, ...]]:
        """The backing row list, re-iterable without copying.

        Compiled scans (:mod:`repro.relational.compile`) loop this directly;
        callers must treat it as read-only.
        """
        return self._rows

    def columns(self) -> tuple[list[object], ...]:
        """The columnar view: one value list per schema attribute.

        ``columns()[schema.position(a)][i] == row_list()[i][position(a)]``.
        Built once per table generation and cached; callers must treat the
        lists as read-only.
        """
        cols = self._columns
        if cols is None:
            rows = self._rows
            cols = self._columns = tuple(
                [row[index] for row in rows] for index in range(self.schema.arity)
            )
        return cols

    def index(self, position: int) -> ColumnIndex:
        """The cached :class:`ColumnIndex` for the column at ``position``.

        Built on first use, invalidated by :meth:`insert` — so repeated
        node-queries joining on the same column reuse one build, exactly
        like :meth:`~repro.model.database.NodeDatabase.forward_targets`
        reuses its per-link-type selections.  Reuse is visible in
        ``TrafficStats.index_hits`` / ``index_builds`` when the table
        carries a stats mirror.
        """
        index = self._indexes.get(position)
        stats = self.stats
        if index is None:
            index = self._indexes[position] = ColumnIndex(self.columns()[position])
            if stats is not None:
                stats.index_builds += 1
        elif stats is not None:
            stats.index_hits += 1
        return index

    def column(self, attribute: str) -> list[object]:
        """All values of ``attribute`` in insertion order."""
        pos = self.schema.position(attribute)
        return [row[pos] for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, {len(self._rows)} rows)"
