"""In-memory tables of immutable rows."""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import SchemaError
from .schema import Schema

__all__ = ["Table"]


class Table:
    """A bag of rows conforming to a :class:`Schema`.

    Rows are plain tuples in schema attribute order.  Node databases are
    built once, scanned a handful of times, then purged, so the structure is
    deliberately simple: an append-only list with full scans.

    The columnar executor (:mod:`repro.relational.columnar`) reads the same
    data as parallel per-attribute arrays via :meth:`columns`; the transpose
    is built lazily on first use and cached until the next :meth:`insert`,
    so row-only consumers never pay for it.
    """

    __slots__ = ("schema", "_rows", "_columns")

    def __init__(self, schema: Schema, rows: Iterable[tuple[object, ...]] = ()) -> None:
        self.schema = schema
        self._rows: list[tuple[object, ...]] = []
        self._columns: tuple[list[object], ...] | None = None
        for row in rows:
            self.insert(row)

    def insert(self, row: tuple[object, ...]) -> None:
        """Append ``row``; its arity must match the schema."""
        if len(row) != self.schema.arity:
            raise SchemaError(
                f"row arity {len(row)} does not match schema "
                f"{self.schema.name!r} arity {self.schema.arity}"
            )
        self._rows.append(tuple(row))
        self._columns = None

    def rows(self) -> Iterator[tuple[object, ...]]:
        """Iterate rows in insertion order."""
        return iter(self._rows)

    def row_list(self) -> list[tuple[object, ...]]:
        """The backing row list, re-iterable without copying.

        Compiled scans (:mod:`repro.relational.compile`) loop this directly;
        callers must treat it as read-only.
        """
        return self._rows

    def columns(self) -> tuple[list[object], ...]:
        """The columnar view: one value list per schema attribute.

        ``columns()[schema.position(a)][i] == row_list()[i][position(a)]``.
        Built once per table generation and cached; callers must treat the
        lists as read-only.
        """
        cols = self._columns
        if cols is None:
            rows = self._rows
            cols = self._columns = tuple(
                [row[index] for row in rows] for index in range(self.schema.arity)
            )
        return cols

    def column(self, attribute: str) -> list[object]:
        """All values of ``attribute`` in insertion order."""
        pos = self.schema.position(attribute)
        return [row[pos] for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, {len(self._rows)} rows)"
