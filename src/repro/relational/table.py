"""In-memory tables of immutable rows."""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import SchemaError
from .schema import Schema

__all__ = ["Table"]


class Table:
    """A bag of rows conforming to a :class:`Schema`.

    Rows are plain tuples in schema attribute order.  Node databases are
    built once, scanned a handful of times, then purged, so the structure is
    deliberately simple: an append-only list with full scans.
    """

    __slots__ = ("schema", "_rows")

    def __init__(self, schema: Schema, rows: Iterable[tuple[object, ...]] = ()) -> None:
        self.schema = schema
        self._rows: list[tuple[object, ...]] = []
        for row in rows:
            self.insert(row)

    def insert(self, row: tuple[object, ...]) -> None:
        """Append ``row``; its arity must match the schema."""
        if len(row) != len(self.schema.attributes):
            raise SchemaError(
                f"row arity {len(row)} does not match schema "
                f"{self.schema.name!r} arity {len(self.schema.attributes)}"
            )
        self._rows.append(tuple(row))

    def rows(self) -> Iterator[tuple[object, ...]]:
        """Iterate rows in insertion order."""
        return iter(self._rows)

    def row_list(self) -> list[tuple[object, ...]]:
        """The backing row list, re-iterable without copying.

        Compiled scans (:mod:`repro.relational.compile`) loop this directly;
        callers must treat it as read-only.
        """
        return self._rows

    def column(self, attribute: str) -> list[object]:
        """All values of ``attribute`` in insertion order."""
        pos = self.schema.position(attribute)
        return [row[pos] for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, {len(self._rows)} rows)"
