"""Node-query representation and evaluation.

A *node-query* is the unit of local work in WEBDIS: an SQL-style
select/from/where evaluated entirely against one node's virtual relations
(paper Section 2.3 — each node-query "can be completely processed locally").
Evaluation is a nested-loop scan over the cross product of the declared
virtual relations, with **predicate pushdown**: each conjunct of the
``where`` clause is applied at the loop depth where its last referenced
alias is bound, pruning the cross product as early as possible.  (The
unoptimized evaluator is kept as :func:`evaluate_node_query_naive` — the
test oracle the pushdown is property-checked against.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..errors import DisqlSemanticsError, SchemaError
from .expr import TRUE, Attr, Expr, attrs_referenced, conjuncts, evaluate
from .table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..model.database import NodeDatabase

__all__ = ["TableDecl", "NodeQuery", "ResultRow", "evaluate_node_query"]

_VIRTUAL_RELATIONS = ("document", "anchor", "relinfon")


@dataclass(frozen=True, slots=True)
class TableDecl:
    """One ``from`` entry: virtual relation ``relation`` bound to ``alias``."""

    relation: str
    alias: str

    def __post_init__(self) -> None:
        if self.relation not in _VIRTUAL_RELATIONS:
            raise DisqlSemanticsError(
                f"unknown virtual relation {self.relation!r}; "
                f"expected one of {', '.join(_VIRTUAL_RELATIONS)}"
            )
        if not self.alias.isidentifier():
            raise DisqlSemanticsError(f"invalid table alias {self.alias!r}")


@dataclass(frozen=True, slots=True)
class NodeQuery:
    """A locally evaluable select/from/where triple.

    Attributes:
        select: projected attributes, in output order.
        tables: virtual relations in scope, with aliases.
        where: the predicate; :data:`~repro.relational.expr.TRUE` when absent.
        label: human-readable name (``q1``, ``q2`` ...) used in traces.
        sitewide_aliases: document aliases that range over *every* document
            hosted at the current node's site rather than just the current
            node — the multi-document node-queries of paper §7.1 (footnote
            2).  Still strictly site-local: no inter-site communication.
    """

    select: tuple[Attr, ...]
    tables: tuple[TableDecl, ...]
    where: Expr = TRUE
    label: str = "q"
    sitewide_aliases: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.select:
            raise DisqlSemanticsError(f"node-query {self.label} has an empty select list")
        if not self.tables:
            raise DisqlSemanticsError(f"node-query {self.label} declares no tables")
        aliases = [decl.alias for decl in self.tables]
        if len(set(aliases)) != len(aliases):
            raise DisqlSemanticsError(f"node-query {self.label} has duplicate aliases: {aliases}")
        known = set(aliases)
        for attr in tuple(self.select) + tuple(attrs_referenced(self.where)):
            if attr.alias not in known:
                raise DisqlSemanticsError(
                    f"node-query {self.label} references undeclared alias {attr.alias!r}"
                )
        for alias in self.sitewide_aliases:
            decl = next((d for d in self.tables if d.alias == alias), None)
            if decl is None:
                raise DisqlSemanticsError(
                    f"node-query {self.label}: sitewide alias {alias!r} is undeclared"
                )
            if decl.relation != "document":
                raise DisqlSemanticsError(
                    f"node-query {self.label}: only document aliases can be "
                    f"sitewide, not {decl.relation!r}"
                )

    @property
    def header(self) -> tuple[str, ...]:
        """Qualified column names of result rows, in select order."""
        return tuple(str(attr) for attr in self.select)

    def cost_weight(self) -> int:
        """A unitless evaluation-cost weight used by the simulator's CPU model."""
        return len(self.tables) * (1 + len(self.select))

    def __str__(self) -> str:
        sel = ", ".join(str(attr) for attr in self.select)
        frm = ", ".join(f"{t.relation} {t.alias}" for t in self.tables)
        if self.where == TRUE:
            return f"select {sel} from {frm}"
        return f"select {sel} from {frm} where {self.where}"


@dataclass(frozen=True, slots=True)
class ResultRow:
    """One projected result row with its qualified-name header."""

    header: tuple[str, ...]
    values: tuple[object, ...]

    def as_mapping(self) -> dict[str, object]:
        return dict(zip(self.header, self.values))

    def __str__(self) -> str:
        return ", ".join(f"{name}={value!r}" for name, value in zip(self.header, self.values))


def evaluate_node_query(
    query: NodeQuery,
    database: "NodeDatabase",
    site_documents: Table | None = None,
) -> list[ResultRow]:
    """Evaluate ``query`` against one node's virtual relations.

    ``site_documents`` supplies the DOCUMENT rows of every page at the
    node's site; it is required exactly when the query has
    ``sitewide_aliases`` (multi-document node-queries, §7.1).

    Returns the projected rows; an empty list means the node-query failed
    (the node becomes a dead end, paper Section 2.5).
    """
    if query.sitewide_aliases and site_documents is None:
        raise DisqlSemanticsError(
            f"node-query {query.label} needs site-wide documents but none were built"
        )
    scans = _scans_for(query, database, site_documents)
    filters = _plan_filters(query, [alias for alias, __ in scans])
    results: list[ResultRow] = []
    _nested_loop(query, scans, filters, 0, {}, results)
    return results


def evaluate_node_query_naive(
    query: NodeQuery,
    database: "NodeDatabase",
    site_documents: Table | None = None,
) -> list[ResultRow]:
    """Reference evaluator: full cross product, predicate applied at the leaf.

    Semantically identical to :func:`evaluate_node_query` (property-tested);
    kept as the oracle for the pushdown optimization.
    """
    scans = _scans_for(query, database, site_documents)
    leaf_only: list[list[Expr]] = [[] for __ in scans] + [[query.where]]
    results: list[ResultRow] = []
    _nested_loop(query, scans, leaf_only, 0, {}, results)
    return results


def _scans_for(
    query: NodeQuery, database: "NodeDatabase", site_documents: Table | None
) -> list[tuple[str, Table]]:
    if query.sitewide_aliases and site_documents is None:
        raise DisqlSemanticsError(
            f"node-query {query.label} needs site-wide documents but none were built"
        )
    sitewide = set(query.sitewide_aliases)
    scans: list[tuple[str, Table]] = []
    for decl in query.tables:
        if decl.alias in sitewide:
            assert site_documents is not None
            scans.append((decl.alias, site_documents))
        else:
            scans.append((decl.alias, database.relation(decl.relation)))
    return scans


def _plan_filters(query: NodeQuery, alias_order: Sequence[str]) -> list[list[Expr]]:
    """Assign each WHERE conjunct to the earliest depth where it is evaluable.

    ``plan[d]`` holds conjuncts applicable right after binding alias ``d-1``
    (``plan[0]`` holds constant predicates).  Returned list has
    ``len(alias_order) + 1`` slots; every conjunct lands in exactly one.
    """
    positions = {alias: index for index, alias in enumerate(alias_order)}
    plan: list[list[Expr]] = [[] for __ in range(len(alias_order) + 1)]
    for conjunct in conjuncts(query.where):
        referenced = attrs_referenced(conjunct)
        depth = max((positions[attr.alias] + 1 for attr in referenced), default=0)
        plan[depth].append(conjunct)
    return plan


def _nested_loop(
    query: NodeQuery,
    scans: Sequence[tuple[str, Table]],
    filters: Sequence[Sequence[Expr]],
    depth: int,
    bindings: dict[str, Mapping[str, object]],
    results: list[ResultRow],
) -> None:
    for predicate in filters[depth]:
        if not evaluate(predicate, bindings):
            return
    if depth == len(scans):
        values = tuple(bindings[attr.alias][attr.name] for attr in query.select)
        results.append(ResultRow(query.header, values))
        return
    alias, table = scans[depth]
    attributes = table.schema.attributes
    for row in table.rows():
        bindings[alias] = dict(zip(attributes, row))
        _nested_loop(query, scans, filters, depth + 1, bindings, results)
    bindings.pop(alias, None)


def project_row(row: Mapping[str, object], attrs: Sequence[Attr]) -> tuple[object, ...]:
    """Project ``row`` (qualified-name mapping) onto ``attrs``.

    Raises:
        SchemaError: when a requested attribute is missing from the row.
    """
    values = []
    for attr in attrs:
        key = str(attr)
        if key not in row:
            raise SchemaError(f"result row has no column {key!r}")
        values.append(row[key])
    return tuple(values)
