"""Boolean/comparison expression AST and evaluator for node-queries.

The expression language is the one DISQL's ``where`` clauses need (paper
Section 2.3): attribute references qualified by a table alias, string and
numeric literals, the six comparison operators, the ``contains`` substring
predicate, and ``and`` / ``or`` / ``not``.

``contains`` is **case-insensitive**: in the paper's sample execution the
condition ``r.text contains "convener"`` matches the segment
``"CONVENER Jayant Haritsa"`` (Figure 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Union

from ..errors import EvaluationError

__all__ = [
    "Expr",
    "Attr",
    "Literal",
    "Compare",
    "Contains",
    "And",
    "Or",
    "Not",
    "TRUE",
    "evaluate",
    "attrs_referenced",
    "conjuncts",
    "conjoin",
]

Value = Union[str, int, float, bool]
#: An evaluation environment: alias -> (attribute -> value).
Bindings = Mapping[str, Mapping[str, Value]]


@dataclass(frozen=True, slots=True)
class Attr:
    """A qualified attribute reference ``alias.name`` (e.g. ``d0.title``)."""

    alias: str
    name: str

    def __str__(self) -> str:
        return f"{self.alias}.{self.name}"


@dataclass(frozen=True, slots=True)
class Literal:
    """A constant string or number."""

    value: Value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace('"', '\\"')
            return f'"{escaped}"'
        return str(self.value)


_COMPARATORS: dict[str, Callable[[Value, Value], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True, slots=True)
class Compare:
    """``left op right`` with op one of ``= != < <= > >=``."""

    op: str
    left: "Expr"
    right: "Expr"

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise EvaluationError(f"unknown comparison operator {self.op!r}")

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, slots=True)
class Contains:
    """``haystack contains[~k] needle`` — case-insensitive containment.

    ``max_edits = 0`` is the paper's exact (substring) semantics;
    ``max_edits = k > 0`` is the approximate-query extension (§7.1): the
    needle may differ from some haystack window by up to ``k`` character
    edits (see :mod:`repro.relational.fuzzy`).
    """

    haystack: "Expr"
    needle: "Expr"
    max_edits: int = 0

    def __post_init__(self) -> None:
        if self.max_edits < 0:
            raise EvaluationError("contains~k needs k >= 0")

    def __str__(self) -> str:
        op = "contains" if self.max_edits == 0 else f"contains~{self.max_edits}"
        return f"{self.haystack} {op} {self.needle}"


@dataclass(frozen=True, slots=True)
class And:
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True, slots=True)
class Or:
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True, slots=True)
class Not:
    operand: "Expr"

    def __str__(self) -> str:
        return f"(not {self.operand})"


Expr = Union[Attr, Literal, Compare, Contains, And, Or, Not]

#: A vacuously true predicate (empty ``where`` clause).
TRUE: Expr = Literal(True)


def evaluate(expr: Expr, bindings: Bindings) -> Value:
    """Evaluate ``expr`` against ``bindings``.

    Raises:
        EvaluationError: on unknown aliases/attributes, type-incompatible
            comparisons, or non-string ``contains`` operands.
    """
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, Attr):
        try:
            row = bindings[expr.alias]
        except KeyError:
            raise EvaluationError(f"unknown table alias {expr.alias!r}") from None
        try:
            return row[expr.name]
        except KeyError:
            raise EvaluationError(
                f"table {expr.alias!r} has no attribute {expr.name!r}"
            ) from None
    if isinstance(expr, Compare):
        left = evaluate(expr.left, bindings)
        right = evaluate(expr.right, bindings)
        left, right = _coerce_pair(expr.op, left, right)
        try:
            return _COMPARATORS[expr.op](left, right)
        except TypeError:
            raise EvaluationError(
                f"cannot compare {type(left).__name__} {expr.op} {type(right).__name__}"
            ) from None
    if isinstance(expr, Contains):
        haystack = evaluate(expr.haystack, bindings)
        needle = evaluate(expr.needle, bindings)
        if not isinstance(haystack, str) or not isinstance(needle, str):
            raise EvaluationError("contains requires string operands")
        if expr.max_edits:
            from .fuzzy import fuzzy_contains

            return fuzzy_contains(haystack, needle, expr.max_edits)
        return needle.lower() in haystack.lower()
    if isinstance(expr, And):
        return bool(evaluate(expr.left, bindings)) and bool(evaluate(expr.right, bindings))
    if isinstance(expr, Or):
        return bool(evaluate(expr.left, bindings)) or bool(evaluate(expr.right, bindings))
    if isinstance(expr, Not):
        return not evaluate(expr.operand, bindings)
    raise EvaluationError(f"unknown expression node {expr!r}")


def _coerce_pair(op: str, left: Value, right: Value) -> tuple[Value, Value]:
    """Allow number-vs-numeric-string comparisons (``d.length > "100"``)."""
    if isinstance(left, (int, float)) and isinstance(right, str):
        converted = _to_number(right)
        if converted is not None:
            return left, converted
    if isinstance(right, (int, float)) and isinstance(left, str):
        converted = _to_number(left)
        if converted is not None:
            return converted, right
    # Equality between mismatched types is well-defined (False) in Python.
    if op in ("=", "!=") or type(left) is type(right):
        return left, right
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    return left, right


def _to_number(text: str) -> int | float | None:
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return None


def attrs_referenced(expr: Expr) -> set[Attr]:
    """All :class:`Attr` nodes appearing in ``expr`` (for semantic checks)."""
    found: set[Attr] = set()
    _collect_attrs(expr, found)
    return found


def _collect_attrs(expr: Expr, found: set[Attr]) -> None:
    if isinstance(expr, Attr):
        found.add(expr)
    elif isinstance(expr, Compare):
        _collect_attrs(expr.left, found)
        _collect_attrs(expr.right, found)
    elif isinstance(expr, Contains):
        _collect_attrs(expr.haystack, found)
        _collect_attrs(expr.needle, found)
    elif isinstance(expr, (And, Or)):
        _collect_attrs(expr.left, found)
        _collect_attrs(expr.right, found)
    elif isinstance(expr, Not):
        _collect_attrs(expr.operand, found)


def conjuncts(expr: Expr) -> list[Expr]:
    """Flatten a tree of ``And`` nodes into its conjunct list."""
    if isinstance(expr, And):
        return conjuncts(expr.left) + conjuncts(expr.right)
    # Note: identity check, not equality — Literal(1) == Literal(True) in
    # Python and must not be treated as the vacuous predicate.
    if isinstance(expr, Literal) and expr.value is True:
        return []
    return [expr]


def conjoin(exprs: list[Expr]) -> Expr:
    """Combine ``exprs`` with ``And``; empty input yields :data:`TRUE`."""
    if not exprs:
        return TRUE
    result = exprs[0]
    for expr in exprs[1:]:
        result = And(result, expr)
    return result
