"""Relation schemas."""

from __future__ import annotations

from ..errors import SchemaError

__all__ = ["Schema"]


class Schema:
    """An ordered set of attribute names for a named relation.

    Schemas are immutable; attribute positions are resolved once at
    construction so row access during evaluation is an index lookup.
    """

    __slots__ = ("name", "attributes", "_positions")

    def __init__(self, name: str, attributes: tuple[str, ...]) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        if len(set(attributes)) != len(attributes):
            raise SchemaError(f"duplicate attribute in schema {name!r}: {attributes}")
        if not attributes:
            raise SchemaError(f"schema {name!r} must have at least one attribute")
        self.name = name
        self.attributes = tuple(attributes)
        self._positions = {attr: idx for idx, attr in enumerate(self.attributes)}

    @property
    def arity(self) -> int:
        """Number of attributes — the width of every conforming row."""
        return len(self.attributes)

    def position(self, attribute: str) -> int:
        """Index of ``attribute`` in a row; raises :class:`SchemaError` if absent."""
        try:
            return self._positions[attribute]
        except KeyError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"known: {', '.join(self.attributes)}"
            ) from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._positions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:
        return f"Schema({self.name!r}, {self.attributes!r})"
