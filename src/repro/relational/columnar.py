"""Batch (columnar) execution of compiled node-query plans — EXP-P5/P6.

:class:`~repro.relational.compile.CompiledPlan` resolves pushdown placement
and column positions at compile time; this module lowers the *whole*
nested-loop join into a pipeline of batch operators over the tables'
columnar views (:meth:`Table.columns`) and join-key hash indexes
(:meth:`Table.index`).  EXP-P5 vectorized only the innermost (leaf) scan;
every outer level was still a per-row closure chain, which the sitewide
and join-heavy workloads exposed as the ceiling.  The pipeline now carries
a **batch of candidate bindings** — one index tuple per partial binding,
the multi-level generalization of a selection vector — through the join
order:

* each level's pushdown conjuncts become **batch filters** mapping a
  binding batch to a smaller one (specialized comprehensions for the hot
  constant shapes, the scalar closure per binding otherwise);
* binding the next table becomes an **expansion**: a hash-index probe per
  binding when an equality conjunct joins the new table to already-bound
  aliases (or to a constant), the cross product otherwise — bucket lists
  are insertion-ordered, so probing reproduces the scan order exactly;
* the leaf level keeps EXP-P5's selection-vector kernels (now seeded by
  the leaf join's probe result) and batch projectors; tuples materialize
  only at projection.

Lazy error semantics are preserved *exactly*, not approximately.  Batch
evaluation reorders work (conjunct-major, probe-before-filter), so the
pipeline can hit an error the interpreter would never reach, or reach one
late.  Evaluation is pure, so the whole pipeline is optimistic: on *any*
exception the partial output is rolled back and the plan re-runs through
the row executor's closure chain, reproducing the interpreter's outcome
bit-for-bit — including which binding's which conjunct raises, or that
nothing raises at all.  A batch that completes *cleanly* is row-identical
by construction: every evaluation the row path performs and the batch
skips is **provably total** (present attributes, literals, ``=``/``!=``
and boolean combinators over them — checked at lowering time), and a hash
probe substitutes for an equality conjunct only when
:meth:`ColumnIndex.probe` proves dict equality coincides with the
interpreter's coerced equality for that probe value (no numeric
number-vs-numeric-string coercion possible, hash-exact value profile).
Any non-provable case — and any empty-probe ambiguity — degrades to a
scan through the conjunct's own scalar closure, or to the row path
wholesale.

Equivalence with the row executor is property-tested in
``tests/test_columnar_executor.py`` (including hostile expressions whose
only output *is* the error, at every plan level).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Sequence

from .expr import (
    And,
    Attr,
    Compare,
    Contains,
    Expr,
    Literal,
    Not,
    Or,
    attrs_referenced,
    _to_number,
)
from .query import ResultRow
from .schema import Schema

__all__ = ["build_columnar_runner"]

#: A scalar compiled expression (see :mod:`repro.relational.compile`).
_Scalar = Callable[[list], object]

#: A leaf batch kernel: selection vector in, selection vector out.  The
#: trailing argument is the leaf table object, for kernels that need its
#: runtime column profiles (:meth:`Table.index`).
_Kernel = Callable[[list, tuple, list, "Sequence[int] | None", object], "list[int]"]

#: A hash-join choice: (conjunct position in its level, build-side column
#: on the table being bound, probe-side scalar, full-conjunct scalar for
#: non-provable probe values).
_Join = "tuple[int, int, _Scalar, _Scalar] | None"


def build_columnar_runner(
    select: Sequence[Attr],
    filter_plan: Sequence[Sequence[Expr]],
    scalar_filters: Sequence[tuple[_Scalar, ...]],
    scalar_project: _Scalar,
    positions: dict[str, int],
    schemas: Sequence[Schema],
    header: tuple[str, ...],
    compile_expr: Callable[[Expr], _Scalar],
    row_runner: Callable[[list, list, list], None],
) -> Callable:
    """Build the batch runner for one compiled plan.

    The runner signature is ``runner(env, tables, table_objs, out,
    level_times=None)``: ``tables`` are the scanned row lists (row-runner
    compatible — the rollback replay hands them straight to
    ``row_runner``), ``table_objs`` the table objects behind them (for
    ``columns()`` / ``index()``), and ``level_times`` an optional dict
    accumulating per-level wall-clock (``level-0`` … ``leaf``) for the
    profiling harness.
    """
    count = len(schemas)
    leaf = count - 1
    leaf_alias = next(alias for alias, depth in positions.items() if depth == leaf)

    # joins[d]: the equality conjunct (from plan level d+1) used to expand
    # the table at depth d via a hash probe, when one is provably usable.
    joins: list[_Join] = [
        _choose_join(
            filter_plan[depth + 1], scalar_filters[depth + 1],
            depth, positions, schemas, compile_expr,
        )
        for depth in range(count)
    ]

    stages: list[tuple[str, Callable]] = []
    for depth in range(leaf):
        entry = _entry_filters(depth, filter_plan, scalar_filters, joins, positions, schemas)
        stages.append((f"level-{depth}", _build_expand_stage(depth, entry, joins[depth])))

    leaf_entry = _entry_filters(leaf, filter_plan, scalar_filters, joins, positions, schemas)
    leaf_join = joins[leaf]
    skip = leaf_join[0] if leaf_join is not None else -1
    kernels = tuple(
        _build_kernel(conjunct, scalar, leaf, leaf_alias, schemas[leaf])
        for position, (conjunct, scalar) in enumerate(
            zip(filter_plan[count], scalar_filters[count])
        )
        if position != skip
    )
    projector = _build_projector(select, positions, schemas, leaf, header)
    leaf_stage = _build_leaf_stage(leaf, leaf_entry, leaf_join, kernels, projector)
    stage_list = tuple(stages)

    def runner(
        env, tables, table_objs, out, level_times=None,
        _stages=stage_list, _leaf_stage=leaf_stage, _fallback=row_runner,
    ):
        mark = len(out)
        try:
            batch: list[tuple[int, ...]] = [()]
            if level_times is None:
                for __, stage in _stages:
                    batch = stage(env, tables, table_objs, batch)
                    if not batch:
                        return
                _leaf_stage(env, tables, table_objs, batch, out)
            else:
                for name, stage in _stages:
                    started = perf_counter()
                    batch = stage(env, tables, table_objs, batch)
                    level_times[name] = (
                        level_times.get(name, 0.0) + perf_counter() - started
                    )
                    if not batch:
                        return
                started = perf_counter()
                _leaf_stage(env, tables, table_objs, batch, out)
                level_times["leaf"] = (
                    level_times.get("leaf", 0.0) + perf_counter() - started
                )
        except Exception:
            # Evaluation is pure: roll back this run's rows and replay the
            # whole plan through the row executor's closures, so the error
            # (if the interpreter raises one — it may not: the batch also
            # evaluates probe expressions the short-circuiting row loop
            # never reaches) surfaces at exactly the binding and conjunct
            # the row executor reports, or the correct rows come back.
            del out[mark:]
            _fallback(env, tables, out)

    return runner


# -- join-conjunct selection ---------------------------------------------------


def _provably_total(expr: Expr, positions: dict[str, int], schemas: Sequence[Schema]) -> bool:
    """True when evaluating ``expr`` (on any bound env) can never raise.

    Present attributes and literals are total; ``=``/``!=`` never raise
    (:func:`~repro.relational.expr._coerce_pair` is total and equality is
    defined across the system's value types); ``and``/``or``/``not`` of
    total operands are total.  Ordered comparisons and ``contains`` can
    raise on type mismatches, so they are never claimed total.
    """
    if isinstance(expr, Literal):
        return True
    if isinstance(expr, Attr):
        return expr.name in schemas[positions[expr.alias]]
    if isinstance(expr, Compare):
        return (
            expr.op in ("=", "!=")
            and _provably_total(expr.left, positions, schemas)
            and _provably_total(expr.right, positions, schemas)
        )
    if isinstance(expr, (And, Or)):
        return (
            _provably_total(expr.left, positions, schemas)
            and _provably_total(expr.right, positions, schemas)
        )
    if isinstance(expr, Not):
        return _provably_total(expr.operand, positions, schemas)
    return False


def _choose_join(
    conjuncts: Sequence[Expr],
    scalars: Sequence[_Scalar],
    depth: int,
    positions: dict[str, int],
    schemas: Sequence[Schema],
    compile_expr: Callable[[Expr], _Scalar],
) -> _Join:
    """Pick the hash-probe conjunct for binding the table at ``depth``.

    Eligible: an ``=`` whose one side is a present attribute of the alias
    being bound and whose other side references only already-bound aliases
    (or is constant).  A conjunct is only usable if every conjunct *before*
    it at this level is provably total — the probe skips their evaluation
    on pruned rows, which must not be able to suppress an error the row
    path would raise.  The search stops at the first non-total conjunct.
    """
    schema = schemas[depth]
    for position, conjunct in enumerate(conjuncts):
        if isinstance(conjunct, Compare) and conjunct.op == "=":
            for build_expr, probe_expr in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if not (
                    isinstance(build_expr, Attr)
                    and positions[build_expr.alias] == depth
                    and build_expr.name in schema
                ):
                    continue
                if any(
                    positions[attr.alias] >= depth
                    for attr in attrs_referenced(probe_expr)
                ):
                    continue
                return (
                    position,
                    schema.position(build_expr.name),
                    compile_expr(probe_expr),
                    scalars[position],
                )
        if not _provably_total(conjunct, positions, schemas):
            return None
    return None


# -- batch filters (outer-level pushdown conjuncts) ---------------------------


def _entry_filters(
    depth: int,
    filter_plan: Sequence[Sequence[Expr]],
    scalar_filters: Sequence[tuple[_Scalar, ...]],
    joins: Sequence[_Join],
    positions: dict[str, int],
    schemas: Sequence[Schema],
) -> tuple[Callable, ...]:
    """Batch filters for plan level ``depth`` (evaluated on width-``depth``
    batches), minus the conjunct the previous expansion's probe applied."""
    skip = -1
    if depth >= 1 and joins[depth - 1] is not None:
        skip = joins[depth - 1][0]
    return tuple(
        _build_batch_filter(conjunct, scalar, depth, positions, schemas)
        for position, (conjunct, scalar) in enumerate(
            zip(filter_plan[depth], scalar_filters[depth])
        )
        if position != skip
    )


def _bound_column(
    expr: Expr, width: int, positions: dict[str, int], schemas: Sequence[Schema]
) -> tuple[int, int] | None:
    """(depth, column) if ``expr`` is a present attribute of a bound alias."""
    if isinstance(expr, Attr):
        depth = positions[expr.alias]
        if depth < width and expr.name in schemas[depth]:
            return depth, schemas[depth].position(expr.name)
    return None


def _specialize_batch(
    conjunct: Expr, width: int, positions: dict[str, int], schemas: Sequence[Schema]
) -> Callable | None:
    """Vectorized batch filters for the hot constant shapes, or ``None``.

    The same value-exactness arguments as the leaf kernels
    (:func:`_specialize`) apply: constant-needle ``contains`` raises out of
    the comprehension (into the pipeline rollback) for non-string cells,
    and ``=``/``!=`` against a non-numeric string constant can never
    trigger numeric coercion.
    """
    if isinstance(conjunct, Contains) and not conjunct.max_edits:
        where = _bound_column(conjunct.haystack, width, positions, schemas)
        needle = conjunct.needle
        if (
            where is not None
            and isinstance(needle, Literal)
            and isinstance(needle.value, str)
        ):
            depth, column = where
            lowered = needle.value.lower()

            def contains_filter(
                env, tables, table_objs, batch, _j=depth, _c=column, _n=lowered
            ):
                values = table_objs[_j].columns()[_c]
                return [b for b in batch if _n in values[b[_j]].lower()]

            return contains_filter

    if isinstance(conjunct, Compare) and conjunct.op in ("=", "!="):
        where = None
        constant: object = None
        if isinstance(conjunct.right, Literal):
            where = _bound_column(conjunct.left, width, positions, schemas)
            constant = conjunct.right.value
        elif isinstance(conjunct.left, Literal):
            where = _bound_column(conjunct.right, width, positions, schemas)
            constant = conjunct.left.value
        if (
            where is not None
            and isinstance(constant, str)
            and _to_number(constant) is None
        ):
            depth, column = where
            if conjunct.op == "=":

                def eq_filter(
                    env, tables, table_objs, batch, _j=depth, _c=column, _v=constant
                ):
                    values = table_objs[_j].columns()[_c]
                    return [b for b in batch if values[b[_j]] == _v]

                return eq_filter

            def ne_filter(
                env, tables, table_objs, batch, _j=depth, _c=column, _v=constant
            ):
                values = table_objs[_j].columns()[_c]
                return [b for b in batch if values[b[_j]] != _v]

            return ne_filter

    return None


def _build_batch_filter(
    conjunct: Expr,
    scalar: _Scalar,
    width: int,
    positions: dict[str, int],
    schemas: Sequence[Schema],
) -> Callable:
    specialized = _specialize_batch(conjunct, width, positions, schemas)
    if specialized is not None:
        return specialized
    if width == 0:
        # Constant predicate (plan[0]): one evaluation gates the whole run,
        # exactly like the row runner's outermost level.
        def constant_filter(env, tables, table_objs, batch, _f=scalar):
            return batch if _f(env) else []

        return constant_filter

    def batch_filter(env, tables, table_objs, batch, _f=scalar, _w=width):
        kept = []
        append = kept.append
        for binding in batch:
            for depth in range(_w):
                env[depth] = tables[depth][binding[depth]]
            if _f(env):
                append(binding)
        return kept

    return batch_filter


# -- expansion (binding the next table) ---------------------------------------


def _build_expand_stage(
    depth: int, entry_filters: tuple[Callable, ...], join: _Join
) -> Callable:
    """Stage ``depth`` of the pipeline: apply the level's batch filters,
    then bind the table at ``depth`` — hash probe per binding when a join
    conjunct was chosen, cross product otherwise."""
    if join is None:

        def expand(env, tables, table_objs, batch, _d=depth, _fs=entry_filters):
            for batch_filter in _fs:
                batch = batch_filter(env, tables, table_objs, batch)
                if not batch:
                    return batch
            rows = tables[_d]
            if not rows:
                return []
            indices = range(len(rows))
            return [binding + (i,) for binding in batch for i in indices]

        return expand

    __, build_col, probe, conjunct_scalar = join

    def expand_join(
        env, tables, table_objs, batch,
        _d=depth, _fs=entry_filters, _c=build_col, _p=probe, _f=conjunct_scalar,
    ):
        for batch_filter in _fs:
            batch = batch_filter(env, tables, table_objs, batch)
            if not batch:
                return batch
        rows = tables[_d]
        if not rows:
            # The row path never evaluates this level's join conjunct (or
            # its probe side) when the table is empty; neither may we.
            return []
        index = table_objs[_d].index(_c)
        expanded = []
        append = expanded.append
        for binding in batch:
            for outer in range(_d):
                env[outer] = tables[outer][binding[outer]]
            bucket = index.probe(_p(env))
            if bucket is None:
                # Not provably hash-exact for this probe value: scan with
                # the conjunct's own scalar closure instead.
                for i, row in enumerate(rows):
                    env[_d] = row
                    if _f(env):
                        append(binding + (i,))
            else:
                for i in bucket:
                    append(binding + (i,))
        return expanded

    return expand_join


def _build_leaf_stage(
    leaf: int,
    entry_filters: tuple[Callable, ...],
    join: _Join,
    kernels: tuple[_Kernel, ...],
    projector: Callable,
) -> Callable:
    """The final stage: per surviving binding, seed the leaf selection
    vector (hash probe when a leaf join was chosen), run the conjunct
    kernels and batch-project the survivors."""
    if join is None:

        def leaf_stage(
            env, tables, table_objs, batch, out,
            _d=leaf, _fs=entry_filters, _ks=kernels, _pj=projector,
        ):
            for batch_filter in _fs:
                batch = batch_filter(env, tables, table_objs, batch)
                if not batch:
                    return
            rows = tables[_d]
            leaf_obj = table_objs[_d]
            cols = leaf_obj.columns()
            for binding in batch:
                for outer in range(_d):
                    env[outer] = tables[outer][binding[outer]]
                sel = None
                for kernel in _ks:
                    sel = kernel(env, cols, rows, sel, leaf_obj)
                    if not sel:
                        break
                else:
                    _pj(env, cols, rows, sel, out)

        return leaf_stage

    __, build_col, probe, conjunct_scalar = join

    def leaf_stage_join(
        env, tables, table_objs, batch, out,
        _d=leaf, _fs=entry_filters, _c=build_col, _p=probe, _f=conjunct_scalar,
        _ks=kernels, _pj=projector,
    ):
        for batch_filter in _fs:
            batch = batch_filter(env, tables, table_objs, batch)
            if not batch:
                return
        rows = tables[_d]
        if not rows:
            return
        leaf_obj = table_objs[_d]
        cols = leaf_obj.columns()
        index = leaf_obj.index(_c)
        for binding in batch:
            for outer in range(_d):
                env[outer] = tables[outer][binding[outer]]
            sel = index.probe(_p(env))
            if sel is None:
                kept = []
                append = kept.append
                for i, row in enumerate(rows):
                    env[_d] = row
                    if _f(env):
                        append(i)
                sel = kept
            if not sel:
                continue
            for kernel in _ks:
                sel = kernel(env, cols, rows, sel, leaf_obj)
                if not sel:
                    break
            else:
                _pj(env, cols, rows, sel, out)

    return leaf_stage_join


# -- leaf filter kernels -------------------------------------------------------


def _build_kernel(
    conjunct: Expr,
    scalar: _Scalar,
    leaf: int,
    leaf_alias: str,
    leaf_schema: Schema,
) -> _Kernel:
    kernel = _specialize(conjunct, scalar, leaf, leaf_alias, leaf_schema)
    if kernel is not None:
        return kernel
    return _generic_kernel(scalar, leaf)


def _generic_kernel(scalar: _Scalar, leaf: int) -> _Kernel:
    """Per-row evaluation through the scalar closure — correct for every
    conjunct shape; no batch win beyond skipping the level dispatch."""

    def kernel(env, cols, rows, sel, leaf_obj, _d=leaf, _f=scalar):
        kept = []
        append = kept.append
        if sel is None:
            for index, row in enumerate(rows):
                env[_d] = row
                if _f(env):
                    append(index)
        else:
            for index in sel:
                env[_d] = rows[index]
                if _f(env):
                    append(index)
        return kept

    return kernel


def _leaf_column(expr: Expr, leaf_alias: str, leaf_schema: Schema) -> int | None:
    """Column index if ``expr`` is a present attribute of the leaf alias."""
    if isinstance(expr, Attr) and expr.alias == leaf_alias and expr.name in leaf_schema:
        return leaf_schema.position(expr.name)
    return None


def _specialize(
    conjunct: Expr,
    scalar: _Scalar,
    leaf: int,
    leaf_alias: str,
    leaf_schema: Schema,
) -> _Kernel | None:
    """Vectorized kernels for the hot predicate shapes, or ``None``.

    Only shapes that are provably value-exact are specialized; anything
    else (cross-level joins, numeric comparisons, boolean combinators,
    fuzzy match) goes through the generic kernel — still correct, just not
    batched.
    """
    if isinstance(conjunct, Contains) and not conjunct.max_edits:
        column = _leaf_column(conjunct.haystack, leaf_alias, leaf_schema)
        needle = conjunct.needle
        if (
            column is not None
            and isinstance(needle, Literal)
            and isinstance(needle.value, str)
        ):
            # Non-string haystacks raise out of the comprehension (ints have
            # no .lower(); bytes fail the `in`), which routes the run to the
            # row-path replay and its EvaluationError — never a silent
            # wrong answer for any type the virtual relations can hold.
            lowered = needle.value.lower()

            def contains_kernel(env, cols, rows, sel, leaf_obj, _c=column, _n=lowered):
                col = cols[_c]
                if sel is None:
                    return [i for i, v in enumerate(col) if _n in v.lower()]
                return [i for i in sel if _n in col[i].lower()]

            return contains_kernel

    if isinstance(conjunct, Compare) and conjunct.op in ("=", "!="):
        column = None
        constant: object = None
        if isinstance(conjunct.right, Literal):
            column = _leaf_column(conjunct.left, leaf_alias, leaf_schema)
            constant = conjunct.right.value
        elif isinstance(conjunct.left, Literal):
            column = _leaf_column(conjunct.right, leaf_alias, leaf_schema)
            constant = conjunct.left.value
        # Safe only for non-numeric string constants: _coerce_pair never
        # converts for those (conversion requires the *string* side to parse
        # as a number), and =/!= never raise — so plain ==/!= is exact.
        if (
            column is not None
            and isinstance(constant, str)
            and _to_number(constant) is None
        ):
            if conjunct.op == "=":

                def eq_kernel(env, cols, rows, sel, leaf_obj, _c=column, _v=constant):
                    col = cols[_c]
                    if sel is None:
                        return [i for i, v in enumerate(col) if v == _v]
                    return [i for i in sel if col[i] == _v]

                return eq_kernel

            def ne_kernel(env, cols, rows, sel, leaf_obj, _c=column, _v=constant):
                col = cols[_c]
                if sel is None:
                    return [i for i, v in enumerate(col) if v != _v]
                return [i for i in sel if col[i] != _v]

            return ne_kernel

        # Column-vs-column =/!= on the leaf (the generic-conjunct hot
        # shape, e.g. ``a.base != a.href``): plain ==/!= is exact unless
        # numeric coercion could apply between the two columns' values,
        # which the runtime column profiles rule out per database.  The
        # profiles themselves are only trustworthy over the system value
        # types (hash_exact); anything else scans through the scalar.
        left_col = _leaf_column(conjunct.left, leaf_alias, leaf_schema)
        right_col = _leaf_column(conjunct.right, leaf_alias, leaf_schema)
        if left_col is not None and right_col is not None:
            return _pair_kernel(conjunct.op, left_col, right_col, scalar, leaf)

    return None


def _pair_kernel(
    op: str, left_col: int, right_col: int, scalar: _Scalar, leaf: int
) -> _Kernel:
    generic = _generic_kernel(scalar, leaf)
    equality = op == "="

    def kernel(
        env, cols, rows, sel, leaf_obj,
        _c1=left_col, _c2=right_col, _eq=equality, _g=generic,
    ):
        left = leaf_obj.index(_c1)
        right = leaf_obj.index(_c2)
        if (
            not (left.hash_exact and right.hash_exact)
            or (left.has_number and right.has_numeric_str)
            or (right.has_number and left.has_numeric_str)
        ):
            return _g(env, cols, rows, sel, leaf_obj)
        a = cols[_c1]
        b = cols[_c2]
        if _eq:
            if sel is None:
                return [i for i in range(len(rows)) if a[i] == b[i]]
            return [i for i in sel if a[i] == b[i]]
        if sel is None:
            return [i for i in range(len(rows)) if a[i] != b[i]]
        return [i for i in sel if a[i] != b[i]]

    return kernel


# -- batch projection ---------------------------------------------------------


class _ConstSource:
    """Projection source for an outer-alias attribute: one value per batch."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def __getitem__(self, index: int) -> object:
        return self.value


class _MissingSource:
    """Projection source for an absent attribute — the interpreter's lazy
    ``KeyError(name)``, raised only if a row actually projects."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __getitem__(self, index: int) -> object:
        raise KeyError(self.name)


def _build_projector(
    select: Sequence[Attr],
    positions: dict[str, int],
    schemas: Sequence[Schema],
    leaf: int,
    header: tuple[str, ...],
) -> Callable:
    specs: list[tuple[str, object, object]] = []
    all_leaf = True
    for attr in select:
        depth = positions[attr.alias]
        schema = schemas[depth]
        if attr.name not in schema:
            specs.append(("missing", attr.name, None))
            all_leaf = False
        elif depth == leaf:
            specs.append(("col", None, schema.position(attr.name)))
        else:
            specs.append(("env", depth, schema.position(attr.name)))
            all_leaf = False

    if all_leaf and len(specs) == 1:
        column = specs[0][2]

        def project_one(env, cols, rows, sel, out, _c=column, _h=header):
            col = cols[_c]
            append = out.append
            for index in range(len(rows)) if sel is None else sel:
                append(ResultRow(_h, (col[index],)))

        return project_one

    if all_leaf and len(specs) == 2:
        first, second = specs[0][2], specs[1][2]

        def project_two(env, cols, rows, sel, out, _c0=first, _c1=second, _h=header):
            col0 = cols[_c0]
            col1 = cols[_c1]
            append = out.append
            for index in range(len(rows)) if sel is None else sel:
                append(ResultRow(_h, (col0[index], col1[index])))

        return project_two

    kinds = tuple(spec[0] for spec in specs)
    if "missing" not in kinds and len(specs) == 1:
        # Single outer-alias attribute: one value per surviving binding.
        __, depth, column = specs[0]

        def project_const(env, cols, rows, sel, out, _d=depth, _c=column, _h=header):
            value = env[_d][_c]
            append = out.append
            for __ in range(len(rows)) if sel is None else sel:
                append(ResultRow(_h, (value,)))

        return project_const

    if "missing" not in kinds and len(specs) == 2:
        # The sitewide-scan hot shape (outer const + leaf column) and its
        # mirror: resolve the constant once per binding, index the column
        # directly — no per-row source dispatch.
        (kind0, depth0, col0), (kind1, depth1, col1) = specs
        if kind0 == "env" and kind1 == "col":

            def project_env_col(
                env, cols, rows, sel, out, _d=depth0, _c0=col0, _c1=col1, _h=header
            ):
                value = env[_d][_c0]
                col = cols[_c1]
                append = out.append
                for index in range(len(rows)) if sel is None else sel:
                    append(ResultRow(_h, (value, col[index])))

            return project_env_col

        if kind0 == "col" and kind1 == "env":

            def project_col_env(
                env, cols, rows, sel, out, _c0=col0, _d=depth1, _c1=col1, _h=header
            ):
                col = cols[_c0]
                value = env[_d][_c1]
                append = out.append
                for index in range(len(rows)) if sel is None else sel:
                    append(ResultRow(_h, (col[index], value)))

            return project_col_env

        def project_env_env(
            env, cols, rows, sel, out,
            _d0=depth0, _c0=col0, _d1=depth1, _c1=col1, _h=header,
        ):
            values = (env[_d0][_c0], env[_d1][_c1])
            append = out.append
            for __ in range(len(rows)) if sel is None else sel:
                append(ResultRow(_h, values))

        return project_env_env

    frozen = tuple(specs)

    def project(env, cols, rows, sel, out, _specs=frozen, _h=header):
        sources: list = []
        for kind, first, second in _specs:
            if kind == "col":
                sources.append(cols[second])
            elif kind == "env":
                sources.append(_ConstSource(env[first][second]))
            else:
                sources.append(_MissingSource(first))
        append = out.append
        if len(sources) == 1:
            source = sources[0]
            for index in range(len(rows)) if sel is None else sel:
                append(ResultRow(_h, (source[index],)))
        else:
            for index in range(len(rows)) if sel is None else sel:
                append(ResultRow(_h, tuple(s[index] for s in sources)))

    return project
