"""Batch (columnar) execution of compiled node-query plans — EXP-P5.

:class:`~repro.relational.compile.CompiledPlan` already resolves pushdown
placement and column positions at compile time, but its runner is still a
row-at-a-time closure chain: every row of the innermost scan pays a level
dispatch, one closure call per conjunct, and a projection call.  For the
virtual relations that cost is pure interpreter overhead — the data is
already materialized, the predicates are mostly ``attr contains "const"``
and ``attr = "const"``, and the innermost scan dominates (outer scans bind
a handful of rows; the leaf scan touches every tuple).

This module lowers the *leaf level* of the nested loop to batch operators
over the table's columnar view (:meth:`Table.columns`):

* each leaf conjunct becomes a **kernel** mapping a selection vector (list
  of surviving row indices; ``None`` means "all rows") to a smaller one,
  evaluated as one comprehension over a column slice instead of per-row
  closure calls — with specialized kernels for the hot shapes
  (constant-needle ``contains``, ``=``/``!=`` against a non-numeric string
  constant) and a generic per-row kernel for everything else;
* the projection becomes a **batch projector** appending ``ResultRow``s
  for the surviving indices in one pass, reading leaf attributes straight
  from columns and outer-alias attributes once per batch.

Lazy error semantics are preserved *exactly*, not approximately.  Batch
evaluation reorders work (conjunct-major instead of row-major), so a
kernel can hit an error the interpreter would never reach first.  The
batch is therefore optimistic: evaluation is pure, so on *any* exception
the partial output is rolled back and the batch re-runs row-at-a-time
through the same scalar closures the row executor uses — reproducing the
interpreter's outcome, including which row's which conjunct raises.  The
set of (row, conjunct) evaluations is identical in both orders (kernels
only evaluate conjunct *k* on rows that survived conjuncts ``< k``, just
like the short-circuiting row loop), so the fallback raises whenever the
batch did, and nothing diverges silently.  The specialized kernels are
value-exact by construction: a non-numeric string constant can never
trigger :func:`~repro.relational.expr._coerce_pair`'s numeric coercion,
and a non-string haystack raises out of the ``contains`` comprehension
(into the fallback) for every type the virtual relations can hold.

Equivalence with the row executor is property-tested in
``tests/test_columnar_executor.py`` (including hostile expressions whose
only output *is* the error).
"""

from __future__ import annotations

from typing import Callable, Sequence

from .expr import Attr, Compare, Contains, Expr, Literal, _to_number
from .query import ResultRow
from .schema import Schema

__all__ = ["build_columnar_runner"]

#: A scalar compiled expression (see :mod:`repro.relational.compile`).
_Scalar = Callable[[list], object]

#: A batch kernel: selection vector in, selection vector out.
_Kernel = Callable[[list, tuple, list, "list[int] | None"], "list[int]"]


class _ConstSource:
    """Projection source for an outer-alias attribute: one value per batch."""

    __slots__ = ("value",)

    def __init__(self, value: object) -> None:
        self.value = value

    def __getitem__(self, index: int) -> object:
        return self.value


class _MissingSource:
    """Projection source for an absent attribute — the interpreter's lazy
    ``KeyError(name)``, raised only if a row actually projects."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __getitem__(self, index: int) -> object:
        raise KeyError(self.name)


def build_columnar_runner(
    select: Sequence[Attr],
    filter_plan: Sequence[Sequence[Expr]],
    scalar_filters: Sequence[tuple[_Scalar, ...]],
    scalar_project: _Scalar,
    positions: dict[str, int],
    schemas: Sequence[Schema],
    header: tuple[str, ...],
) -> Callable[[list, list, tuple, list], None]:
    """Build the batch runner for one compiled plan.

    The runner signature is ``runner(env, tables, leaf_cols, out)`` —
    identical to the row runner plus the leaf table's columnar view.
    Outer loop levels reuse the row executor's scalar filter closures
    unchanged (they bind one row at a time by construction); only the
    innermost level is batched.
    """
    leaf = len(schemas) - 1
    leaf_schema = schemas[leaf]
    leaf_alias = next(alias for alias, depth in positions.items() if depth == leaf)
    kernels = tuple(
        _build_kernel(conjunct, scalar, leaf, leaf_alias, leaf_schema)
        for conjunct, scalar in zip(filter_plan[leaf + 1], scalar_filters[leaf + 1])
    )
    projector = _build_projector(select, positions, schemas, leaf, header)
    fallback = _build_scalar_leaf(
        leaf, scalar_filters[leaf + 1], scalar_project, header
    )
    step = _build_leaf_batch(leaf, scalar_filters[leaf], kernels, projector, fallback)
    for depth in range(leaf - 1, -1, -1):
        step = _make_level(depth, scalar_filters[depth], step)
    return step


# -- loop structure -----------------------------------------------------------


def _build_leaf_batch(
    leaf: int,
    level_filters: tuple[_Scalar, ...],
    kernels: tuple[_Kernel, ...],
    projector: Callable,
    fallback: Callable,
) -> Callable:
    def leaf_batch(
        env, tables, cols, out, _d=leaf, _lf=level_filters, _ks=kernels,
        _pj=projector, _fb=fallback,
    ):
        for predicate in _lf:
            if not predicate(env):
                return
        rows = tables[_d]
        mark = len(out)
        try:
            sel = None
            for kernel in _ks:
                sel = kernel(env, cols, rows, sel)
                if not sel:
                    return
            _pj(env, cols, rows, sel, out)
        except Exception:
            # Evaluation is pure: roll back this batch's rows and replay it
            # through the scalar closures so the error (if the interpreter
            # would raise one — it would, see module docstring) surfaces at
            # exactly the row and conjunct the row executor reports.
            del out[mark:]
            _fb(env, rows, out)

    return leaf_batch


def _make_level(
    depth: int, level_filters: tuple[_Scalar, ...], inner: Callable
) -> Callable:
    if not level_filters:

        def level(env, tables, cols, out, _d=depth, _inner=inner):
            for row in tables[_d]:
                env[_d] = row
                _inner(env, tables, cols, out)

    else:

        def level(env, tables, cols, out, _d=depth, _fs=level_filters, _inner=inner):
            for predicate in _fs:
                if not predicate(env):
                    return
            for row in tables[_d]:
                env[_d] = row
                _inner(env, tables, cols, out)

    return level


def _build_scalar_leaf(
    leaf: int,
    leaf_filters: tuple[_Scalar, ...],
    project: _Scalar,
    header: tuple[str, ...],
) -> Callable:
    """Row-at-a-time replay of one leaf batch — the row executor's exact
    leaf semantics (filter order, short-circuit, lazy projection)."""

    def scalar_leaf(env, rows, out, _d=leaf, _fs=leaf_filters, _p=project, _h=header):
        for row in rows:
            env[_d] = row
            passed = True
            for predicate in _fs:
                if not predicate(env):
                    passed = False
                    break
            if passed:
                out.append(ResultRow(_h, _p(env)))

    return scalar_leaf


# -- filter kernels -----------------------------------------------------------


def _build_kernel(
    conjunct: Expr,
    scalar: _Scalar,
    leaf: int,
    leaf_alias: str,
    leaf_schema: Schema,
) -> _Kernel:
    kernel = _specialize(conjunct, leaf_alias, leaf_schema)
    if kernel is not None:
        return kernel
    return _generic_kernel(scalar, leaf)


def _generic_kernel(scalar: _Scalar, leaf: int) -> _Kernel:
    """Per-row evaluation through the scalar closure — correct for every
    conjunct shape; no batch win beyond skipping the level dispatch."""

    def kernel(env, cols, rows, sel, _d=leaf, _f=scalar):
        kept = []
        append = kept.append
        if sel is None:
            for index, row in enumerate(rows):
                env[_d] = row
                if _f(env):
                    append(index)
        else:
            for index in sel:
                env[_d] = rows[index]
                if _f(env):
                    append(index)
        return kept

    return kernel


def _leaf_column(expr: Expr, leaf_alias: str, leaf_schema: Schema) -> int | None:
    """Column index if ``expr`` is a present attribute of the leaf alias."""
    if isinstance(expr, Attr) and expr.alias == leaf_alias and expr.name in leaf_schema:
        return leaf_schema.position(expr.name)
    return None


def _specialize(
    conjunct: Expr, leaf_alias: str, leaf_schema: Schema
) -> _Kernel | None:
    """Vectorized kernels for the hot predicate shapes, or ``None``.

    Only shapes that are provably value-exact are specialized; anything
    else (joins, numeric comparisons, boolean combinators, fuzzy match)
    goes through the generic kernel — still correct, just not batched.
    """
    if isinstance(conjunct, Contains) and not conjunct.max_edits:
        column = _leaf_column(conjunct.haystack, leaf_alias, leaf_schema)
        needle = conjunct.needle
        if (
            column is not None
            and isinstance(needle, Literal)
            and isinstance(needle.value, str)
        ):
            # Non-string haystacks raise out of the comprehension (ints have
            # no .lower(); bytes fail the `in`), which routes the batch to
            # the scalar fallback and its EvaluationError — never a silent
            # wrong answer for any type the virtual relations can hold.
            lowered = needle.value.lower()

            def contains_kernel(env, cols, rows, sel, _c=column, _n=lowered):
                col = cols[_c]
                if sel is None:
                    return [i for i, v in enumerate(col) if _n in v.lower()]
                return [i for i in sel if _n in col[i].lower()]

            return contains_kernel

    if isinstance(conjunct, Compare) and conjunct.op in ("=", "!="):
        column = None
        constant: object = None
        if isinstance(conjunct.right, Literal):
            column = _leaf_column(conjunct.left, leaf_alias, leaf_schema)
            constant = conjunct.right.value
        elif isinstance(conjunct.left, Literal):
            column = _leaf_column(conjunct.right, leaf_alias, leaf_schema)
            constant = conjunct.left.value
        # Safe only for non-numeric string constants: _coerce_pair never
        # converts for those (conversion requires the *string* side to parse
        # as a number), and =/!= never raise — so plain ==/!= is exact.
        if (
            column is not None
            and isinstance(constant, str)
            and _to_number(constant) is None
        ):
            if conjunct.op == "=":

                def eq_kernel(env, cols, rows, sel, _c=column, _v=constant):
                    col = cols[_c]
                    if sel is None:
                        return [i for i, v in enumerate(col) if v == _v]
                    return [i for i in sel if col[i] == _v]

                return eq_kernel

            def ne_kernel(env, cols, rows, sel, _c=column, _v=constant):
                col = cols[_c]
                if sel is None:
                    return [i for i, v in enumerate(col) if v != _v]
                return [i for i in sel if col[i] != _v]

            return ne_kernel

    return None


# -- batch projection ---------------------------------------------------------


def _build_projector(
    select: Sequence[Attr],
    positions: dict[str, int],
    schemas: Sequence[Schema],
    leaf: int,
    header: tuple[str, ...],
) -> Callable:
    specs: list[tuple[str, object, object]] = []
    all_leaf = True
    for attr in select:
        depth = positions[attr.alias]
        schema = schemas[depth]
        if attr.name not in schema:
            specs.append(("missing", attr.name, None))
            all_leaf = False
        elif depth == leaf:
            specs.append(("col", None, schema.position(attr.name)))
        else:
            specs.append(("env", depth, schema.position(attr.name)))
            all_leaf = False

    if all_leaf and len(specs) == 1:
        column = specs[0][2]

        def project_one(env, cols, rows, sel, out, _c=column, _h=header):
            col = cols[_c]
            append = out.append
            for index in range(len(rows)) if sel is None else sel:
                append(ResultRow(_h, (col[index],)))

        return project_one

    if all_leaf and len(specs) == 2:
        first, second = specs[0][2], specs[1][2]

        def project_two(env, cols, rows, sel, out, _c0=first, _c1=second, _h=header):
            col0 = cols[_c0]
            col1 = cols[_c1]
            append = out.append
            for index in range(len(rows)) if sel is None else sel:
                append(ResultRow(_h, (col0[index], col1[index])))

        return project_two

    frozen = tuple(specs)

    def project(env, cols, rows, sel, out, _specs=frozen, _h=header):
        sources: list = []
        for kind, first, second in _specs:
            if kind == "col":
                sources.append(cols[second])
            elif kind == "env":
                sources.append(_ConstSource(env[first][second]))
            else:
                sources.append(_MissingSource(first))
        append = out.append
        if len(sources) == 1:
            source = sources[0]
            for index in range(len(rows)) if sel is None else sel:
                append(ResultRow(_h, (source[index],)))
        else:
            for index in range(len(rows)) if sel is None else sel:
                append(ResultRow(_h, tuple(s[index] for s in sources)))

    return project
