"""Compiled node-query plans — plan once, execute many.

:func:`~repro.relational.query.evaluate_node_query` re-does the same work
on every call: it re-plans the pushdown filter placement, tree-walks the
``Expr`` AST per row, and binds each row into a fresh alias→attribute dict.
That is fine for a one-shot evaluation, but a WEBDIS server evaluates the
*same* node-query against hundreds of per-node databases as clones arrive
(paper §2.4, §4.4) — the query is fixed, only the data varies.

:func:`compile_node_query` lowers a :class:`NodeQuery` into a
:class:`CompiledPlan` ahead of time:

* pushdown placement (:func:`~repro.relational.query._plan_filters`) is
  resolved once at compile time;
* every WHERE conjunct becomes a Python closure over *positional row
  tuples* — column indices are resolved against the static virtual-relation
  schemas at compile time, so per-row evaluation is ``env[depth][col]``
  indexing instead of dict construction plus recursive AST dispatch;
* the projection becomes a tuple picker over precomputed ``(depth, col)``
  pairs;
* the nested-loop itself is pre-built as a chain of per-depth closures.

The compiled plan is **semantically identical** to the interpreter — same
rows, same order, same lazily-raised errors (property-tested against
:func:`~repro.relational.query.evaluate_node_query_naive`, the unchanged
oracle).  Compilation is database-independent: the virtual-relation schemas
are static, so one plan serves every node database.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Sequence

from ..errors import DisqlSemanticsError, EvaluationError, SchemaError
from ..model.relations import ANCHOR_SCHEMA, DOCUMENT_SCHEMA, RELINFON_SCHEMA
from .columnar import build_columnar_runner
from .expr import (
    _COMPARATORS,
    And,
    Attr,
    Compare,
    Contains,
    Expr,
    Literal,
    Not,
    Or,
    _coerce_pair,
)
from .query import NodeQuery, ResultRow, _plan_filters
from .schema import Schema
from .table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..model.database import NodeDatabase

__all__ = ["CompiledPlan", "compile_node_query", "structural_hash", "structural_key"]

_SCHEMAS = {
    "document": DOCUMENT_SCHEMA,
    "anchor": ANCHOR_SCHEMA,
    "relinfon": RELINFON_SCHEMA,
}

#: A compiled expression: evaluates against the positional environment
#: (``env[depth]`` is the row tuple currently bound at loop depth).
_Compiled = Callable[[list], object]


class CompiledPlan:
    """One node-query, lowered and ready to execute against any database.

    One plan carries *both* executors: the row runner built eagerly at
    compile time, and a columnar (batch) runner lowered lazily from the
    same compile-time artifacts on first :meth:`execute_columnar` call.
    Both evaluate the identical query, so plans shared through
    :class:`~repro.core.plancache.PlanCache` amortize whichever lowering
    the engine's ``EngineConfig.executor`` selects.
    """

    __slots__ = (
        "query",
        "header",
        "cost_weight",
        "_scan_specs",
        "_runner",
        "_filter_plan",
        "_scalar_filters",
        "_scalar_project",
        "_positions",
        "_columnar",
    )

    def __init__(
        self,
        query: NodeQuery,
        scan_specs: tuple[tuple[str, bool, Schema], ...],
        runner: Callable[[list, list, list], None],
        filter_plan: tuple[tuple[Expr, ...], ...],
        scalar_filters: tuple[tuple[_Compiled, ...], ...],
        scalar_project: _Compiled,
        positions: dict[str, int],
    ) -> None:
        self.query = query
        self.header = query.header
        #: Precomputed evaluation-cost weight (the simulator's CPU model).
        self.cost_weight = query.cost_weight()
        self._scan_specs = scan_specs
        self._runner = runner
        self._filter_plan = filter_plan
        self._scalar_filters = scalar_filters
        self._scalar_project = scalar_project
        self._positions = positions
        self._columnar: Callable[[list, list, tuple, list], None] | None = None

    def execute(
        self,
        database: "NodeDatabase",
        site_documents: Table | None = None,
    ) -> list[ResultRow]:
        """Evaluate against one node's relations; same contract as
        :func:`~repro.relational.query.evaluate_node_query`."""
        tables: list[Sequence[tuple[object, ...]]] = []
        for relation, sitewide, schema in self._scan_specs:
            if sitewide:
                if site_documents is None:
                    raise DisqlSemanticsError(
                        f"node-query {self.query.label} needs site-wide documents "
                        "but none were built"
                    )
                table = site_documents
            else:
                table = database.relation(relation)
            if table.schema.attributes != schema.attributes:
                raise SchemaError(
                    f"table for {relation!r} does not match the compiled schema "
                    f"{schema.attributes!r}"
                )
            tables.append(table.row_list())
        results: list[ResultRow] = []
        self._runner([None] * len(tables), tables, results)
        return results

    def lower_batch(self) -> None:
        """Lower (and cache) the batch runner now instead of on first use.

        :class:`~repro.core.plancache.PlanCache` calls this on a miss when
        the engine runs columnar, so lowering happens once per structure at
        compile time rather than inside the first clone's evaluation.
        Idempotent; a pure function of the plan's compile-time artifacts.
        """
        if self._columnar is None:
            schemas = [spec[2] for spec in self._scan_specs]
            self._columnar = build_columnar_runner(
                self.query.select,
                self._filter_plan,
                self._scalar_filters,
                self._scalar_project,
                self._positions,
                schemas,
                self.header,
                compile_expr=lambda expr: _compile_expr(
                    expr, self._positions, schemas
                ),
                row_runner=self._runner,
            )

    def execute_columnar(
        self,
        database: "NodeDatabase",
        site_documents: Table | None = None,
        level_times: "dict[str, float] | None" = None,
    ) -> list[ResultRow]:
        """Evaluate through the batch (columnar) executor.

        Same rows, same order, same lazily-raised errors as
        :meth:`execute` — see :mod:`repro.relational.columnar` for how the
        equivalence is preserved.  The batch runner is lowered on first
        use and cached on the plan (or ahead of time via
        :meth:`lower_batch`).  ``level_times`` optionally accumulates
        per-pipeline-stage wall-clock for the profiling harness.
        """
        tables: list[Sequence[tuple[object, ...]]] = []
        table_objs: list[Table] = []
        for relation, sitewide, schema in self._scan_specs:
            if sitewide:
                if site_documents is None:
                    raise DisqlSemanticsError(
                        f"node-query {self.query.label} needs site-wide documents "
                        "but none were built"
                    )
                table = site_documents
            else:
                table = database.relation(relation)
            if table.schema.attributes != schema.attributes:
                raise SchemaError(
                    f"table for {relation!r} does not match the compiled schema "
                    f"{schema.attributes!r}"
                )
            tables.append(table.row_list())
            table_objs.append(table)
        if self._columnar is None:
            self.lower_batch()
        results: list[ResultRow] = []
        self._columnar([None] * len(tables), tables, table_objs, results, level_times)
        return results


@lru_cache(maxsize=65536)
def structural_key(query: NodeQuery) -> str:
    """The qid-independent identity of a node-query's *structure*.

    Two node-queries with equal keys compute the same function of a node
    database — same select list, same table declarations, same predicate,
    same sitewide aliases — so compiled plans and memoized results are
    interchangeable between them even when they belong to different
    web-queries.  The ``label`` is deliberately excluded: it names the step
    for traces and result grouping but never affects evaluation.  Built
    from the dataclass reprs (complete by construction) rather than the
    prettified ``str(query)``, so no two distinct structures can collide
    on rendering.
    """
    return repr((query.select, query.tables, query.where, query.sitewide_aliases))


@lru_cache(maxsize=65536)
def structural_hash(query: NodeQuery) -> str:
    """Short digest of :func:`structural_key` — the cache key.

    64 bits is plenty for the handful of live node-queries a server sees,
    but consumers must still verify the full key on a hit (see
    :class:`~repro.core.plancache.PlanCache`): a digest can collide, and a
    collision served silently would mean wrong rows.
    """
    return hashlib.blake2b(
        structural_key(query).encode("utf-8"), digest_size=8
    ).hexdigest()


def compile_node_query(query: NodeQuery) -> CompiledPlan:
    """Lower ``query`` into a :class:`CompiledPlan` (database-independent)."""
    alias_order = [decl.alias for decl in query.tables]
    positions = {alias: index for index, alias in enumerate(alias_order)}
    sitewide = set(query.sitewide_aliases)
    scan_specs = tuple(
        (
            decl.relation,
            decl.alias in sitewide,
            DOCUMENT_SCHEMA if decl.alias in sitewide else _SCHEMAS[decl.relation],
        )
        for decl in query.tables
    )
    schemas = [spec[2] for spec in scan_specs]
    filter_plan = tuple(tuple(level) for level in _plan_filters(query, alias_order))
    filters = [
        tuple(_compile_expr(conjunct, positions, schemas) for conjunct in level)
        for level in filter_plan
    ]
    project = _compile_projection(query.select, positions, schemas)
    runner = _build_runner(len(alias_order), filters, project, query.header)
    return CompiledPlan(
        query, scan_specs, runner, filter_plan, tuple(filters), project, positions
    )


# -- the nested loop, pre-built as a closure chain ----------------------------


def _build_runner(
    depth_count: int,
    filters: list[tuple[_Compiled, ...]],
    project: _Compiled,
    header: tuple[str, ...],
) -> Callable[[list, list, list], None]:
    leaf_filters = filters[depth_count]

    if leaf_filters:

        def step(env, tables, out, _fs=leaf_filters, _p=project, _h=header):
            for predicate in _fs:
                if not predicate(env):
                    return
            out.append(ResultRow(_h, _p(env)))

    else:

        def step(env, tables, out, _p=project, _h=header):
            out.append(ResultRow(_h, _p(env)))

    for depth in range(depth_count - 1, -1, -1):
        step = _make_level(depth, filters[depth], step)
    return step


def _make_level(
    depth: int, level_filters: tuple[_Compiled, ...], inner: Callable
) -> Callable[[list, list, list], None]:
    if not level_filters:

        def level(env, tables, out, _d=depth, _inner=inner):
            for row in tables[_d]:
                env[_d] = row
                _inner(env, tables, out)

    elif len(level_filters) == 1:
        predicate = level_filters[0]

        def level(env, tables, out, _d=depth, _f=predicate, _inner=inner):
            if not _f(env):
                return
            for row in tables[_d]:
                env[_d] = row
                _inner(env, tables, out)

    else:

        def level(env, tables, out, _d=depth, _fs=level_filters, _inner=inner):
            for predicate in _fs:
                if not predicate(env):
                    return
            for row in tables[_d]:
                env[_d] = row
                _inner(env, tables, out)

    return level


# -- expression lowering -------------------------------------------------------


def _compile_projection(
    select: Sequence[Attr], positions: dict[str, int], schemas: Sequence[Schema]
) -> _Compiled:
    getters = tuple(_compile_attr(attr, positions, schemas, projection=True) for attr in select)
    if len(getters) == 1:
        getter = getters[0]

        def project_one(env, _g=getter):
            return (_g(env),)

        return project_one

    def project(env, _gs=getters):
        return tuple(g(env) for g in _gs)

    return project


def _compile_attr(
    attr: Attr,
    positions: dict[str, int],
    schemas: Sequence[Schema],
    *,
    projection: bool = False,
) -> _Compiled:
    depth = positions[attr.alias]
    schema = schemas[depth]
    if attr.name not in schema:
        # Mirror the interpreter's *lazy* failure exactly: projection raises
        # KeyError(name) at the leaf, predicate evaluation raises
        # EvaluationError — and neither fires unless actually reached.
        if projection:

            def missing_projection(env, _name=attr.name):
                raise KeyError(_name)

            return missing_projection

        def missing_attr(env, _alias=attr.alias, _name=attr.name):
            raise EvaluationError(f"table {_alias!r} has no attribute {_name!r}")

        return missing_attr
    column = schema.position(attr.name)

    def fetch(env, _d=depth, _c=column):
        return env[_d][_c]

    return fetch


def _compile_expr(
    expr: Expr, positions: dict[str, int], schemas: Sequence[Schema]
) -> _Compiled:
    if isinstance(expr, Literal):
        value = expr.value

        def constant(env, _v=value):
            return _v

        return constant
    if isinstance(expr, Attr):
        return _compile_attr(expr, positions, schemas)
    if isinstance(expr, Compare):
        return _compile_compare(expr, positions, schemas)
    if isinstance(expr, Contains):
        return _compile_contains(expr, positions, schemas)
    if isinstance(expr, And):
        left = _compile_expr(expr.left, positions, schemas)
        right = _compile_expr(expr.right, positions, schemas)

        def conjunction(env, _l=left, _r=right):
            return bool(_l(env)) and bool(_r(env))

        return conjunction
    if isinstance(expr, Or):
        left = _compile_expr(expr.left, positions, schemas)
        right = _compile_expr(expr.right, positions, schemas)

        def disjunction(env, _l=left, _r=right):
            return bool(_l(env)) or bool(_r(env))

        return disjunction
    if isinstance(expr, Not):
        operand = _compile_expr(expr.operand, positions, schemas)

        def negation(env, _o=operand):
            return not _o(env)

        return negation
    raise EvaluationError(f"unknown expression node {expr!r}")


def _compile_compare(
    expr: Compare, positions: dict[str, int], schemas: Sequence[Schema]
) -> _Compiled:
    left = _compile_expr(expr.left, positions, schemas)
    right = _compile_expr(expr.right, positions, schemas)
    comparator = _COMPARATORS[expr.op]
    op = expr.op

    def compare(env, _l=left, _r=right, _op=op, _cmp=comparator):
        lv, rv = _coerce_pair(_op, _l(env), _r(env))
        try:
            return _cmp(lv, rv)
        except TypeError:
            raise EvaluationError(
                f"cannot compare {type(lv).__name__} {_op} {type(rv).__name__}"
            ) from None

    return compare


def _compile_contains(
    expr: Contains, positions: dict[str, int], schemas: Sequence[Schema]
) -> _Compiled:
    haystack = _compile_expr(expr.haystack, positions, schemas)
    needle = _compile_expr(expr.needle, positions, schemas)
    max_edits = expr.max_edits

    if max_edits:
        from .fuzzy import fuzzy_contains

        def fuzzy(env, _h=haystack, _n=needle, _k=max_edits):
            hv = _h(env)
            nv = _n(env)
            if not isinstance(hv, str) or not isinstance(nv, str):
                raise EvaluationError("contains requires string operands")
            return fuzzy_contains(hv, nv, _k)

        return fuzzy

    # Constant needle (the overwhelmingly common shape): lowercase it once.
    if isinstance(expr.needle, Literal) and isinstance(expr.needle.value, str):
        lowered = expr.needle.value.lower()

        def contains_const(env, _h=haystack, _n=lowered):
            hv = _h(env)
            if not isinstance(hv, str):
                raise EvaluationError("contains requires string operands")
            return _n in hv.lower()

        return contains_const

    def contains(env, _h=haystack, _n=needle):
        hv = _h(env)
        nv = _n(env)
        if not isinstance(hv, str) or not isinstance(nv, str):
            raise EvaluationError("contains requires string operands")
        return nv.lower() in hv.lower()

    return contains
