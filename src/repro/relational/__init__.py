"""A small in-memory relational engine.

Query-servers evaluate node-queries against a *temporary in-memory database*
of virtual relations built per document (paper Section 2.4).  This package
provides the pieces: schemas, tables, a boolean/comparison expression
evaluator with the paper's ``contains`` predicate, and nested-loop
select-project evaluation of node-queries.
"""

from .expr import (
    And,
    Attr,
    Compare,
    Contains,
    Expr,
    Literal,
    Not,
    Or,
    evaluate,
)
from .compile import CompiledPlan, compile_node_query
from .query import NodeQuery, ResultRow, TableDecl, evaluate_node_query
from .schema import Schema
from .table import Table

__all__ = [
    "And",
    "Attr",
    "Compare",
    "CompiledPlan",
    "Contains",
    "Expr",
    "Literal",
    "NodeQuery",
    "Not",
    "Or",
    "ResultRow",
    "Schema",
    "Table",
    "TableDecl",
    "compile_node_query",
    "evaluate",
    "evaluate_node_query",
]
