"""Approximate matching: bounded edit distance over word windows.

Paper Section 7.1 lists "supporting approximate queries" as future work.
This module implements it for the ``contains`` predicate: DISQL's
``contains~k`` matches when some window of the haystack is within ``k``
character edits (insert / delete / substitute) of the needle, compared
case-insensitively on whitespace-normalized text.

The distance computation is a banded Levenshtein: cost ``O(|a|·k)`` with an
early exit once the band exceeds ``k``, so scanning long documents for
small ``k`` stays cheap.
"""

from __future__ import annotations

__all__ = ["within_edits", "fuzzy_contains"]


def within_edits(a: str, b: str, max_edits: int) -> bool:
    """True when ``levenshtein(a, b) <= max_edits`` (banded, early exit)."""
    if max_edits < 0:
        return False
    if abs(len(a) - len(b)) > max_edits:
        return False
    if a == b:
        return True
    # Standard DP with a diagonal band of half-width max_edits.
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        lo = max(1, i - max_edits)
        hi = min(len(b), i + max_edits)
        current = [i] + [max_edits + 1] * len(b)
        for j in range(lo, hi + 1):
            cost = 0 if ch_a == b[j - 1] else 1
            current[j] = min(
                previous[j] + 1,        # delete from a
                current[j - 1] + 1,     # insert into a
                previous[j - 1] + cost,  # substitute / match
            )
        if min(current[max(0, lo - 1) : hi + 1]) > max_edits:
            return False
        previous = current
    return previous[len(b)] <= max_edits


def fuzzy_contains(haystack: str, needle: str, max_edits: int) -> bool:
    """Approximate substring containment over word windows.

    The needle (``w`` words after normalization) is compared against every
    ``w``-word window of the haystack; windows one word shorter or longer
    are also tried when ``max_edits > 0``, since an edit can delete or
    insert a whole short word.  Exact ``max_edits=0`` degrades to the
    case-insensitive ``contains`` semantics.
    """
    haystack_norm = " ".join(haystack.lower().split())
    needle_norm = " ".join(needle.lower().split())
    if not needle_norm:
        return True
    if max_edits == 0 or needle_norm in haystack_norm:
        return needle_norm in haystack_norm

    words = haystack_norm.split()
    needle_len = len(needle_norm.split())
    if not words:
        return within_edits("", needle_norm, max_edits)
    window_sizes = {needle_len}
    if max_edits > 0:
        window_sizes.add(max(1, needle_len - 1))
        window_sizes.add(needle_len + 1)
    for size in sorted(window_sizes):
        if size > len(words):
            continue
        for start in range(len(words) - size + 1):
            window = " ".join(words[start : start + size])
            if within_edits(window, needle_norm, max_edits):
                return True
    return False
