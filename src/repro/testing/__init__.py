"""Deterministic simulation testing (DST) for the WEBDIS protocols.

Seeded generators produce (web, query, fault schedule) cases; an
independent oracle — the data-shipping baseline run fault-free — decides
what the right answer is; the invariant battery audits the protocol's
internal accounting; a seeded tie-breaker in the simulation clock permutes
same-time events to explore schedules; and a greedy shrinker reduces any
failure to a small JSON repro replayable via ``tools/dst.py replay``.

See ``docs/testing.md`` for the workflow.
"""

from .generators import (
    build_fault_plan,
    build_web,
    generate_case,
    query_specs,
    query_text,
    query_texts,
)
from .invariants import (
    Violation,
    check_handle,
    check_no_refused_retry,
    check_queue_ceilings,
    check_run,
    reference_rows,
)
from .oracle import Reference, check_clean, check_faulted, reference_run
from .runner import CaseResult, SeedResult, case_fails, run_case, run_seed
from .shrink import shrink, spec_size

__all__ = [
    "CaseResult",
    "Reference",
    "SeedResult",
    "Violation",
    "build_fault_plan",
    "build_web",
    "case_fails",
    "check_clean",
    "check_faulted",
    "check_handle",
    "check_no_refused_retry",
    "check_queue_ceilings",
    "check_run",
    "generate_case",
    "query_specs",
    "query_text",
    "query_texts",
    "reference_rows",
    "reference_run",
    "run_case",
    "run_seed",
    "shrink",
    "spec_size",
]
