"""Greedy failure shrinking: minimize a failing case to a replayable repro.

Classic delta-debugging over the case spec (:mod:`repro.testing.generators`
JSON form): each pass proposes structurally smaller candidates — fewer
fault events, fewer sites/pages/links, a simpler PRE, a plainer query, no
schedule jitter, no latency overrides — and a candidate is kept iff the
failure predicate still fires.  Passes repeat until a full sweep finds
nothing removable, so the result is 1-minimal with respect to the pass
vocabulary.

The predicate is usually :func:`repro.testing.runner.case_fails`, which
treats *any* surviving violation as "still failing" (shrinking often
morphs one symptom into a related one — e.g. a hang into a spurious
PARTIAL — and chasing a single invariant label would abandon perfectly
good reductions).  Setup exceptions do **not** count as failures, so the
shrinker cannot cheat by producing a malformed spec.

The minimized spec serializes to one JSON file; ``tools/dst.py replay``
re-runs it bit-identically.
"""

from __future__ import annotations

import copy
import json
from typing import Any, Callable, Iterator

from .generators import Spec

__all__ = ["shrink", "spec_size", "to_json", "from_json"]


def spec_size(spec: Spec) -> tuple[int, ...]:
    """A lexicographic size for progress reporting (smaller is better)."""
    sites = spec["web"]["sites"]
    return (
        len(spec["faults"]),
        len(spec.get("queries", ())),
        len(sites),
        sum(len(site["pages"]) for site in sites),
        sum(
            len(page.get("links", ())) + len(page.get("emphasized", ()))
            for site in sites
            for page in site["pages"]
        ),
        _pre_size(spec["query"]["pre"]),
        len(spec.get("latency", ())),
        1 if spec.get("schedule_seed") is not None else 0,
        1 if spec["query"]["relinfon"] else 0,
        1 if spec["query"].get("anchor") else 0,
    )


def _pre_size(tree: Any) -> int:
    if isinstance(tree, str):
        return 1
    if "cat" in tree:
        return 1 + sum(_pre_size(part) for part in tree["cat"])
    if "alt" in tree:
        return 1 + sum(_pre_size(option) for option in tree["alt"])
    return 1 + _pre_size(tree["rep"])


def to_json(spec: Spec, *, inject_bug: bool = False) -> str:
    """Serialize a (shrunk) spec as a replayable repro document."""
    return json.dumps(
        {"version": 1, "inject_bug": inject_bug, "spec": spec},
        indent=2,
        sort_keys=True,
    )


def from_json(text: str) -> tuple[Spec, bool]:
    """Parse a repro document; returns ``(spec, inject_bug)``."""
    doc = json.loads(text)
    return doc["spec"], bool(doc.get("inject_bug", False))


# -- candidate passes ----------------------------------------------------------


def _candidates(spec: Spec) -> Iterator[Spec]:
    """Structurally smaller variants of ``spec``, most aggressive first."""
    # 1. Drop fault events, one at a time.
    for index in range(len(spec["faults"])):
        candidate = copy.deepcopy(spec)
        del candidate["faults"][index]
        yield candidate
    # 1b. Drop extra tenant queries, one at a time (older repro files have
    # no "queries" key), and relax the overload-pressure knobs.
    for index in range(len(spec.get("queries", ()))):
        candidate = copy.deepcopy(spec)
        del candidate["queries"][index]
        yield candidate
    for knob in ("per_query_queue_limit", "server_queue_limit", "shed_after"):
        if spec.get("config", {}).get(knob) is not None:
            candidate = copy.deepcopy(spec)
            candidate["config"][knob] = None
            yield candidate
    # 1c. Clear the cross-query memo knob: a repro that still fails with
    # caching off has nothing to do with the memo, which halves the
    # suspect surface for the debugging human.
    if spec.get("config", {}).get("cross_query_caching", True):
        candidate = copy.deepcopy(spec)
        candidate.setdefault("config", {})["cross_query_caching"] = False
        yield candidate
    # 1d. Fall back to the row executor: a repro that still fails
    # row-at-a-time rules out the whole columnar lowering (kernels, batch
    # projection, fallback machinery) as the culprit.
    if spec.get("config", {}).get("executor", "columnar") == "columnar":
        candidate = copy.deepcopy(spec)
        candidate.setdefault("config", {})["executor"] = "row"
        yield candidate
    # 2. Disable schedule jitter.
    if spec.get("schedule_seed") is not None:
        candidate = copy.deepcopy(spec)
        candidate["schedule_seed"] = None
        yield candidate
    # 3. Drop latency overrides.
    for index in range(len(spec.get("latency", ()))):
        candidate = copy.deepcopy(spec)
        del candidate["latency"][index]
        yield candidate
    # 4. Remove whole sites (never any query's start site — a dangling
    # start would fail on setup, not on the protocol).
    start_hosts = {
        query["start"].split("//", 1)[1].split("/", 1)[0]
        for query in (spec["query"], *spec.get("queries", ()))
    }
    start_host = spec["query"]["start"].split("//", 1)[1].split("/", 1)[0]
    sites = spec["web"]["sites"]
    for index, site in enumerate(sites):
        if site["name"] in start_hosts:
            continue
        candidate = copy.deepcopy(spec)
        del candidate["web"]["sites"][index]
        yield candidate
    # 5. Remove pages (never the start site's "/").
    for site_index, site in enumerate(sites):
        for page_index, page in enumerate(site["pages"]):
            if site["name"] == start_host and page["path"] == "/":
                continue
            candidate = copy.deepcopy(spec)
            del candidate["web"]["sites"][site_index]["pages"][page_index]
            yield candidate
    # 6. Remove individual links and emphasized segments.
    for site_index, site in enumerate(sites):
        for page_index, page in enumerate(site["pages"]):
            for link_index in range(len(page.get("links", ()))):
                candidate = copy.deepcopy(spec)
                del candidate["web"]["sites"][site_index]["pages"][page_index][
                    "links"
                ][link_index]
                yield candidate
            for em_index in range(len(page.get("emphasized", ()))):
                candidate = copy.deepcopy(spec)
                del candidate["web"]["sites"][site_index]["pages"][page_index][
                    "emphasized"
                ][em_index]
                yield candidate
    # 7. Simplify the PRE: replace it with any proper subtree, shrink bounds.
    for subtree in _pre_reductions(spec["query"]["pre"]):
        candidate = copy.deepcopy(spec)
        candidate["query"]["pre"] = subtree
        yield candidate
    # 8. Simplify the query: drop the anchor join level, then the relinfon
    # join ("anchor" is absent in pre-EXP-P6 repro files).  Each drop
    # removes one plan level, so a repro that still fails pinpoints the
    # shallowest join depth that triggers it.
    if spec["query"].get("anchor"):
        candidate = copy.deepcopy(spec)
        candidate["query"]["anchor"] = False
        yield candidate
    if spec["query"]["relinfon"]:
        candidate = copy.deepcopy(spec)
        candidate["query"]["relinfon"] = False
        yield candidate


def _pre_reductions(tree: Any) -> Iterator[Any]:
    """Structurally smaller PRE trees (subtrees, reduced bounds)."""
    if isinstance(tree, str):
        return
    if "cat" in tree:
        for part in tree["cat"]:
            yield copy.deepcopy(part)
        for index, part in enumerate(tree["cat"]):
            for reduced in _pre_reductions(part):
                candidate = copy.deepcopy(tree)
                candidate["cat"][index] = reduced
                yield candidate
    elif "alt" in tree:
        for option in tree["alt"]:
            yield copy.deepcopy(option)
        for index, option in enumerate(tree["alt"]):
            for reduced in _pre_reductions(option):
                candidate = copy.deepcopy(tree)
                candidate["alt"][index] = reduced
                yield candidate
    else:
        yield copy.deepcopy(tree["rep"])
        if tree["bound"] is None:
            candidate = copy.deepcopy(tree)
            candidate["bound"] = 2
            yield candidate
        elif tree["bound"] > 1:
            candidate = copy.deepcopy(tree)
            candidate["bound"] = tree["bound"] - 1
            yield candidate


def shrink(
    spec: Spec,
    fails: Callable[[Spec], bool],
    *,
    max_checks: int = 500,
    progress: Callable[[str], None] | None = None,
) -> Spec:
    """Minimize ``spec`` while ``fails(candidate)`` keeps returning True.

    Greedy first-improvement: take the first candidate that still fails,
    restart the pass list from it, stop when a full sweep yields nothing
    (1-minimal) or after ``max_checks`` predicate evaluations.
    """
    if not fails(spec):
        raise ValueError("shrink() needs a failing spec to start from")
    current = copy.deepcopy(spec)
    checks = 0
    improved = True
    while improved and checks < max_checks:
        improved = False
        for candidate in _candidates(current):
            checks += 1
            if checks >= max_checks:
                break
            if fails(candidate):
                current = candidate
                improved = True
                if progress is not None:
                    progress(f"shrunk to {spec_size(current)} after {checks} checks")
                break
    return current
