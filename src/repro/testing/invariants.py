"""Protocol invariant checks for chaos and DST runs.

The soak harness (``benchmarks/bench_soak.py``), the self-healing tests and
the deterministic-simulation-testing runner (:mod:`repro.testing.runner`)
drive seeded schedules of crashes, partitions and flaky windows, and after
every run ask this module: *did the protocol stay correct, not just
alive?*  Six invariants, each a direct consequence of the design:

``cht-consistent``
    The CHT's accounting agrees with itself: additions minus deletions
    equals the legacy signed sum plus pending instances minus unmatched
    early retirements, and the incremental counters match a full recount
    (``CurrentHostsTable.audit``).

``retire-once``
    Per dispatch identity ``(dispatch_id, node)``, at most one *effective*
    retirement and at most one effective addition ever happened — duplicate
    and stale reports were absorbed, never double-counted.

``legacy-nonnegative``
    At quiescence no legacy ``(node, state)`` signed count is negative.
    Transient negatives are legitimate mid-flight (reports are independent
    connections and may reorder), but a *settled* negative means two
    reports retired an entry only one addition announced — the signature
    of the pre-epoch-fence double-retire bug.

``terminal``
    Every query reached COMPLETE, PARTIAL or CANCELLED — no handle left
    RUNNING once the simulation quiesced (no hung queries).

``no-refused-retry``
    No retry was ever scheduled after a REFUSED connect: REFUSED is the
    passive-termination / participation signal and stays final, so
    recovery respects termination.

``rows-sound``
    Result rows match the fault-free ground truth: a COMPLETE query
    collected exactly the reference answer set (no loss, nothing invented),
    and any query's rows are a sub-multiset of what fault-free processing
    could produce — re-processed work was deduplicated, not double-counted.
    In a multi-query run each query is checked against its *own* solo
    reference, so an invented row is cross-query contamination.

``queue-ceiling``
    When ``per_query_queue_limit`` is configured, no server's per-query
    run-queue ever exceeded it (high-water audit of
    :attr:`~repro.core.server.QueryServer.peak_query_queue_depth`) — the
    admission control actually held the line it advertises.

All checks are read-only and deterministic.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.client import QueryHandle, QueryStatus
from ..errors import ProtocolError

__all__ = [
    "Violation",
    "check_handle",
    "check_memo_coherence",
    "check_no_refused_retry",
    "check_queue_ceilings",
    "check_run",
    "reference_rows",
]


@dataclass(frozen=True, slots=True)
class Violation:
    """One invariant breach, with enough detail to reproduce it."""

    invariant: str
    qid: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.qid}: {self.detail}"


def reference_rows(handle: QueryHandle) -> Counter:
    """The row multiset a fault-free run produced (ground truth)."""
    return Counter((label, row.header, row.values) for label, row, __ in handle.results)


def _check_cht(handle: QueryHandle) -> list[Violation]:
    qid = str(handle.qid)
    try:
        handle.cht.audit()
    except ProtocolError as exc:
        return [Violation("cht-consistent", qid, str(exc))]
    violations = []
    if handle.status is QueryStatus.COMPLETE and handle.cht.imbalance() != 0:
        violations.append(
            Violation(
                "cht-consistent", qid,
                f"COMPLETE with imbalance {handle.cht.imbalance()}",
            )
        )
    return violations


def _check_retire_once(handle: QueryHandle) -> list[Violation]:
    """Per dispatch identity: at most one effective add and one retire.

    Read off the CHT history: ``note`` distinguishes effective events from
    absorbed ones ("absorbed", "stale") and recovery bookkeeping
    ("superseded", "abandoned: ...").
    """
    qid = str(handle.qid)
    adds: Counter = Counter()
    retires: Counter = Counter()
    for record in handle.cht.history():
        if not record.dispatch_id:
            continue  # legacy signed-count traffic has no identity to check
        key = (record.dispatch_id, record.entry.node)
        if record.deleted:
            if record.note in ("", "early"):
                retires[key] += 1
        else:
            adds[key] += 1
    violations = []
    for key, count in retires.items():
        if count > 1:
            violations.append(
                Violation("retire-once", qid, f"{key} retired {count} times")
            )
    for key, count in adds.items():
        if count > 1:
            violations.append(
                Violation("retire-once", qid, f"{key} added {count} times")
            )
    return violations


def _check_legacy_nonnegative(handle: QueryHandle) -> list[Violation]:
    """At quiescence no legacy signed count may be negative (see module doc)."""
    negatives = handle.cht.negative_legacy_entries()
    if not negatives:
        return []
    entry, count = negatives[0]
    return [
        Violation(
            "legacy-nonnegative", str(handle.qid),
            f"{len(negatives)} legacy count(s) negative at quiescence, "
            f"e.g. {entry} = {count} — an entry was retired more often than "
            "announced (double-retire)",
        )
    ]


def _check_terminal(handle: QueryHandle) -> list[Violation]:
    if handle.status is QueryStatus.RUNNING:
        return [
            Violation(
                "terminal", str(handle.qid),
                f"still RUNNING after quiescence (imbalance {handle.cht.imbalance()}, "
                f"{len(handle.cht.pending_entries())} pending entr(ies))",
            )
        ]
    return []


def check_no_refused_retry(tracer) -> list[Violation]:
    """No retry is ever scheduled after a REFUSED connect.

    REFUSED is the passive-termination / participation signal and must stay
    final; retrying it would turn "the user cancelled" into "try again
    later".  The retry trace records the failed attempt's outcome, so a
    ``(refused)`` marker inside any ``retry-scheduled`` event is a breach.
    (A retry after a *transient* fault aimed at a port that happens to be
    closed is fine — the sender has not observed the refusal yet; its retry
    will, and will stop.)  Run-level: scans the whole trace once.
    """
    if tracer is None or not getattr(tracer, "enabled", False):
        return []
    violations = []
    for record in tracer.events:
        if record.action == "retry-scheduled" and "(refused)" in record.detail:
            violations.append(
                Violation(
                    "no-refused-retry", "-",
                    f"retry at t={record.time:.3f} after REFUSED: {record.detail}",
                )
            )
    return violations


def check_memo_coherence(engine) -> list[Violation]:
    """No cross-query memo entry outlives a crash or an epoch bump.

    Every :class:`~repro.core.resultmemo.ResultMemo` entry is stamped with
    the memo version that wrote it; ``clear()`` (crash) and
    ``advance_epoch()`` bump the version *and* drop the entries, so any
    surviving entry stamped with an older version means an invalidation
    path leaked cached state across an incarnation or web-epoch boundary —
    exactly the silently-wrong-rows failure mode caching introduces.
    The same sweep audits the memo's byte gauge: ``bytes_est`` is
    maintained incrementally across stores, overwrites, evictions and
    clears, and must always equal a from-scratch recount
    (:meth:`~repro.core.resultmemo.ResultMemo.recount_bytes`) — drift means
    some store path forgot to subtract a replaced entry's estimate, which
    silently skews both the dashboard gauge and the LRU's eviction
    pressure.  Run-level check; engines without per-site servers, or with
    ``cross_query_caching`` off, are skipped.
    """
    servers = getattr(engine, "servers", None)
    if not servers:
        return []
    violations = []
    for site, server in servers.items():
        memo = getattr(server, "memo", None)
        if memo is None:
            continue
        stale = memo.stale_entries()
        if stale:
            violations.append(
                Violation(
                    "memo-coherence", "-",
                    f"server {site} memo holds {len(stale)} entr(y/ies) from "
                    f"a dead version, e.g. {stale[0]}",
                )
            )
        recount = memo.recount_bytes()
        if recount != memo.bytes_est:
            violations.append(
                Violation(
                    "memo-coherence", "-",
                    f"server {site} memo byte gauge drifted: bytes_est="
                    f"{memo.bytes_est} but a from-scratch recount gives "
                    f"{recount}",
                )
            )
    return violations


def check_queue_ceilings(engine) -> list[Violation]:
    """No server's per-query run-queue ever exceeded the configured ceiling.

    Audits each server's high-water mark after the run; engines without
    per-site servers (the asyncio engine exposes the same attribute, the
    data-shipping baseline has none) are skipped.  Run-level check.
    """
    servers = getattr(engine, "servers", None)
    if not servers:
        return []
    violations = []
    for site, server in servers.items():
        limit = server.config.per_query_queue_limit
        if limit is None:
            continue
        peak = server.peak_query_queue_depth
        if peak > limit:
            violations.append(
                Violation(
                    "queue-ceiling", "-",
                    f"server {site} per-query queue peaked at {peak} "
                    f"(> limit {limit})",
                )
            )
    return violations


def _check_rows(
    handle: QueryHandle, reference: Counter | None, expect_full: bool
) -> list[Violation]:
    if reference is None:
        return []
    qid = str(handle.qid)
    observed = reference_rows(handle)
    violations = []
    invented = observed - reference
    if invented:
        sample = next(iter(invented))
        violations.append(
            Violation(
                "rows-sound", qid,
                f"{sum(invented.values())} row occurrence(s) beyond the fault-free "
                f"reference, e.g. {sample[0]}={sample[2]}",
            )
        )
    # Full coverage is opt-in: a COMPLETE query can legitimately lack rows
    # from sites that stayed unreachable (their entries were *retired* as
    # unreachable, which is exact).  The unconditional invariant is that
    # nothing beyond the ground truth is ever invented or double-counted.
    if expect_full and handle.status is QueryStatus.COMPLETE:
        missing = {key for key in reference if key not in observed}
        if missing:
            sample = next(iter(missing))
            violations.append(
                Violation(
                    "rows-sound", qid,
                    f"COMPLETE but missing {len(missing)} distinct reference row(s), "
                    f"e.g. {sample[0]}={sample[2]}",
                )
            )
    return violations


def check_handle(
    handle: QueryHandle,
    *,
    tracer=None,
    reference: Counter | None = None,
    require_terminal: bool = True,
    expect_full: bool = False,
) -> list[Violation]:
    """All invariant checks for one query handle.

    ``require_terminal=False`` is for mid-run checks (the query may still
    legitimately be RUNNING, and legacy counts may be transiently
    negative).  ``expect_full=True`` additionally demands a COMPLETE query
    cover the whole reference answer set — only sound when every site was
    reachable often enough for recovery to succeed.
    """
    violations = []
    violations += _check_cht(handle)
    violations += _check_retire_once(handle)
    if require_terminal:
        violations += _check_terminal(handle)
        violations += _check_legacy_nonnegative(handle)
    violations += _check_rows(handle, reference, expect_full)
    return violations


def check_run(
    engine,
    handles,
    *,
    references: dict | None = None,
    require_terminal: bool = True,
    expect_full: bool = False,
) -> list[Violation]:
    """Check every handle of a finished run against all invariants.

    ``references`` maps ``handle.qid.number`` to the fault-free row
    multiset (from :func:`reference_rows` on a clean run of the same
    query).
    """
    violations: list[Violation] = []
    for handle in handles:
        reference = None
        if references is not None:
            reference = references.get(handle.qid.number)
        violations += check_handle(
            handle,
            tracer=engine.tracer,
            reference=reference,
            require_terminal=require_terminal,
            expect_full=expect_full,
        )
    violations += check_no_refused_retry(engine.tracer)
    violations += check_queue_ceilings(engine)
    violations += check_memo_coherence(engine)
    return violations
