"""The DST runner: generate → simulate → oracle-check → fingerprint.

One *case* drives three simulations:

1. **Reference** — the data-shipping baseline, fault-free, with a
   provenance journal (:func:`repro.testing.oracle.reference_run`).
2. **Clean control** — WEBDIS on the same web/query with no faults and
   FIFO scheduling.  Must finish COMPLETE with exactly the reference rows
   (:func:`check_clean`); its row multiset also becomes the ``rows-sound``
   ground truth for the faulted run.
3. **Run under test** — WEBDIS with the spec's fault schedule, latency
   overrides and tie-break schedule seed, driven by a
   :class:`~repro.core.supervisor.QuerySupervisor`.  Checked against the
   full invariant battery (:mod:`repro.testing.invariants`) and the
   coverage-aware oracle (:func:`check_faulted`).

Every faulted run also produces a **fingerprint** — a hash over the final
status, rows, recovery epoch, completion time and the complete network
message log ``(time, src, dst, port, kind)`` — so "same seed ⇒
bit-identical run" is checkable by plain string equality.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
from dataclasses import dataclass, field

from ..core.config import EngineConfig
from ..core.engine import WebDisEngine
from ..core.supervisor import QuerySupervisor, RecoveryPolicy
from ..errors import ProtocolError, SimulationError
from ..net.network import NetworkConfig
from ..net.reliable import RetryPolicy
from .generators import (
    Spec,
    build_fault_plan,
    build_web,
    generate_case,
    latency_overrides,
    query_text,
)
from .invariants import Violation, check_run, reference_rows
from .oracle import Reference, check_clean, check_faulted, reference_run

__all__ = [
    "CaseResult",
    "SeedResult",
    "run_case",
    "run_case_asyncio",
    "run_seed",
    "case_fails",
    "POLICY",
]

#: Generous recovery budgets: a *clean* run must always reach COMPLETE, so
#: slow-but-alive paths (latency overrides up to ~3 s) must never exhaust
#: the round budget.  Escalation to PARTIAL is reserved for genuinely
#: unreachable coverage.
POLICY = RecoveryPolicy(
    quiet_timeout=2.0, max_recoveries=5, backoff_multiplier=1.6, deadline=60.0
)


@dataclass
class CaseResult:
    """Outcome of one simulated case (one schedule)."""

    spec: Spec
    status: str
    clean_status: str
    rows: int
    recovery_epoch: int
    violations: list[Violation] = field(default_factory=list)
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class SeedResult:
    """Outcome of one seed across its schedule variants."""

    seed: int
    cases: list[CaseResult]
    deterministic: bool = True

    @property
    def ok(self) -> bool:
        return self.deterministic and all(case.ok for case in self.cases)

    @property
    def violations(self) -> list[Violation]:
        found = [v for case in self.cases for v in case.violations]
        if not self.deterministic:
            found.append(
                Violation(
                    "deterministic", f"seed {self.seed}",
                    "same-seed rerun produced a different fingerprint",
                )
            )
        return found


def _engine_config(spec: Spec, *, inject_bug: bool) -> EngineConfig:
    config = spec.get("config", {})
    return EngineConfig(
        log_subsumption=config.get("log_subsumption", "paper"),
        batch_per_site=config.get("batch_per_site", True),
        compiled_plans=config.get("compiled_plans", True),
        frontier_batching=config.get("frontier_batching", True),
        retry_policy=RetryPolicy(
            max_attempts=3, base_delay=0.2, multiplier=2.0, jitter=0.3,
            seed=spec["seed"],
        ),
        debug_unfenced_recovery=inject_bug,
    )


def _run_clean(spec: Spec, reference: Reference) -> tuple[list[Violation], object]:
    """The fault-free WEBDIS control run; returns (violations, handle)."""
    engine = WebDisEngine(
        build_web(spec), config=_engine_config(spec, inject_bug=False), trace=True
    )
    handle = engine.submit_disql(query_text(spec))
    engine.run()
    violations = check_clean(handle, reference)
    violations += check_run(engine, [handle])
    return violations, handle


def _run_faulted(
    spec: Spec, reference: Reference, clean_rows, *, inject_bug: bool
) -> CaseResult:
    """The run under test: faults + schedule jitter + supervision."""
    engine = WebDisEngine(
        build_web(spec),
        config=_engine_config(spec, inject_bug=inject_bug),
        net_config=NetworkConfig(latency_overrides=latency_overrides(spec)),
        trace=True,
    )
    engine.clock.set_tie_breaker(spec.get("schedule_seed"))
    message_log: list[tuple] = []
    engine.network.add_tap(
        lambda time, src, dst, port, payload: message_log.append(
            (round(time, 9), src, dst, port, payload.kind)
        )
    )
    plan = build_fault_plan(spec)
    if plan is not None:
        engine.apply_faults(plan)
    supervisor = QuerySupervisor(engine.client, POLICY)
    handle = engine.submit_disql(query_text(spec))
    supervisor.supervise(handle)
    engine.run()

    violations = check_run(
        engine, [handle], references={handle.qid.number: clean_rows}
    )
    coverage = supervisor.coverage(handle)
    if plan is None:
        # Only the schedule differs from the control run: still clean, so
        # the oracle demands COMPLETE and exact equivalence.
        violations += check_clean(handle, reference)
    else:
        violations += check_faulted(handle, engine.tracer, reference, coverage)

    fingerprint = hashlib.sha256(
        repr(
            (
                handle.status.value,
                sorted(str((label, row.header, row.values))
                       for label, row, __ in handle.results),
                handle.recovery_epoch,
                round(handle.completion_time or -1.0, 9),
                tuple(message_log),
            )
        ).encode()
    ).hexdigest()
    return CaseResult(
        spec=spec,
        status=handle.status.value,
        clean_status="",
        rows=len(handle.results),
        recovery_epoch=handle.recovery_epoch,
        violations=violations,
        fingerprint=fingerprint,
    )


def run_case_asyncio(
    spec: Spec, *, time_scale: float = 1.0, timeout: float = 120.0
) -> CaseResult:
    """Replay one spec's faulted run over real asyncio sockets.

    This is an *approximate* replay, by design: the spec's fault windows
    map onto the wall clock (scaled by ``time_scale`` wall-seconds per
    sim-second) through the in-path chaos proxy, and crash rules become
    real socket teardowns — but arrival order is whatever the kernel
    produces, so the question answered is "does the shrunk scenario still
    self-heal on real sockets", not "is the run bit-identical".
    Correspondingly the checks are the invariant battery plus terminal
    status (no fingerprint, no row-multiset reference — a different
    interleaving can legitimately change DUPLICATE/REWRITE multiplicities),
    and latency overrides (a simulator cost-model knob) are not applied.
    """
    return asyncio.run(_run_case_asyncio(spec, time_scale, timeout))


async def _run_case_asyncio(
    spec: Spec, time_scale: float, timeout: float
) -> CaseResult:
    from ..core.aio_engine import AsyncioWebDisEngine
    from ..net.chaos import ChaosRules

    config = dataclasses.replace(
        _engine_config(spec, inject_bug=False), transport="asyncio"
    )
    plan = build_fault_plan(spec)
    chaos = None if plan is None else ChaosRules.from_plan(plan, time_scale=time_scale)
    engine = AsyncioWebDisEngine(build_web(spec), config=config, trace=True, chaos=chaos)
    try:
        supervisor = QuerySupervisor(engine.client, POLICY)
        handle = engine.submit_disql(query_text(spec))
        supervisor.supervise(handle)
        engine.apply_chaos_crashes()
        violations: list[Violation] = []
        try:
            await engine.run([handle], timeout=timeout)
        except SimulationError as exc:
            violations.append(Violation("terminal", str(handle.qid), str(exc)))
        violations += check_run(engine, [handle])
    finally:
        await engine.aclose()
    return CaseResult(
        spec=spec,
        status=handle.status.value,
        clean_status="",
        rows=len(handle.results),
        recovery_epoch=handle.recovery_epoch,
        violations=violations,
        fingerprint="",
    )


def run_case(spec: Spec, *, inject_bug: bool = False) -> CaseResult:
    """Run one spec end to end (reference + clean control + faulted run)."""
    reference = reference_run(spec)
    clean_violations, clean_handle = _run_clean(spec, reference)
    result = _run_faulted(
        spec, reference, reference_rows(clean_handle), inject_bug=inject_bug
    )
    result.clean_status = clean_handle.status.value
    result.violations = clean_violations + result.violations
    return result


def run_seed(
    seed: int,
    *,
    schedules: int = 2,
    inject_bug: bool = False,
    check_determinism: bool = True,
) -> SeedResult:
    """Run one seed: the reference and clean control once, then the run
    under test across ``schedules`` tie-break variants (the first is FIFO).

    ``check_determinism`` reruns the first variant and compares
    fingerprints — the "same seed ⇒ bit-identical" acceptance gate.
    """
    spec = generate_case(seed)
    reference = reference_run(spec)
    clean_violations, clean_handle = _run_clean(spec, reference)
    clean_rows = reference_rows(clean_handle)

    cases = []
    for variant in range(max(1, schedules)):
        variant_spec = dict(spec)
        variant_spec["schedule_seed"] = None if variant == 0 else seed * 1000 + variant
        case = _run_faulted(
            variant_spec, reference, clean_rows, inject_bug=inject_bug
        )
        case.clean_status = clean_handle.status.value
        if variant == 0:
            case.violations = clean_violations + case.violations
        cases.append(case)

    deterministic = True
    if check_determinism and cases:
        rerun = _run_faulted(
            cases[0].spec, reference, clean_rows, inject_bug=inject_bug
        )
        deterministic = rerun.fingerprint == cases[0].fingerprint
    return SeedResult(seed=seed, cases=cases, deterministic=deterministic)


def case_fails(spec: Spec, *, inject_bug: bool = False) -> bool:
    """Does ``spec`` still reproduce a failure?  (The shrinker's predicate.)

    Protocol-level exceptions (accounting divergence, runaway event loops)
    count as failures; anything else raised during setup means the
    candidate spec is malformed — e.g. the shrinker removed the start site
    — and must *not* count, or shrinking would chase setup artifacts.
    """
    try:
        return not run_case(spec, inject_bug=inject_bug).ok
    except (ProtocolError, SimulationError):
        return True
    except Exception:
        return False
