"""The DST runner: generate → simulate → oracle-check → fingerprint.

One *case* drives three simulations:

1. **Reference** — the data-shipping baseline, fault-free, with a
   provenance journal (:func:`repro.testing.oracle.reference_run`), run
   once per query: each query's reference is its *solo* answer.
2. **Clean control** — WEBDIS with every query of the spec submitted
   together, no faults, no queue pressure.  Each query must finish
   COMPLETE with exactly its solo reference rows (:func:`check_clean`) —
   this is the cross-query isolation oracle: interleaving tenants must
   not change any tenant's answer.  Each query's row multiset also
   becomes its ``rows-sound`` ground truth for the faulted run.
3. **Run under test** — WEBDIS with the spec's fault schedule, latency
   overrides, scheduler/admission knobs and tie-break schedule seed, all
   queries driven by a :class:`~repro.core.supervisor.QuerySupervisor`.
   Checked against the full invariant battery
   (:mod:`repro.testing.invariants`) and the coverage-aware oracle
   (:func:`check_faulted`), per query against its own solo reference.

Every faulted run also produces a **fingerprint** — a hash over each
query's final status, rows, recovery epoch and completion time plus the
complete network message log ``(time, src, dst, port, kind)`` — so "same
seed ⇒ bit-identical run" is checkable by plain string equality.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
from dataclasses import dataclass, field

from ..core.config import EngineConfig
from ..core.engine import WebDisEngine
from ..core.supervisor import QuerySupervisor, RecoveryPolicy
from ..errors import ProtocolError, SimulationError
from ..net.network import NetworkConfig
from ..net.reliable import RetryPolicy
from .generators import (
    Spec,
    build_fault_plan,
    build_web,
    generate_case,
    latency_overrides,
    query_texts,
)
from .invariants import Violation, check_run, reference_rows
from .oracle import Reference, check_clean, check_faulted, reference_run

__all__ = [
    "CaseResult",
    "SeedResult",
    "run_case",
    "run_case_asyncio",
    "run_seed",
    "case_fails",
    "POLICY",
]

#: Generous recovery budgets: a *clean* run must always reach COMPLETE, so
#: slow-but-alive paths (latency overrides up to ~3 s) must never exhaust
#: the round budget.  Escalation to PARTIAL is reserved for genuinely
#: unreachable coverage.
POLICY = RecoveryPolicy(
    quiet_timeout=2.0, max_recoveries=5, backoff_multiplier=1.6, deadline=60.0
)


@dataclass
class CaseResult:
    """Outcome of one simulated case (one schedule)."""

    spec: Spec
    status: str
    clean_status: str
    rows: int
    recovery_epoch: int
    violations: list[Violation] = field(default_factory=list)
    fingerprint: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class SeedResult:
    """Outcome of one seed across its schedule variants."""

    seed: int
    cases: list[CaseResult]
    deterministic: bool = True

    @property
    def ok(self) -> bool:
        return self.deterministic and all(case.ok for case in self.cases)

    @property
    def violations(self) -> list[Violation]:
        found = [v for case in self.cases for v in case.violations]
        if not self.deterministic:
            found.append(
                Violation(
                    "deterministic", f"seed {self.seed}",
                    "same-seed rerun produced a different fingerprint",
                )
            )
        return found


def _engine_config(
    spec: Spec, *, inject_bug: bool, pressure: bool = True
) -> EngineConfig:
    """The spec's engine knobs.  ``pressure=False`` strips the admission
    ceilings and shed timer: a run the oracle requires to be COMPLETE and
    exact (the clean control, or a faulted run whose plan shrank away)
    must never legitimately shed coverage."""
    config = spec.get("config", {})
    return EngineConfig(
        log_subsumption=config.get("log_subsumption", "paper"),
        batch_per_site=config.get("batch_per_site", True),
        compiled_plans=config.get("compiled_plans", True),
        frontier_batching=config.get("frontier_batching", True),
        scheduler=config.get("scheduler", "fair"),
        pump_budget=config.get("pump_budget"),
        cross_query_caching=config.get("cross_query_caching", True),
        executor=config.get("executor", "columnar"),
        per_query_queue_limit=config.get("per_query_queue_limit") if pressure else None,
        server_queue_limit=config.get("server_queue_limit") if pressure else None,
        shed_after=config.get("shed_after") if pressure else None,
        retry_policy=RetryPolicy(
            max_attempts=3, base_delay=0.2, multiplier=2.0, jitter=0.3,
            seed=spec["seed"],
        ),
        debug_unfenced_recovery=inject_bug,
    )


def _run_clean(
    spec: Spec, references: list[Reference]
) -> tuple[list[Violation], list]:
    """The fault-free WEBDIS control run — every query submitted together;
    returns (violations, handles).  Per-query exactness against the solo
    references is the cross-query isolation oracle on the clean path."""
    engine = WebDisEngine(
        build_web(spec),
        config=_engine_config(spec, inject_bug=False, pressure=False),
        trace=True,
    )
    handles = [engine.submit_disql(text) for text in query_texts(spec)]
    engine.run()
    violations = []
    for handle, reference in zip(handles, references):
        violations += check_clean(handle, reference)
    violations += check_run(engine, handles)
    return violations, handles


def _run_faulted(
    spec: Spec, references: list[Reference], clean_rows: dict, *, inject_bug: bool
) -> CaseResult:
    """The run under test: faults + schedule jitter + queue pressure +
    supervision, all queries interleaved."""
    plan = build_fault_plan(spec)
    engine = WebDisEngine(
        build_web(spec),
        # Pressure knobs only apply when faults actually install: a run the
        # oracle holds to clean exactness must not shed.
        config=_engine_config(spec, inject_bug=inject_bug, pressure=plan is not None),
        net_config=NetworkConfig(latency_overrides=latency_overrides(spec)),
        trace=True,
    )
    engine.clock.set_tie_breaker(spec.get("schedule_seed"))
    message_log: list[tuple] = []
    engine.network.add_tap(
        lambda time, src, dst, port, payload: message_log.append(
            (round(time, 9), src, dst, port, payload.kind)
        )
    )
    if plan is not None:
        engine.apply_faults(plan)
    supervisor = QuerySupervisor(engine.client, POLICY)
    handles = [engine.submit_disql(text) for text in query_texts(spec)]
    for handle in handles:
        supervisor.supervise(handle)
    engine.run()

    violations = check_run(engine, handles, references=clean_rows)
    for handle, reference in zip(handles, references):
        coverage = supervisor.coverage(handle)
        if plan is None:
            # Only the schedule differs from the control run: still clean,
            # so the oracle demands COMPLETE and exact equivalence.
            violations += check_clean(handle, reference)
        else:
            violations += check_faulted(handle, engine.tracer, reference, coverage)

    fingerprint = hashlib.sha256(
        repr(
            (
                tuple(
                    (
                        handle.status.value,
                        sorted(str((label, row.header, row.values))
                               for label, row, __ in handle.results),
                        handle.recovery_epoch,
                        round(handle.completion_time or -1.0, 9),
                    )
                    for handle in handles
                ),
                tuple(message_log),
            )
        ).encode()
    ).hexdigest()
    main = handles[0]
    return CaseResult(
        spec=spec,
        status=main.status.value,
        clean_status="",
        rows=len(main.results),
        recovery_epoch=main.recovery_epoch,
        violations=violations,
        fingerprint=fingerprint,
    )


def run_case_asyncio(
    spec: Spec, *, time_scale: float = 1.0, timeout: float = 120.0
) -> CaseResult:
    """Replay one spec's faulted run over real asyncio sockets.

    This is an *approximate* replay, by design: the spec's fault windows
    map onto the wall clock (scaled by ``time_scale`` wall-seconds per
    sim-second) through the in-path chaos proxy, and crash rules become
    real socket teardowns — but arrival order is whatever the kernel
    produces, so the question answered is "does the shrunk scenario still
    self-heal on real sockets", not "is the run bit-identical".
    Correspondingly the checks are the invariant battery plus terminal
    status (no fingerprint, no row-multiset reference — a different
    interleaving can legitimately change DUPLICATE/REWRITE multiplicities),
    and latency overrides (a simulator cost-model knob) are not applied.
    """
    return asyncio.run(_run_case_asyncio(spec, time_scale, timeout))


async def _run_case_asyncio(
    spec: Spec, time_scale: float, timeout: float
) -> CaseResult:
    from ..core.aio_engine import AsyncioWebDisEngine
    from ..net.chaos import ChaosRules

    plan = build_fault_plan(spec)
    config = dataclasses.replace(
        _engine_config(spec, inject_bug=False, pressure=plan is not None),
        transport="asyncio",
    )
    chaos = None if plan is None else ChaosRules.from_plan(plan, time_scale=time_scale)
    engine = AsyncioWebDisEngine(build_web(spec), config=config, trace=True, chaos=chaos)
    try:
        supervisor = QuerySupervisor(engine.client, POLICY)
        handles = [engine.submit_disql(text) for text in query_texts(spec)]
        for handle in handles:
            supervisor.supervise(handle)
        engine.apply_chaos_crashes()
        violations: list[Violation] = []
        try:
            await engine.run(handles, timeout=timeout)
        except SimulationError as exc:
            violations.append(Violation("terminal", str(handles[0].qid), str(exc)))
        violations += check_run(engine, handles)
    finally:
        await engine.aclose()
    main = handles[0]
    return CaseResult(
        spec=spec,
        status=main.status.value,
        clean_status="",
        rows=len(main.results),
        recovery_epoch=main.recovery_epoch,
        violations=violations,
        fingerprint="",
    )


def _references(spec: Spec) -> list[Reference]:
    """One solo reference per query of the spec, in submission order."""
    return [reference_run(spec, index) for index in range(len(query_texts(spec)))]


def run_case(spec: Spec, *, inject_bug: bool = False) -> CaseResult:
    """Run one spec end to end (references + clean control + faulted run)."""
    references = _references(spec)
    clean_violations, clean_handles = _run_clean(spec, references)
    clean_rows = {
        handle.qid.number: reference_rows(handle) for handle in clean_handles
    }
    result = _run_faulted(spec, references, clean_rows, inject_bug=inject_bug)
    result.clean_status = clean_handles[0].status.value
    result.violations = clean_violations + result.violations
    return result


def run_seed(
    seed: int,
    *,
    schedules: int = 2,
    inject_bug: bool = False,
    check_determinism: bool = True,
) -> SeedResult:
    """Run one seed: the reference and clean control once, then the run
    under test across ``schedules`` tie-break variants (the first is FIFO).

    ``check_determinism`` reruns the first variant and compares
    fingerprints — the "same seed ⇒ bit-identical" acceptance gate.
    """
    spec = generate_case(seed)
    references = _references(spec)
    clean_violations, clean_handles = _run_clean(spec, references)
    clean_rows = {
        handle.qid.number: reference_rows(handle) for handle in clean_handles
    }

    cases = []
    for variant in range(max(1, schedules)):
        variant_spec = dict(spec)
        variant_spec["schedule_seed"] = None if variant == 0 else seed * 1000 + variant
        case = _run_faulted(
            variant_spec, references, clean_rows, inject_bug=inject_bug
        )
        case.clean_status = clean_handles[0].status.value
        if variant == 0:
            case.violations = clean_violations + case.violations
        cases.append(case)

    deterministic = True
    if check_determinism and cases:
        rerun = _run_faulted(
            cases[0].spec, references, clean_rows, inject_bug=inject_bug
        )
        deterministic = rerun.fingerprint == cases[0].fingerprint
    return SeedResult(seed=seed, cases=cases, deterministic=deterministic)


def case_fails(spec: Spec, *, inject_bug: bool = False) -> bool:
    """Does ``spec`` still reproduce a failure?  (The shrinker's predicate.)

    Protocol-level exceptions (accounting divergence, runaway event loops)
    count as failures; anything else raised during setup means the
    candidate spec is malformed — e.g. the shrinker removed the start site
    — and must *not* count, or shrinking would chase setup artifacts.
    """
    try:
        return not run_case(spec, inject_bug=inject_bug).ok
    except (ProtocolError, SimulationError):
        return True
    except Exception:
        return False
