"""The DST oracle: a reference evaluation plus coverage-aware comparison.

The reference is the **data-shipping baseline** run fault-free on the same
web and query — an independent, centralized evaluator that shares the
traversal semantics but none of the distributed machinery (no CHT, no
clone forwarding, no report messages), so an agreement between the two is
evidence about the protocols, not a tautology.

Comparison rules:

* **Clean runs** (no faults, or a fault-free control run): the WEBDIS
  result set must equal the reference set exactly, and the query must be
  COMPLETE.
* **Faulted runs**: nothing beyond the reference may ever appear
  (*invented* rows are always a violation).  Missing rows are allowed only
  when *attributable*: the reference run records, per processed node,
  which rows it produced and which nodes it forwarded to
  (:class:`~repro.baselines.datashipping.JournalEntry`).  The faulted
  run's write-off points — abandoned dispatches in the
  :class:`~repro.core.supervisor.CoverageReport` plus unreachable-site
  retractions in the trace — are closed under the reference's forward
  edges, and a missing row is attributable iff **every** node that
  produced it in the reference lies inside that lost closure.  A missing
  row with a surviving producer means the protocol lost data it had no
  excuse to lose.

Nodes are keyed by URL string (fragments stripped) rather than by
``(node, state)``: the distributed and centralized traversals can attach
different (rewritten) states to the same node, and coverage is about
*where* processing happened.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.datashipping import DataShippingEngine
from ..core.client import QueryHandle, QueryStatus
from .generators import Spec, build_web, query_texts
from .invariants import Violation

__all__ = ["Reference", "reference_run", "check_clean", "check_faulted"]

#: Trace actions marking a node written off by a failed (re-)dispatch or
#: shed by a saturated server (``overload-shed`` — load shedding retracts
#: the node's pending clone, so its subtree is an attributable hole).
_WRITE_OFF_ACTIONS = frozenset(
    {
        "unreachable-start",
        "unreachable-reforward",
        "unreachable-site",
        "overload-shed",
    }
)

RowKey = tuple[str, tuple[str, ...], tuple[object, ...]]


def _norm(node: str) -> str:
    """Node key: the URL without its fragment."""
    return node.split("#", 1)[0]


@dataclass(frozen=True)
class Reference:
    """What the fault-free centralized run computed, with provenance."""

    #: Distinct result rows (label, header, values).
    unique: frozenset[RowKey]
    #: Per-row producers: which processed nodes emitted the row.
    producers: dict[RowKey, frozenset[str]]
    #: Forward edges of the traversal (node -> nodes it forwarded to).
    forwards: dict[str, tuple[str, ...]]


def reference_run(spec: Spec, index: int = 0) -> Reference:
    """Evaluate one of the spec's queries centrally, fault-free, with
    provenance.  ``index`` selects the query (0 = the main query; extras
    follow in submission order) — each query gets its own *solo* reference,
    which is what makes the multi-query comparison an isolation oracle:
    an interleaved run must match what every query computes alone.
    """
    engine = DataShippingEngine(build_web(spec), record_journal=True)
    result = engine.run_query(query_texts(spec)[index])
    assert result.completion_time is not None, "reference run did not quiesce"
    producers: dict[RowKey, set[str]] = {}
    forwards: dict[str, tuple[str, ...]] = {}
    for entry in engine.journal:
        node = _norm(entry.node)
        for key in entry.rows:
            producers.setdefault(key, set()).add(node)
        existing = forwards.get(node, ())
        forwards[node] = existing + tuple(_norm(t) for t in entry.forwards)
    return Reference(
        unique=frozenset(producers),
        producers={key: frozenset(nodes) for key, nodes in producers.items()},
        forwards=forwards,
    )


def observed_rows(handle: QueryHandle) -> frozenset[RowKey]:
    """The distinct rows a WEBDIS handle collected."""
    return frozenset(
        (label, row.header, row.values) for label, row, __ in handle.results
    )


def check_clean(handle: QueryHandle, reference: Reference) -> list[Violation]:
    """Fault-free equivalence: COMPLETE and exactly the reference set."""
    qid = str(handle.qid)
    violations = []
    if handle.status is not QueryStatus.COMPLETE:
        violations.append(
            Violation(
                "clean-complete", qid,
                f"fault-free run finished {handle.status.value}"
                + (f" ({handle.partial_reason})" if handle.partial_reason else ""),
            )
        )
    observed = observed_rows(handle)
    missing = reference.unique - observed
    invented = observed - reference.unique
    if missing:
        sample = sorted(str(key) for key in missing)[0]
        violations.append(
            Violation(
                "oracle-exact", qid,
                f"clean run missing {len(missing)} reference row(s), e.g. {sample}",
            )
        )
    if invented:
        sample = sorted(str(key) for key in invented)[0]
        violations.append(
            Violation(
                "oracle-exact", qid,
                f"clean run invented {len(invented)} row(s), e.g. {sample}",
            )
        )
    return violations


def _lost_closure(write_offs: set[str], reference: Reference) -> set[str]:
    """Write-off nodes closed under the reference's forward edges."""
    lost = set()
    stack = [node for node in write_offs]
    while stack:
        node = stack.pop()
        if node in lost:
            continue
        lost.add(node)
        stack.extend(reference.forwards.get(node, ()))
    return lost


def write_off_nodes(handle: QueryHandle, tracer, coverage=None) -> set[str]:
    """Nodes the faulted run demonstrably gave up on.

    Abandoned dispatch instances (recovery escalation) plus every node a
    failed dispatch retracted — ``unreachable-start`` (initial clone),
    ``unreachable-reforward`` (recovery re-dispatch) and
    ``unreachable-site`` (server-side forward failure) — plus the nodes a
    saturated server shed (``overload-shed`` retractions / the handle's
    ``shed_nodes``).
    """
    nodes = {_norm(str(inst.node)) for inst in handle.cht.abandoned_instances()}
    nodes.update(_norm(str(node)) for node in getattr(handle, "shed_nodes", ()))
    if coverage is not None:
        nodes.update(_norm(str(dispatch.node)) for dispatch in coverage.abandoned)
        nodes.update(_norm(str(node)) for node in coverage.shed_nodes)
    if tracer is not None and getattr(tracer, "enabled", False):
        for event in tracer.events:
            if event.action in _WRITE_OFF_ACTIONS:
                nodes.add(_norm(event.node))
    return nodes


def check_faulted(
    handle: QueryHandle,
    tracer,
    reference: Reference,
    coverage=None,
) -> list[Violation]:
    """Coverage-consistent subset check for a faulted run (see module doc)."""
    qid = str(handle.qid)
    violations = []
    observed = observed_rows(handle)
    invented = observed - reference.unique
    if invented:
        sample = sorted(str(key) for key in invented)[0]
        violations.append(
            Violation(
                "oracle-invented", qid,
                f"{len(invented)} row(s) beyond the reference, e.g. {sample}",
            )
        )
    missing = reference.unique - observed
    if not missing:
        return violations
    lost = _lost_closure(write_off_nodes(handle, tracer, coverage), reference)
    for key in sorted(missing, key=str):
        producers = reference.producers.get(key, frozenset())
        if producers and producers <= lost:
            continue  # attributable: every producer is in the lost closure
        survivors = sorted(producers - lost)
        violations.append(
            Violation(
                "oracle-partial", qid,
                f"missing row {key[0]}={key[2]} not attributable to any "
                f"write-off: producer(s) {survivors or list(producers)} "
                "were never abandoned or retracted",
            )
        )
    return violations
