"""Seeded generators for DST cases: webs, queries, fault schedules.

A *case* is one fully-specified simulation scenario, serialized as a plain
JSON-able dict so a failing case can be written to disk, shrunk and
replayed bit-identically (``tools/dst.py replay``).  The spec carries:

``web``
    A synthetic multi-site web (built through
    :class:`~repro.web.builders.WebBuilder`): sites, pages, titles,
    paragraphs, links (local, global and interior) and emphasized segments
    that give ``relinfon`` rows something to match.

``query``
    A well-formed DISQL web-query: a start URL on the first site, a PRE
    as a small JSON tree (rendered through the real
    :mod:`repro.pre.ast` constructors, so the text the DISQL parser sees
    is exactly what the engine's printer produces), and optionally a
    ``relinfon`` join with a ``contains`` predicate.

``faults``
    A list of fault events instantiated as a seeded
    :class:`~repro.net.faults.FaultPlan` — crashes (with/without restart),
    user-to-group partitions, flaky edge windows and background drop
    probability.  Roughly a quarter of generated cases are fault-free
    (the oracle then demands exact equivalence).

``latency`` / ``schedule_seed`` / ``config``
    Directed slow edges (message reordering), the
    :meth:`~repro.net.simclock.SimClock.set_tie_breaker` seed for schedule
    exploration, and the engine ablation knobs the case runs under.

Everything is a pure function of the seed: ``generate_case(s)`` returns
the same spec forever, which is what makes the corpus a regression suite.
"""

from __future__ import annotations

import random
from typing import Any

from ..model.relations import LinkType
from ..net.faults import FaultPlan
from ..pre.ast import EMPTY, Atom, Pre, alt, concat, repeat
from ..web.builders import WebBuilder
from ..web.web import Web

__all__ = [
    "generate_case",
    "build_web",
    "query_text",
    "query_specs",
    "query_texts",
    "build_fault_plan",
    "latency_overrides",
    "pre_from_tree",
]

#: Small closed vocabulary — keeps ``contains`` predicates hitting often.
WORDS = (
    "alpha", "beta", "gamma", "delta", "omega", "sigma",
    "answer", "query", "index", "archive", "report", "lab",
)
DELIMITERS = ("b", "i")

Spec = dict[str, Any]


# -- PRE trees -----------------------------------------------------------------
#
# JSON form: "L"/"G"/"I"/"N" for atoms, {"cat": [...]}, {"alt": [...]},
# {"rep": tree, "bound": int|None}.


def pre_from_tree(tree: Any) -> Pre:
    """Instantiate a JSON PRE tree through the real smart constructors."""
    if isinstance(tree, str):
        return EMPTY if tree == "N" else Atom(LinkType(tree))
    if "cat" in tree:
        return concat(pre_from_tree(part) for part in tree["cat"])
    if "alt" in tree:
        return alt(pre_from_tree(option) for option in tree["alt"])
    return repeat(pre_from_tree(tree["rep"]), tree["bound"])


def _gen_pre_tree(rng: random.Random, depth: int) -> Any:
    """A random PRE tree: atoms weighted toward L/G, bounded depth."""
    if depth <= 0 or rng.random() < 0.45:
        return rng.choice(("L", "L", "G", "G", "I", "N"))
    shape = rng.random()
    if shape < 0.4:
        return {"cat": [_gen_pre_tree(rng, depth - 1) for __ in range(2)]}
    if shape < 0.7:
        return {"alt": [_gen_pre_tree(rng, depth - 1) for __ in range(2)]}
    bound = None if rng.random() < 0.25 else rng.randint(1, 3)
    return {"rep": _gen_pre_tree(rng, depth - 1), "bound": bound}


# -- case generation -----------------------------------------------------------


def generate_case(seed: int, schedule_seed: int | None = None) -> Spec:
    """The deterministic case spec for ``seed`` (see module doc)."""
    rng = random.Random(f"dst-case:{seed}")
    sites = _gen_web(rng)
    site_names = [site["name"] for site in sites]

    # Most PREs should actually reach a useful fraction of the web —
    # all-random trees too often die at the start node, leaving the oracle
    # nothing to check — so bias toward reachy shapes.
    shape = rng.random()
    if shape < 0.35:
        pre_tree: Any = {"rep": {"alt": ["L", "G"]}, "bound": rng.choice((2, 3, None))}
    elif shape < 0.6:
        pre_tree = {
            "cat": ["G", {"rep": rng.choice(("L", {"alt": ["L", "G"]})),
                          "bound": rng.randint(1, 3)}]
        }
    else:
        pre_tree = _gen_pre_tree(rng, depth=3)

    # Pick the contains-word from a segment that actually exists, usually.
    segments = [
        (em[0], word)
        for site in sites
        for page in site["pages"]
        for em in page["emphasized"]
        for word in em[1].split()
    ]
    if segments and rng.random() < 0.8:
        delimiter, contains = rng.choice(segments)
    else:
        delimiter, contains = rng.choice(DELIMITERS), rng.choice(WORDS)
    query = {
        "start": f"http://{site_names[0]}/",
        "pre": pre_tree,
        "relinfon": rng.random() < 0.6,
        "delimiter": delimiter,
        "contains": contains,
    }

    faults = _gen_faults(rng, site_names)

    latency: list[list[Any]] = []
    for __ in range(rng.choice((0, 0, 0, 1, 1, 2))):
        src = rng.choice(site_names)
        latency.append([src, "user.example", round(rng.uniform(1.0, 3.0), 3)])

    # Newer knobs are drawn *last* (in introduction order) so adding each
    # left every earlier draw — and therefore every existing seed's
    # web/query/faults — intact.
    config = {
        "log_subsumption": "language" if rng.random() < 0.2 else "paper",
        "batch_per_site": rng.random() < 0.75,
        "compiled_plans": rng.random() < 0.5,
        "frontier_batching": rng.random() < 0.5,
    }
    config["scheduler"] = "fifo" if rng.random() < 0.25 else "fair"
    config["pump_budget"] = rng.choice((None, None, None, 2, 4, 8))

    # Extra tenants: 0–2 more queries on the same web, so fair scheduling
    # and the cross-query isolation oracle see real interleavings.  Drawn
    # after every single-query knob (ordering rule above).
    queries: list[dict] = []
    for __ in range(rng.choice((0, 1, 1, 2))):
        start_site = rng.choice(site_names)
        if rng.random() < 0.5:
            extra_tree: Any = {
                "rep": {"alt": ["L", "G"]}, "bound": rng.choice((1, 2, 3))
            }
        else:
            extra_tree = _gen_pre_tree(rng, depth=2)
        if segments and rng.random() < 0.8:
            extra_delimiter, extra_contains = rng.choice(segments)
        else:
            extra_delimiter = rng.choice(DELIMITERS)
            extra_contains = rng.choice(WORDS)
        queries.append(
            {
                "start": f"http://{start_site}/",
                "pre": extra_tree,
                "relinfon": rng.random() < 0.5,
                "delimiter": extra_delimiter,
                "contains": extra_contains,
            }
        )

    # Overload-pressure knobs only on faulted cases: a clean case must
    # finish COMPLETE with the exact reference rows, which admission
    # refusals and load shedding would (by design) break.
    if faults:
        if rng.random() < 0.25:
            config["per_query_queue_limit"] = rng.choice((8, 12, 16))
        if rng.random() < 0.2:
            config["server_queue_limit"] = rng.choice((16, 24, 32))
            config["shed_after"] = round(rng.uniform(0.5, 2.0), 3)

    # Cross-query caching (EXP-P4) — drawn after every earlier knob
    # (ordering rule above), so existing seeds keep their webs, queries,
    # faults and pressure draws byte-for-byte.
    config["cross_query_caching"] = rng.random() < 0.5

    # Node-query executor (EXP-P5) — drawn after every earlier knob
    # (ordering rule above).  Either executor must produce the same rows,
    # statuses and log-table end states; the sweep proves it per case.
    config["executor"] = "columnar" if rng.random() < 0.5 else "row"

    # Join-depth axis (EXP-P6) — newest draw, appended last (ordering rule
    # above).  An anchor alias joined on a shared variable
    # (``a.base = d.url``) deepens the main node-query by one plan level —
    # three levels when the relinfon join is also on — so the batch
    # pipeline's hash-probe expansion and the row executor are
    # cross-checked on multi-level joins per case, not just in the
    # hypothesis suite.
    query["anchor"] = rng.random() < 0.35

    return {
        "seed": seed,
        "web": {"sites": sites},
        "query": query,
        "queries": queries,
        "faults": faults,
        "latency": latency,
        "schedule_seed": schedule_seed,
        "config": config,
    }


def _gen_web(rng: random.Random) -> list[dict]:
    n_sites = rng.randint(2, 6)
    names = [f"s{i}.example" for i in range(n_sites)]
    sites = []
    for i, name in enumerate(names):
        n_pages = rng.randint(1, 4)
        paths = ["/"] + [f"/p{j}.html" for j in range(1, n_pages)]
        pages = []
        for path in paths:
            links: list[list[str]] = []
            local_targets = [p for p in paths if p != path]
            for __ in range(rng.randint(2, 5)):
                kind = rng.random()
                if kind < 0.35 and local_targets:  # local link to a real page
                    links.append([rng.choice(WORDS), rng.choice(local_targets)])
                elif kind < 0.45:  # dangling local link (404 coverage)
                    links.append([rng.choice(WORDS), f"/p{rng.randint(5, 9)}.html"])
                elif kind < 0.9:  # global link, usually to a root page
                    other = rng.choice([n for n in names if n != name] or names)
                    target_path = "/" if rng.random() < 0.7 else f"/p{rng.randint(1, 3)}.html"
                    links.append([rng.choice(WORDS), f"http://{other}{target_path}"])
                else:  # interior link (same document, fragment only)
                    links.append([rng.choice(WORDS), f"{path}#sec{rng.randint(1, 3)}"])
            emphasized = [
                [rng.choice(DELIMITERS), f"{rng.choice(WORDS)} {rng.choice(WORDS)}"]
                for __ in range(rng.randint(0, 3))
            ]
            paragraphs = [
                f"{rng.choice(WORDS)} {rng.choice(WORDS)} {rng.choice(WORDS)}"
                for __ in range(rng.randint(0, 2))
            ]
            pages.append(
                {
                    "path": path,
                    "title": f"{rng.choice(WORDS)} {i}{path}",
                    "links": links,
                    "emphasized": emphasized,
                    "paragraphs": paragraphs,
                }
            )
        sites.append({"name": name, "pages": pages})
    return sites


def _gen_faults(rng: random.Random, site_names: list[str]) -> list[dict]:
    if rng.random() < 0.25:
        return []  # clean case: the oracle demands exact equivalence
    events: list[dict] = []
    for __ in range(rng.randint(1, 4)):
        kind = rng.random()
        if kind < 0.35:
            at = round(rng.uniform(0.1, 3.0), 3)
            restart_at = (
                round(at + rng.uniform(0.5, 3.0), 3) if rng.random() < 0.8 else None
            )
            events.append(
                {
                    "kind": "crash",
                    "site": rng.choice(site_names),
                    "at": at,
                    "restart_at": restart_at,
                }
            )
        elif kind < 0.6:
            group = rng.sample(site_names, k=rng.randint(1, min(2, len(site_names))))
            start = round(rng.uniform(0.1, 2.0), 3)
            events.append(
                {
                    "kind": "partition",
                    "a": ["user.example"],
                    "b": group,
                    "start": start,
                    "end": round(start + rng.uniform(0.5, 2.5), 3),
                }
            )
        elif kind < 0.85:
            start = round(rng.uniform(0.1, 2.5), 3)
            events.append(
                {
                    "kind": "flaky",
                    "src": rng.choice(site_names + ["user.example"]),
                    "dst": rng.choice(site_names),
                    "start": start,
                    "end": round(start + rng.uniform(0.3, 1.5), 3),
                }
            )
        else:
            events.append(
                {
                    "kind": "drop",
                    "p": round(rng.uniform(0.02, 0.25), 3),
                    "end": round(rng.uniform(2.0, 5.0), 3),
                }
            )
    return events


# -- spec instantiation --------------------------------------------------------


def build_web(spec: Spec) -> Web:
    """Materialize the spec's web through :class:`WebBuilder`."""
    builder = WebBuilder()
    for site in spec["web"]["sites"]:
        site_builder = builder.site(site["name"])
        for page in site["pages"]:
            site_builder.page(
                page["path"],
                title=page["title"],
                paragraphs=page.get("paragraphs", ()),
                links=[tuple(link) for link in page.get("links", ())],
                emphasized=[tuple(em) for em in page.get("emphasized", ())],
            )
    return builder.build()


def _render_query(query: dict) -> str:
    """Render one query dict as DISQL text.

    Composed from declaration / select / where fragments so the optional
    axes stack: ``relinfon`` adds the delimiter-keyed join, ``anchor``
    (absent in older repro files — ``.get`` keeps them byte-identical)
    adds an anchor alias equality-joined on the shared ``d.url`` variable.
    With both on, the node-query is a three-level join.
    """
    pre = pre_from_tree(query["pre"])
    decls = [f'document d such that "{query["start"]}" {pre} d']
    if query["relinfon"]:
        select = ["d.url", "r.text"]
        decls.append(f'relinfon r such that r.delimiter = "{query["delimiter"]}"')
        where = [f'r.text contains "{query["contains"]}"']
    else:
        select = ["d.url", "d.title"]
        where = []
    if query.get("anchor"):
        select.append("a.href")
        decls.append("anchor a such that a.base = d.url")
        where.append("a.href != a.base")
    text = "select " + ", ".join(select) + "\nfrom " + ",\n     ".join(decls)
    if where:
        text += "\nwhere " + " and ".join(where)
    return text


def query_specs(spec: Spec) -> list[dict]:
    """All of the spec's query dicts: the main query, then the extra
    tenants (``queries`` is absent in pre-multi-tenant repro files)."""
    return [spec["query"], *spec.get("queries", ())]


def query_text(spec: Spec) -> str:
    """Render the spec's main query as DISQL text."""
    return _render_query(spec["query"])


def query_texts(spec: Spec) -> list[str]:
    """Render every query of the spec, in submission order (the main query
    first — so index ``i`` here matches ``qid.number`` order at runtime)."""
    return [_render_query(query) for query in query_specs(spec)]


def build_fault_plan(spec: Spec) -> FaultPlan | None:
    """The spec's fault schedule as a seeded plan, or None when clean.

    Events referencing sites that no longer exist in the spec's web (the
    shrinker removes sites) are skipped rather than crashing the setup —
    a shrunk case must fail on the *protocol*, not on a dangling name.
    """
    known = {site["name"] for site in spec["web"]["sites"]} | {"user.example"}
    plan = FaultPlan(seed=spec["seed"])
    installed = 0
    for event in spec["faults"]:
        kind = event["kind"]
        if kind == "crash":
            if event["site"] not in known:
                continue
            plan.crash(event["site"], at=event["at"], restart_at=event["restart_at"])
        elif kind == "partition":
            group_a = [s for s in event["a"] if s in known]
            group_b = [s for s in event["b"] if s in known]
            if not group_a or not group_b:
                continue
            plan.partition(group_a, group_b, start=event["start"], end=event["end"])
        elif kind == "flaky":
            if event["src"] not in known or event["dst"] not in known:
                continue
            plan.flaky(event["src"], event["dst"], start=event["start"], end=event["end"])
        elif kind == "drop":
            plan.drop(event["p"], end=event["end"])
        else:
            raise ValueError(f"unknown fault kind {kind!r}")
        installed += 1
    return plan if installed else None


def latency_overrides(spec: Spec) -> dict[tuple[str, str], float] | None:
    """The spec's directed slow edges, keyed for :class:`NetworkConfig`."""
    known = {site["name"] for site in spec["web"]["sites"]} | {"user.example"}
    overrides = {
        (src, dst): delay
        for src, dst, delay in spec.get("latency", ())
        if src in known and dst in known
    }
    return overrides or None
