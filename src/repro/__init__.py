"""WEBDIS — distributed query processing on the Web.

A faithful, fully self-contained reproduction of *"Distributed Query
Processing on the Web"* (Gupta, Haritsa, Ramanath; ICDE 2000): a
query-shipping engine in which DISQL web-queries migrate from site to site
over a simulated Web, with exact completion detection (the CHT protocol),
passive termination, and duplicate-suppression via per-site node-query log
tables.

Quick start::

    from repro import WebDisEngine
    from repro.web import build_campus_web
    from repro.web.campus import CAMPUS_QUERY_DISQL

    engine = WebDisEngine(build_campus_web())
    handle = engine.run_query(CAMPUS_QUERY_DISQL)
    print(handle.display_table())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .core.config import EngineConfig
from .core.client import QueryHandle, QueryStatus
from .core.engine import WebDisEngine, build_engine
from .core.supervisor import CoverageReport, QuerySupervisor, RecoveryPolicy
from .core.webquery import QueryClone, QueryId, WebQuery, WebQueryStep
from .disql import compile_disql, format_disql, parse_disql
from .errors import WebDisError
from .net.faults import FaultPlan
from .net.network import NetworkConfig, SendOutcome
from .net.reliable import RetryPolicy
from .pre import parse_pre
from .web import Web, WebBuilder, build_campus_web, build_synthetic_web

__version__ = "1.0.0"

__all__ = [
    "CoverageReport",
    "EngineConfig",
    "FaultPlan",
    "NetworkConfig",
    "QueryClone",
    "QueryHandle",
    "QueryId",
    "QueryStatus",
    "QuerySupervisor",
    "RecoveryPolicy",
    "RetryPolicy",
    "SendOutcome",
    "Web",
    "WebBuilder",
    "WebDisEngine",
    "WebDisError",
    "WebQuery",
    "WebQueryStep",
    "__version__",
    "build_campus_web",
    "build_engine",
    "build_synthetic_web",
    "compile_disql",
    "format_disql",
    "parse_disql",
    "parse_pre",
]
