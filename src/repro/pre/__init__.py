"""Path Regular Expressions (PREs).

PREs describe traversal paths on the Web graph (paper Section 2).  They are
built from the link symbols ``I`` (interior), ``L`` (local), ``G`` (global)
and ``N`` (null — the zero-length path) with concatenation (``·`` or ``.``),
alternation (``|``) and bounded/unbounded repetition (``L*4`` means zero to
four local links, ``L*`` zero or more).

The paper manipulates PREs in three ways; this package formalizes each:

* "modify the PRE to reflect the traversal of the next link" —
  :func:`~repro.pre.ops.advance`, a Brzozowski-style derivative;
* "the PRE contains a null link" (evaluate the node-query here) —
  :func:`~repro.pre.ops.nullable`;
* the log-table ``A*m·B`` subsumption and multi-rewrite of Section 3.1 —
  :func:`~repro.pre.ops.compare_for_log` / :func:`~repro.pre.ops.rewrite_superset`.
"""

from .ast import Alt, Atom, Concat, Empty, Never, Pre, Repeat, UNBOUNDED, alt, concat, repeat
from .ops import (
    LogComparison,
    accepts,
    advance,
    compare_for_log,
    decompose_repeat_head,
    enumerate_paths,
    first_symbols,
    nullable,
    pre_size,
    rewrite_superset,
)
from .optimize import optimize_pre
from .parser import parse_pre

__all__ = [
    "Alt",
    "Atom",
    "Concat",
    "Empty",
    "LogComparison",
    "Never",
    "Pre",
    "Repeat",
    "UNBOUNDED",
    "accepts",
    "advance",
    "alt",
    "compare_for_log",
    "concat",
    "decompose_repeat_head",
    "enumerate_paths",
    "first_symbols",
    "nullable",
    "optimize_pre",
    "parse_pre",
    "pre_size",
    "repeat",
    "rewrite_superset",
]
