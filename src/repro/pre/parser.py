"""PRE concrete syntax.

Grammar (whitespace-insensitive)::

    pre     := alt
    alt     := cat ('|' cat)*
    cat     := rep (('.' | '·') rep)*
    rep     := primary ('*' bound?)*
    primary := 'I' | 'L' | 'G' | 'N' | '(' alt ')'
    bound   := decimal integer >= 1

This matches the paper's notation: ``N | G.(L*4)``, ``G.(G|L)``, ``L*``.
Link symbols are case-insensitive.  ``N`` denotes the zero-length path.
"""

from __future__ import annotations

from ..errors import PreSyntaxError
from ..model.relations import LinkType
from .ast import EMPTY, Atom, Pre, alt, concat, repeat

__all__ = ["parse_pre"]

_CONCAT_CHARS = {".", "·"}  # '.' and the paper's '·'
_LINK_SYMBOLS = {"I", "L", "G", "N"}


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def parse(self) -> Pre:
        result = self._alt()
        self._skip_ws()
        if self.pos != len(self.text):
            raise PreSyntaxError(
                f"unexpected {self.text[self.pos]!r} at offset {self.pos} in PRE {self.text!r}"
            )
        return result

    def _alt(self) -> Pre:
        options = [self._cat()]
        while self._peek() == "|":
            self.pos += 1
            options.append(self._cat())
        return alt(options)

    def _cat(self) -> Pre:
        parts = [self._rep()]
        while True:
            ch = self._peek()
            if ch in _CONCAT_CHARS:
                self.pos += 1
                parts.append(self._rep())
            elif ch is not None and (ch.upper() in _LINK_SYMBOLS or ch == "("):
                # Juxtaposition concatenation: "GL" == "G.L".
                parts.append(self._rep())
            else:
                return concat(parts)

    def _rep(self) -> Pre:
        result = self._primary()
        while self._peek() == "*":
            self.pos += 1
            bound = self._bound()
            result = repeat(result, bound)
        return result

    def _primary(self) -> Pre:
        ch = self._peek()
        if ch is None:
            raise PreSyntaxError(f"PRE {self.text!r} ended unexpectedly")
        if ch == "(":
            self.pos += 1
            inner = self._alt()
            if self._peek() != ")":
                raise PreSyntaxError(f"missing ')' at offset {self.pos} in PRE {self.text!r}")
            self.pos += 1
            return inner
        upper = ch.upper()
        if upper in _LINK_SYMBOLS:
            self.pos += 1
            if upper == "N":
                return EMPTY
            return Atom(LinkType.from_symbol(upper))
        raise PreSyntaxError(
            f"expected link symbol or '(' at offset {self.pos} in PRE {self.text!r}, got {ch!r}"
        )

    def _bound(self) -> int | None:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        if self.pos == start:
            return None
        bound = int(self.text[start : self.pos])
        if bound < 1:
            raise PreSyntaxError(f"repetition bound must be >= 1 in PRE {self.text!r}")
        return bound

    def _peek(self) -> str | None:
        self._skip_ws()
        if self.pos >= len(self.text):
            return None
        return self.text[self.pos]

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1


def parse_pre(text: str) -> Pre:
    """Parse PRE syntax into an AST.

    Raises:
        PreSyntaxError: on malformed input (including the empty string).
    """
    if not text or not text.strip():
        raise PreSyntaxError("empty PRE")
    return _Parser(text).parse()
