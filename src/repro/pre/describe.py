"""Plain-English descriptions of PREs.

``describe_pre`` renders a PRE the way the paper narrates them — e.g.
``G.(L*1)`` becomes *"a global link, then up to 1 local link"* — used by
the explain facility and the CLI so non-experts can read shipped queries.
"""

from __future__ import annotations

from ..model.relations import LinkType
from .ast import Alt, Atom, Concat, Empty, Never, Pre, Repeat

__all__ = ["describe_pre"]

_LINK_NAMES = {
    LinkType.INTERIOR: "interior link",
    LinkType.LOCAL: "local link",
    LinkType.GLOBAL: "global link",
}


def describe_pre(pre: Pre) -> str:
    """A human-readable description of the paths ``pre`` matches."""
    return _describe(pre, top=True)


def _describe(pre: Pre, top: bool = False) -> str:
    if isinstance(pre, Empty):
        return "the document itself" if top else "nothing"
    if isinstance(pre, Never):
        return "no path at all"
    if isinstance(pre, Atom):
        return f"a {_LINK_NAMES[pre.ltype]}"
    if isinstance(pre, Concat):
        return ", then ".join(_describe(part) for part in pre.parts)
    if isinstance(pre, Alt):
        options = [_describe(option, top) for option in pre.options]
        if len(options) == 2:
            return f"either {options[0]} or {options[1]}"
        return "one of: " + "; ".join(options)
    if isinstance(pre, Repeat):
        body = _plural_body(pre.body)
        if pre.bound is None:
            return f"any number of {body}"
        if pre.bound == 1:
            return f"up to 1 {_singular_body(pre.body)}"
        return f"up to {pre.bound} {body}"
    return str(pre)


def _singular_body(body: Pre) -> str:
    if isinstance(body, Atom):
        return _LINK_NAMES[body.ltype]
    return f"repetition of ({_describe(body)})"


def _plural_body(body: Pre) -> str:
    if isinstance(body, Atom):
        return _LINK_NAMES[body.ltype] + "s"
    return f"repetitions of ({_describe(body)})"
