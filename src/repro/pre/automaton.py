"""Finite automata over PREs: DFA construction and language containment.

The alphabet is tiny ({I, L, G}) and :func:`~repro.pre.ops.advance` is a
Brzozowski derivative, so the set of derivatives of a PRE — taken modulo the
smart-constructor simplifications — is a deterministic automaton whose
states *are* PREs.  That gives us:

* :func:`to_dfa` — the reachable derivative automaton;
* :func:`language_subsumes` — exact ``L(sub) ⊆ L(sup)`` via a product-state
  search (a state pair with ``sub`` accepting but ``sup`` not is a
  counterexample);
* :func:`language_equivalent` — mutual containment.

These power the generalized log-table subsumption mode
(``EngineConfig.log_subsumption="language"``): the paper's Section 3.1.1
only recognizes duplicates of the syntactic ``A*m·B`` shape, so a rewritten
clone ``L·L*2·B`` arriving where ``L*4·B`` is already logged gets
reprocessed; exact containment catches it.

Brzozowski derivatives are guaranteed finite only modulo the full
associativity/commutativity/idempotence laws; our simplifier applies a
subset, so all searches carry a state cap and raise
:class:`AutomatonLimitError` past it (never hit by realistic PREs).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import WebDisError
from ..model.relations import LinkType
from .ast import Never, Pre
from .ops import advance, nullable

__all__ = [
    "ALPHABET",
    "AutomatonLimitError",
    "Dfa",
    "to_dfa",
    "language_subsumes",
    "language_equivalent",
    "is_empty_language",
]

#: The traversal alphabet (``N`` is the empty path, not a symbol).
ALPHABET = (LinkType.INTERIOR, LinkType.LOCAL, LinkType.GLOBAL)

_DEFAULT_STATE_CAP = 10_000


class AutomatonLimitError(WebDisError):
    """The derivative state space exceeded the safety cap."""


@dataclass(frozen=True, slots=True)
class Dfa:
    """A deterministic automaton whose states are PRE derivatives.

    ``transitions[state][symbol]`` is always present (the ``Never`` state is
    the explicit dead state).  ``accepting`` holds the nullable states.
    """

    start: Pre
    states: tuple[Pre, ...]
    transitions: dict[Pre, dict[LinkType, Pre]]
    accepting: frozenset[Pre]

    def accepts(self, path: tuple[LinkType, ...] | list[LinkType]) -> bool:
        state = self.start
        for symbol in path:
            state = self.transitions[state][symbol]
        return state in self.accepting

    @property
    def state_count(self) -> int:
        return len(self.states)

    def live_states(self) -> frozenset[Pre]:
        """States from which some accepting state is reachable."""
        inverse: dict[Pre, set[Pre]] = {state: set() for state in self.states}
        for src, row in self.transitions.items():
            for dst in row.values():
                inverse[dst].add(src)
        frontier = deque(self.accepting)
        live = set(self.accepting)
        while frontier:
            state = frontier.popleft()
            for pred in inverse[state]:
                if pred not in live:
                    live.add(pred)
                    frontier.append(pred)
        return frozenset(live)


def to_dfa(pre: Pre, state_cap: int = _DEFAULT_STATE_CAP) -> Dfa:
    """Build the reachable derivative automaton of ``pre``."""
    transitions: dict[Pre, dict[LinkType, Pre]] = {}
    order: list[Pre] = []
    frontier = deque([pre])
    seen = {pre}
    while frontier:
        state = frontier.popleft()
        order.append(state)
        row: dict[LinkType, Pre] = {}
        for symbol in ALPHABET:
            nxt = advance(state, symbol)
            row[symbol] = nxt
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
                if len(seen) > state_cap:
                    raise AutomatonLimitError(
                        f"PRE automaton exceeded {state_cap} states"
                    )
        transitions[state] = row
    accepting = frozenset(state for state in seen if nullable(state))
    # Ensure every reached state has a transition row (dead state included).
    for state in seen:
        if state not in transitions:
            transitions[state] = {symbol: advance(state, symbol) for symbol in ALPHABET}
    return Dfa(pre, tuple(order), transitions, accepting)


def language_subsumes(sup: Pre, sub: Pre, state_cap: int = _DEFAULT_STATE_CAP) -> bool:
    """Exact decision of ``L(sub) ⊆ L(sup)``.

    Product-construction search for a reachable pair where ``sub`` accepts
    and ``sup`` does not.
    """
    start = (sub, sup)
    seen = {start}
    frontier = deque([start])
    while frontier:
        sub_state, sup_state = frontier.popleft()
        if nullable(sub_state) and not nullable(sup_state):
            return False
        if isinstance(sub_state, Never):
            continue  # nothing more of sub's language down this branch
        for symbol in ALPHABET:
            nxt = (advance(sub_state, symbol), advance(sup_state, symbol))
            if isinstance(nxt[0], Never):
                continue
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
                if len(seen) > state_cap:
                    raise AutomatonLimitError(
                        f"containment search exceeded {state_cap} state pairs"
                    )
    return True


def language_equivalent(a: Pre, b: Pre, state_cap: int = _DEFAULT_STATE_CAP) -> bool:
    """Exact language equality."""
    return language_subsumes(a, b, state_cap) and language_subsumes(b, a, state_cap)


def is_empty_language(pre: Pre, state_cap: int = _DEFAULT_STATE_CAP) -> bool:
    """True when ``pre`` matches no path at all."""
    return pre not in to_dfa(pre, state_cap).live_states()
