"""Language-preserving PRE simplification.

User-written PREs often carry redundancy — `N | L*` (the `N` is implied),
`G | (G|L)` (the first branch is subsumed), `(L*2)*3` (nested bounds).
Since clones ship the remaining PRE on every hop and the log table compares
PREs structurally, simplifying before shipping both shrinks messages and
makes duplicate detection more effective.

Every rule preserves the path language exactly (property-tested against
:func:`~repro.pre.automaton.language_equivalent`):

* alternation absorption — drop options whose language is contained in a
  sibling's;
* nested repetition collapse — ``(A*m)*n ≡ A*(m·n)``, with ``∞`` absorbing;
* ε-stripping inside repetition — ``(N|A)*k ≡ A*k`` (each iteration may
  already contribute nothing);
* and the constructor-level unit/absorption laws from :mod:`repro.pre.ast`.
"""

from __future__ import annotations

from .ast import Alt, Atom, Concat, Empty, Never, Pre, Repeat, alt, concat, repeat
from .automaton import AutomatonLimitError, language_subsumes

__all__ = ["optimize_pre"]


def optimize_pre(pre: Pre) -> Pre:
    """Simplify ``pre`` without changing its path language."""
    if isinstance(pre, (Empty, Never, Atom)):
        return pre
    if isinstance(pre, Concat):
        return concat(optimize_pre(part) for part in pre.parts)
    if isinstance(pre, Alt):
        return _optimize_alt([optimize_pre(option) for option in pre.options])
    if isinstance(pre, Repeat):
        return _optimize_repeat(optimize_pre(pre.body), pre.bound)
    return pre


def _optimize_alt(options: list[Pre]) -> Pre:
    """Drop alternation branches subsumed by a sibling."""
    kept: list[Pre] = []
    for candidate in options:
        absorbed = False
        for index, existing in enumerate(kept):
            if _subsumes(existing, candidate):
                absorbed = True
                break
            if _subsumes(candidate, existing):
                kept[index] = candidate
                absorbed = True
                break
        if not absorbed:
            kept.append(candidate)
    # A second pass handles replacements that now absorb later entries.
    deduped: list[Pre] = []
    for candidate in kept:
        if not any(
            other is not candidate and _subsumes(other, candidate) for other in kept
        ):
            if candidate not in deduped:
                deduped.append(candidate)
    return alt(deduped if deduped else kept)


def _optimize_repeat(body: Pre, bound: int | None) -> Pre:
    # ε inside a repetition body is redundant: each iteration may be empty.
    if isinstance(body, Alt):
        stripped = [o for o in body.options if not isinstance(o, Empty)]
        if len(stripped) < len(body.options):
            body = alt(stripped)
    # Nested repetition: (A*m)*n covers 0..m·n repetitions of A.
    if isinstance(body, Repeat):
        inner_bound = body.bound
        if inner_bound is None or bound is None:
            return repeat(body.body, None)
        return repeat(body.body, inner_bound * bound)
    return repeat(body, bound)


def _subsumes(sup: Pre, sub: Pre) -> bool:
    try:
        return language_subsumes(sup, sub)
    except AutomatonLimitError:  # pragma: no cover - pathological inputs
        return False
