"""PRE abstract syntax.

Nodes are immutable and structurally hashable — the node-query log table and
the CHT both key on query states that embed a PRE.  Construction goes
through the smart constructors :func:`concat`, :func:`alt` and
:func:`repeat`, which apply *unit and absorption* simplifications only:

* ``Empty`` is the concatenation unit, ``Never`` annihilates it;
* ``Never`` is the alternation unit; duplicate options collapse;
* ``X*0`` is ``Empty``.

Deliberately, no simplification merges ``A · A*(m-1)`` back into ``A*m`` —
the paper's log-table rewrite (Section 3.1.1) depends on that distinction
staying visible ("it would not be possible to distinguish between a 'real'
PRE that has L·L and a rewritten version of a PRE that originally had L*2").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Union

from ..errors import PreSemanticsError
from ..model.relations import LinkType

__all__ = [
    "Pre",
    "Empty",
    "Never",
    "Atom",
    "Concat",
    "Alt",
    "Repeat",
    "UNBOUNDED",
    "concat",
    "alt",
    "repeat",
    "EMPTY",
    "NEVER",
]

#: Sentinel bound for unbounded repetition ``A*``.
UNBOUNDED: None = None


@dataclass(frozen=True, slots=True)
class Empty:
    """The zero-length path — what the paper writes as the null link ``N``."""

    def __str__(self) -> str:
        return "N"


@dataclass(frozen=True, slots=True)
class Never:
    """The empty path *set*: no path matches.  Appears only as a derivative
    result (a dead direction); it is not writable in PRE syntax."""

    def __str__(self) -> str:
        return "0"


@dataclass(frozen=True, slots=True)
class Atom:
    """A single link traversal of the given type (``I``, ``L`` or ``G``)."""

    ltype: LinkType

    def __post_init__(self) -> None:
        if self.ltype is LinkType.NULL:
            raise PreSemanticsError("the null link is the Empty node, not an Atom")

    def __str__(self) -> str:
        return self.ltype.value


@dataclass(frozen=True, slots=True)
class Concat:
    """``parts[0] · parts[1] · ...`` — always ≥ 2 parts after simplification."""

    parts: tuple["Pre", ...]

    def __str__(self) -> str:
        return ".".join(_wrap(part, for_concat=True) for part in self.parts)


@dataclass(frozen=True, slots=True)
class Alt:
    """``options[0] | options[1] | ...`` — always ≥ 2 options, deduplicated."""

    options: tuple["Pre", ...]

    def __str__(self) -> str:
        return "|".join(str(option) for option in self.options)


@dataclass(frozen=True, slots=True)
class Repeat:
    """Zero to ``bound`` repetitions of ``body`` (``bound=None`` = unbounded).

    The paper's ``L*4`` is ``Repeat(Atom(L), 4)``; ``L*`` is
    ``Repeat(Atom(L), None)``.
    """

    body: "Pre"
    bound: int | None

    def __post_init__(self) -> None:
        if self.bound is not None and self.bound < 1:
            raise PreSemanticsError(f"repetition bound must be >= 1, got {self.bound}")

    def __str__(self) -> str:
        suffix = "*" if self.bound is None else f"*{self.bound}"
        return f"{_wrap(self.body, for_concat=True)}{suffix}"


Pre = Union[Empty, Never, Atom, Concat, Alt, Repeat]

EMPTY = Empty()
NEVER = Never()


def _wrap(pre: Pre, *, for_concat: bool) -> str:
    """Parenthesize sub-expressions whose operator binds looser than ours."""
    if isinstance(pre, Alt) or (for_concat and isinstance(pre, Concat)):
        return f"({pre})"
    return str(pre)


def concat(parts: Iterable[Pre]) -> Pre:
    """Concatenation with unit/absorption simplification and flattening."""
    flat: list[Pre] = []
    for part in parts:
        if isinstance(part, Never):
            return NEVER
        if isinstance(part, Empty):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def alt(options: Iterable[Pre]) -> Pre:
    """Alternation with flattening, ``Never`` removal and deduplication."""
    flat: list[Pre] = []
    seen: set[Pre] = set()
    for option in options:
        if isinstance(option, Never):
            continue
        parts = option.options if isinstance(option, Alt) else (option,)
        for part in parts:
            if part not in seen:
                seen.add(part)
                flat.append(part)
    if not flat:
        return NEVER
    if len(flat) == 1:
        return flat[0]
    return Alt(tuple(flat))


def repeat(body: Pre, bound: int | None) -> Pre:
    """Repetition; ``X*0`` and repetitions of ``N`` collapse to ``N``."""
    if bound is not None and bound <= 0:
        return EMPTY
    if isinstance(body, (Empty, Never)):
        # Zero repetitions are always allowed, so these both mean "ε only".
        return EMPTY
    return Repeat(body, bound)
