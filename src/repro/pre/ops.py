"""Operations on PREs: derivatives, nullability, subsumption, rewriting.

These are the formal counterparts of the paper's informal PRE manipulations;
see the package docstring for the mapping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Sequence

from ..model.relations import LinkType
from .ast import (
    EMPTY,
    NEVER,
    Alt,
    Atom,
    Concat,
    Empty,
    Never,
    Pre,
    Repeat,
    alt,
    concat,
    repeat,
)

__all__ = [
    "nullable",
    "first_symbols",
    "advance",
    "accepts",
    "enumerate_paths",
    "pre_size",
    "decompose_repeat_head",
    "LogComparison",
    "compare_for_log",
    "rewrite_superset",
]


@lru_cache(maxsize=65536)
def nullable(pre: Pre) -> bool:
    """True when ``pre`` matches the zero-length path.

    This is the paper's "the PRE contains a null link" test that decides
    whether the node-query is evaluated at the current node.
    """
    if isinstance(pre, Empty):
        return True
    if isinstance(pre, (Never, Atom)):
        return False
    if isinstance(pre, Concat):
        return all(nullable(part) for part in pre.parts)
    if isinstance(pre, Alt):
        return any(nullable(option) for option in pre.options)
    # Repeat: zero repetitions always allowed.
    return True


@lru_cache(maxsize=65536)
def first_symbols(pre: Pre) -> frozenset[LinkType]:
    """Link types that can begin a non-empty path matching ``pre``.

    This is the "set of links to be followed from the node as indicated by
    the PRE" (Figure 4, line 8).
    """
    if isinstance(pre, (Empty, Never)):
        return frozenset()
    if isinstance(pre, Atom):
        return frozenset((pre.ltype,))
    if isinstance(pre, Concat):
        symbols: set[LinkType] = set()
        for part in pre.parts:
            symbols |= first_symbols(part)
            if not nullable(part):
                break
        return frozenset(symbols)
    if isinstance(pre, Alt):
        symbols = set()
        for option in pre.options:
            symbols |= first_symbols(option)
        return frozenset(symbols)
    return first_symbols(pre.body)


@lru_cache(maxsize=65536)
def advance(pre: Pre, symbol: LinkType) -> Pre:
    """The PRE remaining after traversing one link of type ``symbol``.

    A Brzozowski derivative with simplification.  Returns ``Never`` when no
    matching path starts with ``symbol``.  Bounded repetitions step down
    (``L*4`` → ``L*3``) so the log table's ``A*m·B`` shape survives
    traversal, as the paper's Section 3.1.1 requires.
    """
    if isinstance(pre, (Empty, Never)):
        return NEVER
    if isinstance(pre, Atom):
        return EMPTY if pre.ltype is symbol else NEVER
    if isinstance(pre, Concat):
        head, tail = pre.parts[0], pre.parts[1:]
        options = [concat((advance(head, symbol), *tail))]
        if nullable(head):
            options.append(advance(concat(tail), symbol))
        return alt(options)
    if isinstance(pre, Alt):
        return alt(advance(option, symbol) for option in pre.options)
    # Repeat(body, bound): one body traversal begins, bound decremented.
    remaining = None if pre.bound is None else pre.bound - 1
    return concat((advance(pre.body, symbol), repeat(pre.body, remaining)))


def accepts(pre: Pre, path: Sequence[LinkType]) -> bool:
    """True when the link-type sequence ``path`` matches ``pre`` exactly."""
    state = pre
    for symbol in path:
        state = advance(state, symbol)
        if isinstance(state, Never):
            return False
    return nullable(state)


def enumerate_paths(pre: Pre, max_len: int) -> set[tuple[LinkType, ...]]:
    """All accepted link-type sequences of length ≤ ``max_len``.

    Exponential in ``max_len``; intended for tests and small examples only.
    """
    found: set[tuple[LinkType, ...]] = set()
    frontier: list[tuple[tuple[LinkType, ...], Pre]] = [((), pre)]
    while frontier:
        path, state = frontier.pop()
        if nullable(state):
            found.add(path)
        if len(path) >= max_len:
            continue
        for symbol in first_symbols(state):
            next_state = advance(state, symbol)
            if not isinstance(next_state, Never):
                frontier.append((path + (symbol,), next_state))
    return found


def pre_size(pre: Pre) -> int:
    """Number of AST nodes; used to estimate serialized message bytes."""
    if isinstance(pre, (Empty, Never, Atom)):
        return 1
    if isinstance(pre, Concat):
        return 1 + sum(pre_size(part) for part in pre.parts)
    if isinstance(pre, Alt):
        return 1 + sum(pre_size(option) for option in pre.options)
    return 1 + pre_size(pre.body)


@dataclass(frozen=True, slots=True)
class _RepeatHead:
    """The decomposition ``pre = body*bound · tail`` (tail may be ``N``)."""

    body: Pre
    bound: int | None
    tail: Pre


def decompose_repeat_head(pre: Pre) -> _RepeatHead | None:
    """Decompose ``pre`` as ``A*m · B`` when it has that syntactic shape.

    Returns ``None`` for every other shape — the paper's log-table
    equivalence analysis only applies to repeat-headed PREs.
    """
    if isinstance(pre, Repeat):
        return _RepeatHead(pre.body, pre.bound, EMPTY)
    if isinstance(pre, Concat) and isinstance(pre.parts[0], Repeat):
        head = pre.parts[0]
        return _RepeatHead(head.body, head.bound, concat(pre.parts[1:]))
    return None


class LogComparison(enum.Enum):
    """Relation of an incoming clone's PRE to a logged PRE (same node/query).

    * ``DUPLICATE`` — drop the incoming clone (``m <= n`` or exact match);
    * ``SUPERSET`` — the incoming clone covers strictly more paths
      (``m > n``): replace the log entry and rewrite the query;
    * ``UNRELATED`` — no subsumption established; log and process normally.
    """

    DUPLICATE = "duplicate"
    SUPERSET = "superset"
    UNRELATED = "unrelated"


def compare_for_log(incoming: Pre, logged: Pre) -> LogComparison:
    """Classify ``incoming`` against ``logged`` per paper Section 3.1.1."""
    if incoming == logged:
        return LogComparison.DUPLICATE
    new = decompose_repeat_head(incoming)
    old = decompose_repeat_head(logged)
    if new is None or old is None:
        return LogComparison.UNRELATED
    if new.body != old.body or new.tail != old.tail:
        return LogComparison.UNRELATED
    if _bound_le(new.bound, old.bound):
        return LogComparison.DUPLICATE
    return LogComparison.SUPERSET


def _bound_le(m: int | None, n: int | None) -> bool:
    """``m <= n`` with ``None`` as infinity."""
    if n is None:
        return True
    if m is None:
        return False
    return m <= n


def rewrite_superset(incoming: Pre) -> Pre:
    """The paper's multi-rewrite: ``A*m · B  →  A · A*(m-1) · B``.

    Forces the current node to act as a PureRouter (the rewritten PRE is not
    nullable) and leaves downstream log tables unambiguous, unlike the
    single-rewrite ``A^(n+1) · A*(m-n-1) · B`` the paper rejects.
    """
    head = decompose_repeat_head(incoming)
    if head is None:
        raise ValueError(f"PRE {incoming} is not of the A*m.B shape")
    remaining = None if head.bound is None else head.bound - 1
    return concat((head.body, repeat(head.body, remaining), head.tail))


def symbols_of(path: Iterable[str]) -> tuple[LinkType, ...]:
    """Convenience: map ``"GLL"``-style strings to link-type tuples."""
    return tuple(LinkType.from_symbol(ch) for ch in path)
