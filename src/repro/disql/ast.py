"""DISQL abstract syntax."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from ..pre.ast import Pre
from ..relational.expr import Attr, Expr

__all__ = ["StartSource", "AliasSource", "PathSpec", "Decl", "SubQuery", "DisqlQuery"]


@dataclass(frozen=True, slots=True)
class StartSource:
    """A path source given as StartNode URL string(s): ``"u1" | "u2"``."""

    urls: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class IndexSource:
    """A path source resolved from a search index: ``index("keywords", k)``.

    The paper's §1.1 automated StartNode pipeline surfaced in the language;
    resolution happens at translation time against a supplied
    :class:`~repro.index.inverted.InvertedIndex`.
    """

    keywords: str
    k: int = 3


@dataclass(frozen=True, slots=True)
class AliasSource:
    """A path source referring to the previous sub-query's document alias."""

    alias: str


Source = Union[StartSource, AliasSource, IndexSource]


@dataclass(frozen=True, slots=True)
class PathSpec:
    """``such that <source> <PRE> <dest_alias>`` — a structural predicate.

    ``pre_text`` is the verbatim source spelling, kept for diagnostics only
    — two path specs with equal parsed PREs are equal regardless of how the
    user parenthesized them.
    """

    source: Source
    pre: Pre
    pre_text: str = field(compare=False)
    dest_alias: str


@dataclass(frozen=True, slots=True)
class Decl:
    """One ``from`` declaration: a virtual relation bound to an alias.

    ``path`` is set for traversal documents (``document d such that ... d``);
    ``condition`` for attribute conditions (``relinfon r such that
    r.delimiter = "hr"``); ``sitewide`` for the §7.1 multi-document
    extension (``document e such that sitewide`` — ``e`` ranges over every
    document at the current node's site).  At most one of the three is set.
    """

    relation: str
    alias: str
    path: PathSpec | None = None
    condition: Expr | None = None
    sitewide: bool = False


@dataclass(frozen=True, slots=True)
class SubQuery:
    """One ``p_i q_i`` unit before lowering: declarations plus a ``where``."""

    decls: tuple[Decl, ...]
    where: Expr | None

    def aliases(self) -> tuple[str, ...]:
        return tuple(decl.alias for decl in self.decls)

    def traversal_decl(self) -> Decl | None:
        """The (single) declaration carrying this sub-query's path spec."""
        for decl in self.decls:
            if decl.path is not None:
                return decl
        return None


@dataclass(frozen=True, slots=True)
class DisqlQuery:
    """A parsed DISQL query: global select list + sub-query sequence.

    ``distinct`` and ``order_by`` are *display directives*: node-queries ship
    unchanged, and the user-site's result collector applies them when
    presenting rows ("process results for display", Figure 2 line 13).
    ``order_by`` entries are ``(attr, descending)`` pairs.
    """

    select: tuple[Attr, ...]
    subqueries: tuple[SubQuery, ...]
    distinct: bool = False
    order_by: tuple[tuple[Attr, bool], ...] = ()
    limit: int | None = None
    #: ``select *`` — the select list expands at translation time to every
    #: attribute of every declared virtual relation, in declaration order.
    select_all: bool = False
