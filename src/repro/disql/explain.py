"""Explain: render a web-query in the paper's formalism.

Section 2.3 presents translated queries as::

    Q = http://csa.iisc.ernet.in  L  q1  G.(L*1)  q2

    where q1 is
    select d0.url
    from document d0,
    where d0.title contains "lab"
    ...

:func:`explain_webquery` reproduces that presentation for any compiled
query — the tool a user reaches for to check what DISQL lowered to.
"""

from __future__ import annotations

from ..core.webquery import WebQuery
from ..relational.expr import TRUE
from ..relational.query import NodeQuery

__all__ = ["explain_webquery", "format_node_query"]


def format_node_query(query: NodeQuery) -> str:
    """Multi-line select/from/where rendering of one node-query."""
    lines = ["select " + ", ".join(str(attr) for attr in query.select)]
    table_parts = []
    for table in query.tables:
        rendered = f"{table.relation} {table.alias}"
        if table.alias in query.sitewide_aliases:
            rendered += " such that sitewide"
        table_parts.append(rendered)
    lines.append("from " + ",\n     ".join(table_parts))
    if query.where != TRUE:
        lines.append(f"where {query.where}")
    return "\n".join(lines)


def explain_webquery(query: WebQuery, *, narrate: bool = False) -> str:
    """The paper-style formalism: headline plus per-node-query listings.

    ``narrate=True`` adds an English reading of each traversal PRE
    (:func:`repro.pre.describe.describe_pre`).
    """
    headline_parts = []
    start = " | ".join(str(url) for url in query.start_urls)
    headline_parts.append(start)
    for step in query.steps:
        headline_parts.append(str(step.pre))
        headline_parts.append(step.query.label)
    lines = ["Q = " + "  ".join(headline_parts), ""]
    if narrate:
        from ..pre.describe import describe_pre

        for step in query.steps:
            lines.append(
                f"to reach {step.query.label}: traverse {describe_pre(step.pre)}"
            )
        lines.append("")
    for step in query.steps:
        lines.append(f"where {step.query.label} is")
        lines.append(format_node_query(step.query))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
