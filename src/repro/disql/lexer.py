"""DISQL tokenizer.

Produces a flat token stream with source offsets (the parser slices the raw
PRE text out of path specifications by offset and delegates to the PRE
parser).  Keywords are not distinguished here — they are case-insensitively
matched IDENT tokens, so ``Select``/``SELECT`` both work and aliases may
shadow nothing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import DisqlSyntaxError

__all__ = ["TokenKind", "Token", "tokenize_disql"]


class TokenKind(enum.Enum):
    IDENT = "ident"
    STRING = "string"
    NUMBER = "number"
    OP = "op"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    value: object
    start: int
    end: int
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.IDENT and self.text.lower() == word

    def __str__(self) -> str:
        return self.text if self.kind is not TokenKind.EOF else "<eof>"


#: Multi-character operators first so '<=' wins over '<'.
_OPERATORS = ("!=", "<=", ">=", ",", ".", "·", "*", "|", "(", ")", "=", "<", ">", "~")


def tokenize_disql(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`DisqlSyntaxError` on bad characters."""
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(text)
    while pos < n:
        ch = text[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch.isspace():
            pos += 1
            continue
        column = pos - line_start + 1
        if ch == '"':
            literal, end = _read_string(text, pos, line, column)
            tokens.append(Token(TokenKind.STRING, text[pos:end], literal, pos, end, line, column))
            pos = end
            continue
        if ch.isdigit():
            end = pos
            while end < n and text[end].isdigit():
                end += 1
            tokens.append(
                Token(TokenKind.NUMBER, text[pos:end], int(text[pos:end]), pos, end, line, column)
            )
            pos = end
            continue
        if ch.isalpha() or ch == "_":
            end = pos
            while end < n and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[pos:end]
            tokens.append(Token(TokenKind.IDENT, word, word, pos, end, line, column))
            pos = end
            continue
        for op in _OPERATORS:
            if text.startswith(op, pos):
                end = pos + len(op)
                tokens.append(Token(TokenKind.OP, op, op, pos, end, line, column))
                pos = end
                break
        else:
            raise DisqlSyntaxError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token(TokenKind.EOF, "", None, n, n, line, n - line_start + 1))
    return tokens


def _read_string(text: str, start: int, line: int, column: int) -> tuple[str, int]:
    """Read a double-quoted string with ``\\"`` and ``\\\\`` escapes."""
    out: list[str] = []
    pos = start + 1
    n = len(text)
    while pos < n:
        ch = text[pos]
        if ch == '"':
            return "".join(out), pos + 1
        if ch == "\\" and pos + 1 < n and text[pos + 1] in ('"', "\\"):
            out.append(text[pos + 1])
            pos += 2
            continue
        if ch == "\n":
            break
        out.append(ch)
        pos += 1
    raise DisqlSyntaxError("unterminated string literal", line, column)
