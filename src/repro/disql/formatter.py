"""DISQL pretty-printer (the textual equivalent of the paper's Figure 6 GUI).

``format_disql`` renders a :class:`~repro.disql.ast.DisqlQuery` back to
canonical DISQL text.  ``format_disql(parse_disql(text))`` round-trips to a
query that parses to an equal AST (tested property-style), which is how the
GUI assembled queries from its form fields.
"""

from __future__ import annotations

from .ast import AliasSource, Decl, DisqlQuery, IndexSource, StartSource

__all__ = ["format_disql"]


def format_disql(query: DisqlQuery) -> str:
    """Render ``query`` as canonical DISQL text."""
    keyword = "select distinct " if query.distinct else "select "
    select_text = "*" if query.select_all else ", ".join(str(a) for a in query.select)
    lines = [keyword + select_text]
    first = True
    for subquery in query.subqueries:
        for index, decl in enumerate(subquery.decls):
            prefix = "from " if first else "     "
            first = False
            trailing = "," if index < len(subquery.decls) - 1 else ""
            lines.append(prefix + _format_decl(decl) + trailing)
        if subquery.where is not None:
            lines.append(f"where {subquery.where}")
    if query.order_by:
        entries = ", ".join(
            f"{attr} desc" if desc else str(attr) for attr, desc in query.order_by
        )
        lines.append(f"order by {entries}")
    if query.limit is not None:
        lines.append(f"limit {query.limit}")
    return "\n".join(lines)


def _format_decl(decl: Decl) -> str:
    text = f"{decl.relation} {decl.alias}"
    if decl.sitewide:
        return text + " such that sitewide"
    if decl.path is not None:
        source = decl.path.source
        if isinstance(source, StartSource):
            rendered = " | ".join(f'"{url}"' for url in source.urls)
        elif isinstance(source, IndexSource):
            rendered = f'index("{source.keywords}", {source.k})'
        else:
            assert isinstance(source, AliasSource)
            rendered = source.alias
        text += f" such that {rendered} {decl.path.pre} {decl.path.dest_alias}"
    elif decl.condition is not None:
        text += f" such that {decl.condition}"
    return text
