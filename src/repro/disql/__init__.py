"""DISQL — the SQL-like web-query language (paper Section 2.3).

A DISQL query has one global ``select`` clause followed by a ``from`` clause
containing a sequence of *sub-queries*.  Each sub-query declares virtual
relations (``document``, ``anchor``, ``relinfon``) with optional ``such
that`` clauses — either a *path specification* (``source PRE destalias``)
giving the PRE to traverse, or a plain condition — plus an optional
``where`` clause.  Example (the paper's example query 2)::

    select d0.url, d1.url, r.text
    from document d0 such that "http://csa.iisc.ernet.in" L d0
    where d0.title contains "lab"
         document d1 such that d0 G.(L*1) d1,
         relinfon r such that r.delimiter = "hr"
    where r.text contains "convener"

:func:`parse_disql` produces the AST; :func:`translate` lowers it to the
:class:`~repro.core.webquery.WebQuery` formalism ``S p1 q1 p2 q2 ...`` with
the select list split per node-query, exactly as Section 2.3 describes.
:func:`compile_disql` chains both.
"""

from .ast import AliasSource, Decl, DisqlQuery, PathSpec, StartSource, SubQuery
from .explain import explain_webquery, format_node_query
from .formatter import format_disql
from .lexer import Token, TokenKind, tokenize_disql
from .parser import parse_disql
from .translate import compile_disql, translate

__all__ = [
    "AliasSource",
    "Decl",
    "DisqlQuery",
    "PathSpec",
    "StartSource",
    "SubQuery",
    "Token",
    "TokenKind",
    "compile_disql",
    "explain_webquery",
    "format_disql",
    "format_node_query",
    "parse_disql",
    "tokenize_disql",
    "translate",
]
