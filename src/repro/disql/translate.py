"""Lowering DISQL to the web-query formalism ``S p1 q1 p2 q2 ... pn qn``.

Per paper Section 2.3: the single user-level select clause is *split* so
that each node-query only references attributes of virtual relations
declared in its own sub-query; ``such that`` conditions fold into the
node-query's ``where``; the path specifications chain the sub-queries
together and the first one's source strings become the StartNodes.
"""

from __future__ import annotations

from ..errors import DisqlSemanticsError
from ..relational.expr import TRUE, Attr, attrs_referenced, conjoin
from ..relational.query import NodeQuery, TableDecl
from ..urlutils import parse_url
from ..core.webquery import QueryId, WebQuery, WebQueryStep
from .ast import AliasSource, DisqlQuery, IndexSource, StartSource, SubQuery
from .parser import parse_disql

__all__ = ["translate", "compile_disql", "PLACEHOLDER_QID"]

#: Filled in by the user-site client at submission time.
PLACEHOLDER_QID = QueryId("anonymous", "user.example", 0, 0)


_RELATION_ATTRS = {
    "document": ("url", "title", "text", "length"),
    "anchor": ("label", "base", "href", "ltype"),
    "relinfon": ("delimiter", "url", "text", "length"),
}


def _expand_select_all(query: DisqlQuery) -> DisqlQuery:
    """Expand ``select *`` to every attribute of every declared relation."""
    from dataclasses import replace

    select = tuple(
        Attr(decl.alias, attr)
        for subquery in query.subqueries
        for decl in subquery.decls
        for attr in _RELATION_ATTRS[decl.relation]
    )
    return replace(query, select=select, select_all=False)


def translate(query: DisqlQuery, *, optimize: bool = False, search_index=None) -> WebQuery:
    """Lower a parsed DISQL query to a :class:`WebQuery`.

    ``optimize=True`` runs each PRE through the language-preserving
    simplifier (:func:`repro.pre.optimize.optimize_pre`) before shipping —
    smaller clones and better structural duplicate detection.

    ``search_index`` supplies the :class:`~repro.index.inverted.InvertedIndex`
    an ``index("keywords", k)`` StartNode source resolves against (§1.1).

    Raises:
        DisqlSemanticsError: on broken chaining (a sub-query whose path
            source is not the previous traversal alias), missing path specs,
            duplicate aliases, or select/where references that cross
            sub-query boundaries.
    """
    if query.select_all:
        query = _expand_select_all(query)
    _check_alias_uniqueness(query)
    steps: list[WebQueryStep] = []
    start_urls: tuple = ()
    previous_traversal_alias: str | None = None

    for index, subquery in enumerate(query.subqueries):
        label = f"q{index + 1}"
        traversal = subquery.traversal_decl()
        if traversal is None or traversal.path is None:
            raise DisqlSemanticsError(
                f"sub-query {label} has no path specification; every sub-query "
                "needs one 'document <alias> such that <source> <PRE> <alias>'"
            )
        path = traversal.path
        if traversal.relation != "document":
            raise DisqlSemanticsError(
                f"sub-query {label}: path specifications belong on document "
                f"declarations, not {traversal.relation!r}"
            )
        if sum(1 for decl in subquery.decls if decl.path is not None) > 1:
            raise DisqlSemanticsError(f"sub-query {label} has multiple path specifications")

        if index == 0:
            if isinstance(path.source, IndexSource):
                start_urls = _resolve_index_source(path.source, search_index)
            elif isinstance(path.source, StartSource):
                start_urls = tuple(parse_url(text) for text in path.source.urls)
            else:
                raise DisqlSemanticsError(
                    "the first sub-query's path must start from StartNode URL "
                    "strings or an index(...) source"
                )
        else:
            if not isinstance(path.source, AliasSource):
                raise DisqlSemanticsError(
                    f"sub-query {label}: only the first sub-query may name StartNode URLs"
                )
            if path.source.alias != previous_traversal_alias:
                raise DisqlSemanticsError(
                    f"sub-query {label} must continue from {previous_traversal_alias!r}, "
                    f"not {path.source.alias!r}"
                )
        previous_traversal_alias = path.dest_alias

        pre = path.pre
        if optimize:
            from ..pre.optimize import optimize_pre

            pre = optimize_pre(pre)
        steps.append(WebQueryStep(pre, _node_query(query, subquery, label)))

    header = tuple(str(attr) for attr in query.select)
    _check_select_coverage(query)
    declared = {alias for sub in query.subqueries for alias in sub.aliases()}
    for attr, __ in query.order_by:
        if attr.alias not in declared:
            raise DisqlSemanticsError(f"ORDER BY references undeclared alias {attr.alias!r}")
    order = tuple((str(attr), desc) for attr, desc in query.order_by)
    return WebQuery(
        PLACEHOLDER_QID, start_urls, tuple(steps), header,
        display_distinct=query.distinct, display_order=order,
        display_limit=query.limit,
    )


def _resolve_index_source(source: IndexSource, search_index) -> tuple:
    if search_index is None:
        raise DisqlSemanticsError(
            "the query uses index(...) StartNodes but no search index was "
            "supplied; pass search_index= to translate()/compile_disql()"
        )
    hits = search_index.search(source.keywords, source.k)
    if not hits:
        raise DisqlSemanticsError(
            f"index({source.keywords!r}) resolved no StartNodes"
        )
    return tuple(hit.url for hit in hits)


def _node_query(query: DisqlQuery, subquery: SubQuery, label: str) -> NodeQuery:
    aliases = set(subquery.aliases())
    select = tuple(attr for attr in query.select if attr.alias in aliases)
    if not select:
        # The user asked for nothing from this step; the node-query still
        # needs a success test, so project the traversal document's URL.
        traversal = subquery.traversal_decl()
        assert traversal is not None
        select = (Attr(traversal.alias, "url"),)
    conditions = [decl.condition for decl in subquery.decls if decl.condition is not None]
    if subquery.where is not None:
        conditions.append(subquery.where)
    where = conjoin(conditions) if conditions else TRUE
    for attr in attrs_referenced(where):
        if attr.alias not in aliases:
            raise DisqlSemanticsError(
                f"sub-query {label}: WHERE references {attr} but node-queries are "
                "evaluated locally — conditions cannot cross sub-query boundaries"
            )
    tables = tuple(TableDecl(decl.relation, decl.alias) for decl in subquery.decls)
    sitewide = tuple(decl.alias for decl in subquery.decls if decl.sitewide)
    return NodeQuery(select, tables, where, label, sitewide)


def _check_alias_uniqueness(query: DisqlQuery) -> None:
    seen: set[str] = set()
    for subquery in query.subqueries:
        for alias in subquery.aliases():
            if alias in seen:
                raise DisqlSemanticsError(f"alias {alias!r} declared more than once")
            seen.add(alias)


def _check_select_coverage(query: DisqlQuery) -> None:
    declared = {
        alias for subquery in query.subqueries for alias in subquery.aliases()
    }
    for attr in query.select:
        if attr.alias not in declared:
            raise DisqlSemanticsError(f"select references undeclared alias {attr.alias!r}")


def compile_disql(text: str, *, optimize: bool = False, search_index=None) -> WebQuery:
    """Parse and translate in one step."""
    return translate(parse_disql(text), optimize=optimize, search_index=search_index)
