"""DISQL recursive-descent parser.

Grammar (keywords case-insensitive, commas between items optional)::

    query      := SELECT attr (',' attr)* FROM item+
    item       := decl | WHERE expr
    decl       := relation IDENT [SUCH THAT suchthat]
    relation   := DOCUMENT | ANCHOR | RELINFON
    suchthat   := pathspec | expr
    pathspec   := source PRETEXT IDENT        -- IDENT must be the decl alias
    source     := STRING ('|' STRING)* | IDENT
    attr       := IDENT '.' IDENT
    expr       := orx ; orx := andx (OR andx)* ; andx := notx (AND notx)*
    notx       := NOT notx | cmp
    cmp        := '(' expr ')' | operand (op operand | CONTAINS operand)
    operand    := attr | STRING | NUMBER

Sub-query grouping: a declaration with a path specification starts a new
sub-query (unless it is the first declaration); any declaration after a
``where`` clause also starts a new sub-query.  This reproduces the layout of
the paper's example queries.
"""

from __future__ import annotations

from ..errors import DisqlSyntaxError
from ..pre.parser import parse_pre
from ..relational.expr import And, Attr, Compare, Contains, Expr, Literal, Not, Or
from .ast import AliasSource, Decl, DisqlQuery, IndexSource, PathSpec, StartSource, SubQuery
from .lexer import Token, TokenKind, tokenize_disql

__all__ = ["parse_disql"]

_RELATIONS = ("document", "anchor", "relinfon")
_COMPARE_OPS = ("=", "!=", "<", "<=", ">", ">=")


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize_disql(text)
        self.pos = 0

    # -- token helpers ---------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> DisqlSyntaxError:
        token = token if token is not None else self._peek()
        return DisqlSyntaxError(f"{message}, got {token}", token.line, token.column)

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise self._error(f"expected {word.upper()}")
        return self._next()

    def _expect_op(self, op: str) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.OP or token.text != op:
            raise self._error(f"expected {op!r}")
        return self._next()

    def _skip_commas(self) -> None:
        while self._peek().kind is TokenKind.OP and self._peek().text == ",":
            self._next()

    # -- query ---------------------------------------------------------------

    def parse(self) -> DisqlQuery:
        self._expect_keyword("select")
        distinct = False
        if self._peek().is_keyword("distinct"):
            self._next()
            distinct = True
        select: list[Attr] = []
        select_all = False
        if self._peek().text == "*":
            self._next()
            select_all = True
        else:
            select.append(self._attr())
            while self._peek().text == ",":
                self._next()
                select.append(self._attr())
        self._expect_keyword("from")

        subqueries: list[SubQuery] = []
        decls: list[Decl] = []
        where: Expr | None = None
        saw_where = False

        def close() -> None:
            nonlocal decls, where, saw_where
            if decls:
                subqueries.append(SubQuery(tuple(decls), where))
            elif where is not None:
                raise DisqlSyntaxError("WHERE clause with no declarations")
            decls, where, saw_where = [], None, False

        order_by: list[tuple[Attr, bool]] = []
        limit: int | None = None
        while self._peek().kind is not TokenKind.EOF:
            self._skip_commas()
            token = self._peek()
            if token.kind is TokenKind.EOF:
                break
            if token.is_keyword("order"):
                self._next()
                self._expect_keyword("by")
                order_by = self._order_list()
                limit = self._maybe_limit()
                if self._peek().kind is not TokenKind.EOF:
                    raise self._error("ORDER BY [LIMIT] must be the final clause")
                break
            if token.is_keyword("limit"):
                limit = self._maybe_limit()
                if self._peek().kind is not TokenKind.EOF:
                    raise self._error("LIMIT must be the final clause")
                break
            if token.is_keyword("where"):
                self._next()
                clause = self._expr()
                where = clause if where is None else And(where, clause)
                saw_where = True
                continue
            if token.kind is TokenKind.IDENT and token.text.lower() in _RELATIONS:
                decl = self._decl()
                if decls and (decl.path is not None or saw_where):
                    close()
                decls.append(decl)
                continue
            raise self._error("expected a relation declaration or WHERE")
        close()

        if not subqueries:
            raise DisqlSyntaxError("query has no FROM declarations")
        return DisqlQuery(
            tuple(select), tuple(subqueries), distinct, tuple(order_by), limit,
            select_all,
        )

    def _maybe_limit(self) -> int | None:
        if not self._peek().is_keyword("limit"):
            return None
        self._next()
        token = self._peek()
        if token.kind is not TokenKind.NUMBER or int(str(token.value)) < 1:
            raise self._error("expected a positive row count after LIMIT")
        self._next()
        return int(str(token.value))

    def _index_source(self) -> IndexSource:
        """``index("keywords" [, k])`` — §1.1 automated StartNode source."""
        self._next()  # 'index'
        self._expect_op("(")
        token = self._peek()
        if token.kind is not TokenKind.STRING:
            raise self._error("expected a keyword string inside index(...)")
        self._next()
        keywords = str(token.value)
        k = 3
        if self._peek().text == ",":
            self._next()
            bound = self._peek()
            if bound.kind is not TokenKind.NUMBER or int(str(bound.value)) < 1:
                raise self._error("expected a positive hit count in index(...)")
            self._next()
            k = int(str(bound.value))
        self._expect_op(")")
        return IndexSource(keywords, k)

    def _order_list(self) -> list[tuple[Attr, bool]]:
        entries = [self._order_entry()]
        while self._peek().text == ",":
            self._next()
            entries.append(self._order_entry())
        return entries

    def _order_entry(self) -> tuple[Attr, bool]:
        attr = self._attr()
        descending = False
        if self._peek().is_keyword("desc"):
            self._next()
            descending = True
        elif self._peek().is_keyword("asc"):
            self._next()
        return (attr, descending)

    def _attr(self) -> Attr:
        alias = self._ident("table alias")
        self._expect_op(".")
        name = self._ident("attribute name")
        return Attr(alias, name)

    def _ident(self, what: str) -> str:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise self._error(f"expected {what}")
        self._next()
        return token.text

    # -- declarations -----------------------------------------------------------

    def _decl(self) -> Decl:
        relation = self._next().text.lower()
        alias = self._ident("table alias")
        if not self._peek().is_keyword("such"):
            return Decl(relation, alias)
        self._next()
        self._expect_keyword("that")
        return self._such_that(relation, alias)

    def _such_that(self, relation: str, alias: str) -> Decl:
        token = self._peek()
        if token.is_keyword("sitewide"):
            self._next()
            if relation != "document":
                raise self._error("only document declarations can be sitewide", token)
            return Decl(relation, alias, sitewide=True)
        if token.kind is TokenKind.STRING:
            return Decl(relation, alias, path=self._path_spec(alias))
        if token.kind is TokenKind.IDENT and self._peek(1).text == ".":
            # attribute reference => condition expression
            return Decl(relation, alias, condition=self._expr())
        if token.kind is TokenKind.IDENT:
            return Decl(relation, alias, path=self._path_spec(alias))
        if token.kind is TokenKind.OP and token.text == "(":
            return Decl(relation, alias, condition=self._expr())
        raise self._error("expected a path specification or condition after SUCH THAT")

    def _path_spec(self, decl_alias: str) -> PathSpec:
        token = self._peek()
        source: StartSource | AliasSource | IndexSource
        if token.kind is TokenKind.STRING:
            urls = [str(self._next().value)]
            while self._peek().text == "|" and self._peek(1).kind is TokenKind.STRING:
                self._next()
                urls.append(str(self._next().value))
            source = StartSource(tuple(urls))
        elif token.is_keyword("index") and self._peek(1).text == "(":
            source = self._index_source()
        else:
            source = AliasSource(self._ident("source alias"))

        # Everything between here and the standalone destination-alias token
        # is raw PRE text; find the IDENT equal to the declared alias.
        pre_start_token = self._peek()
        depth = 0
        end_index = None
        for index in range(self.pos, len(self.tokens)):
            candidate = self.tokens[index]
            if candidate.kind is TokenKind.OP and candidate.text == "(":
                depth += 1
            elif candidate.kind is TokenKind.OP and candidate.text == ")":
                depth -= 1
            elif (
                candidate.kind is TokenKind.IDENT
                and depth == 0
                and candidate.text == decl_alias
            ):
                end_index = index
                break
            elif candidate.kind is TokenKind.EOF:
                break
        if end_index is None:
            raise self._error(
                f"path specification must end with the declared alias {decl_alias!r}",
                pre_start_token,
            )
        pre_text = self.text[pre_start_token.start : self.tokens[end_index].start].strip()
        if not pre_text:
            raise self._error("empty PRE in path specification", pre_start_token)
        pre = parse_pre(pre_text)
        self.pos = end_index + 1  # consume PRE tokens + destination alias
        return PathSpec(source, pre, pre_text, decl_alias)

    # -- expressions -------------------------------------------------------------

    def _expr(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        left = self._and()
        while self._peek().is_keyword("or"):
            self._next()
            left = Or(left, self._and())
        return left

    def _and(self) -> Expr:
        left = self._not()
        while self._peek().is_keyword("and"):
            self._next()
            left = And(left, self._not())
        return left

    def _not(self) -> Expr:
        if self._peek().is_keyword("not"):
            self._next()
            return Not(self._not())
        return self._comparison()

    def _comparison(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.OP and token.text == "(":
            self._next()
            inner = self._expr()
            self._expect_op(")")
            return inner
        left = self._operand()
        token = self._peek()
        if token.is_keyword("contains"):
            self._next()
            max_edits = 0
            if self._peek().text == "~":
                self._next()
                bound = self._peek()
                if bound.kind is not TokenKind.NUMBER:
                    raise self._error("expected an edit bound after contains~")
                self._next()
                max_edits = int(str(bound.value))
            return Contains(left, self._operand(), max_edits)
        if token.kind is TokenKind.OP and token.text in _COMPARE_OPS:
            self._next()
            return Compare(token.text, left, self._operand())
        raise self._error("expected a comparison operator or CONTAINS")

    def _operand(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.STRING:
            self._next()
            return Literal(str(token.value))
        if token.kind is TokenKind.NUMBER:
            self._next()
            return Literal(int(str(token.value)))
        if token.kind is TokenKind.IDENT:
            return self._attr()
        raise self._error("expected an attribute, string or number")


def parse_disql(text: str) -> DisqlQuery:
    """Parse DISQL ``text`` into a :class:`DisqlQuery` AST."""
    if not text or not text.strip():
        raise DisqlSyntaxError("empty DISQL query")
    return _Parser(text).parse()
