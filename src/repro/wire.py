"""Wire format: serialization of every WEBDIS message type.

The original system shipped queries between sites with Java object
serialization (paper Section 4).  This module provides the equivalent for
the reproduction: a compact, versioned JSON encoding of every payload —
query clones, result/CHT messages, relay wrappers, and document fetches —
with full round-trip fidelity (PRE ASTs, node-query expression trees,
states, URLs).

Uses:

* the engines' default ``size_bytes()`` methods are fast *estimates*; pass
  ``NetworkConfig(...)`` unchanged but call :func:`wire_size` when exact
  sizes matter (the codec tests assert the estimates stay within a small
  factor of the real encoding);
* :func:`encode_message` / :func:`decode_message` support persisting or
  replaying protocol traffic.

Security note: :func:`decode_message` only constructs the library's own
frozen dataclasses — no arbitrary object instantiation.

Real-transport framing (the asyncio backend, :mod:`repro.net.aio`): the
simulator hands payload *objects* to listeners, but a TCP stream needs
explicit message boundaries.  :func:`encode_frame` / :class:`FrameDecoder`
implement length-prefixed framing (4-byte big-endian length, then the body)
with an oversized-frame guard, and :func:`encode_envelope` /
:func:`decode_envelope` stamp each framed message with its *source site* —
the one piece of addressing information a raw socket does not carry but
every :data:`~repro.net.network.Listener` receives.  The chaos proxy reads
just the source stamp (:func:`envelope_source`) to apply partition rules
without paying a full decode.
"""

from __future__ import annotations

import json
import struct
from typing import Any

from .baselines.docservice import DocResponse, FetchRequest
from .core.messages import (
    ChtEntry,
    CloneBundle,
    Disposition,
    NodeReport,
    RelayMessage,
    ResultMessage,
)
from .core.state import QueryState
from .core.webquery import QueryClone, QueryId, WebQuery, WebQueryStep
from .errors import WebDisError
from .model.relations import LinkType
from .pre.ast import Alt, Atom, Concat, Empty, Never, Pre, Repeat
from .relational.expr import (
    And,
    Attr,
    Compare,
    Contains,
    Expr,
    Literal,
    Not,
    Or,
)
from .relational.query import NodeQuery, ResultRow, TableDecl
from .urlutils import parse_url

__all__ = [
    "WIRE_VERSION",
    "MAX_FRAME_BYTES",
    "WireError",
    "encode_message",
    "decode_message",
    "wire_size",
    "pre_to_wire",
    "pre_from_wire",
    "expr_to_wire",
    "expr_from_wire",
    "encode_frame",
    "FrameDecoder",
    "encode_envelope",
    "decode_envelope",
    "envelope_source",
]

WIRE_VERSION = 1

#: Hard ceiling on one framed message.  A length prefix beyond this is
#: treated as protocol corruption (or an attack) and the connection is
#: aborted rather than buffering unbounded data.
MAX_FRAME_BYTES = 8 * 1024 * 1024

_FRAME_HEADER = struct.Struct(">I")


class WireError(WebDisError):
    """Malformed or unsupported wire data."""


# --- PRE <-> wire -----------------------------------------------------------


def pre_to_wire(pre: Pre) -> Any:
    """Encode a PRE as a JSON-able structure."""
    if isinstance(pre, Empty):
        return "N"
    if isinstance(pre, Never):
        return "0"
    if isinstance(pre, Atom):
        return pre.ltype.value
    if isinstance(pre, Concat):
        return {"cat": [pre_to_wire(p) for p in pre.parts]}
    if isinstance(pre, Alt):
        return {"alt": [pre_to_wire(p) for p in pre.options]}
    if isinstance(pre, Repeat):
        return {"rep": pre_to_wire(pre.body), "max": pre.bound}
    raise WireError(f"unencodable PRE node {pre!r}")


def pre_from_wire(data: Any) -> Pre:
    """Decode :func:`pre_to_wire` output."""
    if data == "N":
        return Empty()
    if data == "0":
        return Never()
    if isinstance(data, str):
        return Atom(LinkType.from_symbol(data))
    if isinstance(data, dict):
        if "cat" in data:
            return Concat(tuple(pre_from_wire(p) for p in data["cat"]))
        if "alt" in data:
            return Alt(tuple(pre_from_wire(p) for p in data["alt"]))
        if "rep" in data:
            return Repeat(pre_from_wire(data["rep"]), data["max"])
    raise WireError(f"bad PRE wire data {data!r}")


# --- expressions <-> wire ------------------------------------------------------


def expr_to_wire(expr: Expr) -> Any:
    if isinstance(expr, Literal):
        return {"lit": expr.value}
    if isinstance(expr, Attr):
        return {"attr": [expr.alias, expr.name]}
    if isinstance(expr, Compare):
        return {"cmp": expr.op, "l": expr_to_wire(expr.left), "r": expr_to_wire(expr.right)}
    if isinstance(expr, Contains):
        encoded = {"has": [expr_to_wire(expr.haystack), expr_to_wire(expr.needle)]}
        if expr.max_edits:
            encoded["k"] = expr.max_edits
        return encoded
    if isinstance(expr, And):
        return {"and": [expr_to_wire(expr.left), expr_to_wire(expr.right)]}
    if isinstance(expr, Or):
        return {"or": [expr_to_wire(expr.left), expr_to_wire(expr.right)]}
    if isinstance(expr, Not):
        return {"not": expr_to_wire(expr.operand)}
    raise WireError(f"unencodable expression {expr!r}")


def expr_from_wire(data: Any) -> Expr:
    if not isinstance(data, dict):
        raise WireError(f"bad expression wire data {data!r}")
    if "lit" in data:
        return Literal(data["lit"])
    if "attr" in data:
        alias, name = data["attr"]
        return Attr(alias, name)
    if "cmp" in data:
        return Compare(data["cmp"], expr_from_wire(data["l"]), expr_from_wire(data["r"]))
    if "has" in data:
        haystack, needle = data["has"]
        return Contains(
            expr_from_wire(haystack), expr_from_wire(needle), data.get("k", 0)
        )
    if "and" in data:
        left, right = data["and"]
        return And(expr_from_wire(left), expr_from_wire(right))
    if "or" in data:
        left, right = data["or"]
        return Or(expr_from_wire(left), expr_from_wire(right))
    if "not" in data:
        return Not(expr_from_wire(data["not"]))
    raise WireError(f"bad expression wire data {data!r}")


# --- query pieces ---------------------------------------------------------------


def _node_query_to_wire(query: NodeQuery) -> Any:
    encoded = {
        "select": [[a.alias, a.name] for a in query.select],
        "tables": [[t.relation, t.alias] for t in query.tables],
        "where": expr_to_wire(query.where),
        "label": query.label,
    }
    if query.sitewide_aliases:
        encoded["sitewide"] = list(query.sitewide_aliases)
    return encoded


def _node_query_from_wire(data: Any) -> NodeQuery:
    return NodeQuery(
        select=tuple(Attr(alias, name) for alias, name in data["select"]),
        tables=tuple(TableDecl(rel, alias) for rel, alias in data["tables"]),
        where=expr_from_wire(data["where"]),
        label=data["label"],
        sitewide_aliases=tuple(data.get("sitewide", ())),
    )


def _qid_to_wire(qid: QueryId) -> Any:
    return [qid.user, qid.host, qid.port, qid.number]


def _qid_from_wire(data: Any) -> QueryId:
    user, host, port, number = data
    return QueryId(user, host, port, number)


def _webquery_to_wire(query: WebQuery) -> Any:
    encoded = {
        "qid": _qid_to_wire(query.qid),
        "starts": [str(u) for u in query.start_urls],
        "steps": [
            {"pre": pre_to_wire(s.pre), "q": _node_query_to_wire(s.query)}
            for s in query.steps
        ],
        "header": list(query.select_header),
    }
    if query.display_distinct:
        encoded["distinct"] = True
    if query.display_order:
        encoded["order"] = [[name, desc] for name, desc in query.display_order]
    if query.display_limit is not None:
        encoded["limit"] = query.display_limit
    return encoded


def _webquery_from_wire(data: Any) -> WebQuery:
    return WebQuery(
        qid=_qid_from_wire(data["qid"]),
        start_urls=tuple(parse_url(u) for u in data["starts"]),
        steps=tuple(
            WebQueryStep(pre_from_wire(s["pre"]), _node_query_from_wire(s["q"]))
            for s in data["steps"]
        ),
        select_header=tuple(data["header"]),
        display_distinct=bool(data.get("distinct", False)),
        display_order=tuple((name, desc) for name, desc in data.get("order", ())),
        display_limit=data.get("limit"),
    )


def _state_to_wire(state: QueryState) -> Any:
    return {"n": state.num_q, "rem": pre_to_wire(state.rem)}


def _state_from_wire(data: Any) -> QueryState:
    return QueryState(data["n"], pre_from_wire(data["rem"]))


def _entry_to_wire(entry: ChtEntry) -> Any:
    return {"node": str(entry.node), "state": _state_to_wire(entry.state)}


def _entry_from_wire(data: Any) -> ChtEntry:
    return ChtEntry(parse_url(data["node"]), _state_from_wire(data["state"]))


def _report_to_wire(report: NodeReport) -> Any:
    encoded = {
        "entry": _entry_to_wire(report.entry),
        "disp": report.disposition.value,
        "new": [_entry_to_wire(e) for e in report.new_entries],
        "rows": [
            {"q": label, "h": list(row.header), "v": list(row.values)}
            for label, row in report.results
        ],
    }
    # Dispatch identity travels only when stamped, so legacy traffic
    # round-trips byte-identically.
    if report.dispatch_id:
        encoded["did"] = report.dispatch_id
    if report.epoch:
        encoded["ep"] = report.epoch
    if report.child_ids:
        encoded["cids"] = list(report.child_ids)
    return encoded


def _report_from_wire(data: Any) -> NodeReport:
    return NodeReport(
        entry=_entry_from_wire(data["entry"]),
        disposition=Disposition(data["disp"]),
        new_entries=tuple(_entry_from_wire(e) for e in data["new"]),
        results=tuple(
            (r["q"], ResultRow(tuple(r["h"]), tuple(r["v"]))) for r in data["rows"]
        ),
        dispatch_id=data.get("did", ""),
        epoch=data.get("ep", 0),
        child_ids=tuple(data.get("cids", ())),
    )


# --- top-level messages ----------------------------------------------------------

_KIND_CLONE = "clone"
_KIND_RESULT = "result"
_KIND_RELAY = "relay"
_KIND_FETCH = "fetch"
_KIND_DOC = "doc"
_KIND_BUNDLE = "clone-bundle"


def encode_message(message: object) -> bytes:
    """Serialize any WEBDIS payload to wire bytes."""
    if isinstance(message, CloneBundle):
        body = {
            "clones": [
                json.loads(encode_message(clone).decode("utf-8"))["b"]
                for clone in message.clones
            ]
        }
        envelope = {"v": WIRE_VERSION, "k": _KIND_BUNDLE, "b": body}
        return json.dumps(envelope, separators=(",", ":"), ensure_ascii=False).encode("utf-8")
    if isinstance(message, QueryClone):
        body = {
            "query": _webquery_to_wire(message.query),
            "step": message.step_index,
            "rem": pre_to_wire(message.rem),
            "dest": [str(u) for u in message.dest],
            "hist": list(message.history),
        }
        if message.dispatch_id:
            body["did"] = message.dispatch_id
        if message.epoch:
            body["ep"] = message.epoch
        kind = _KIND_CLONE
    elif isinstance(message, ResultMessage):
        body = {
            "qid": _qid_to_wire(message.qid),
            "reports": [_report_to_wire(r) for r in message.reports],
            "chan": message.kind,
        }
        kind = _KIND_RESULT
    elif isinstance(message, RelayMessage):
        body = {
            "path": list(message.remaining),
            "inner": json.loads(encode_message(message.inner).decode("utf-8"))["b"],
        }
        kind = _KIND_RELAY
    elif isinstance(message, FetchRequest):
        body = {
            "url": str(message.url),
            "site": message.reply_site,
            "port": message.reply_port,
            "id": message.request_id,
        }
        kind = _KIND_FETCH
    elif isinstance(message, DocResponse):
        body = {"url": str(message.url), "html": message.html, "id": message.request_id}
        kind = _KIND_DOC
    else:
        raise WireError(f"unencodable message type {type(message).__name__}")
    envelope = {"v": WIRE_VERSION, "k": kind, "b": body}
    return json.dumps(envelope, separators=(",", ":"), ensure_ascii=False).encode("utf-8")


def decode_message(data: bytes) -> object:
    """Inverse of :func:`encode_message`."""
    try:
        envelope = json.loads(data.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"undecodable wire data: {exc}") from exc
    if not isinstance(envelope, dict) or envelope.get("v") != WIRE_VERSION:
        raise WireError(f"unsupported wire version in {envelope!r}")
    kind = envelope.get("k")
    body = envelope.get("b")
    if kind == _KIND_CLONE:
        return QueryClone(
            query=_webquery_from_wire(body["query"]),
            step_index=body["step"],
            rem=pre_from_wire(body["rem"]),
            dest=tuple(parse_url(u) for u in body["dest"]),
            history=tuple(body["hist"]),
            dispatch_id=body.get("did", ""),
            epoch=body.get("ep", 0),
        )
    if kind == _KIND_RESULT:
        return ResultMessage(
            qid=_qid_from_wire(body["qid"]),
            reports=tuple(_report_from_wire(r) for r in body["reports"]),
            kind=body["chan"],
        )
    if kind == _KIND_RELAY:
        inner_bytes = json.dumps(
            {"v": WIRE_VERSION, "k": _KIND_RESULT, "b": body["inner"]},
            separators=(",", ":"),
            ensure_ascii=False,
        ).encode("utf-8")
        inner = decode_message(inner_bytes)
        assert isinstance(inner, ResultMessage)
        return RelayMessage(tuple(body["path"]), inner)
    if kind == _KIND_FETCH:
        return FetchRequest(
            parse_url(body["url"]), body["site"], body["port"], body["id"]
        )
    if kind == _KIND_DOC:
        return DocResponse(parse_url(body["url"]), body["html"], body["id"])
    if kind == _KIND_BUNDLE:
        clones = []
        for clone_body in body["clones"]:
            inner_bytes = json.dumps(
                {"v": WIRE_VERSION, "k": _KIND_CLONE, "b": clone_body},
                separators=(",", ":"),
                ensure_ascii=False,
            ).encode("utf-8")
            inner = decode_message(inner_bytes)
            assert isinstance(inner, QueryClone)
            clones.append(inner)
        return CloneBundle(tuple(clones))
    raise WireError(f"unknown message kind {kind!r}")


def wire_size(message: object) -> int:
    """Exact encoded size in bytes."""
    return len(encode_message(message))


# --- stream framing (real transports) ----------------------------------------


def encode_frame(body: bytes, max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Prefix ``body`` with its 4-byte big-endian length."""
    if len(body) > max_frame_bytes:
        raise WireError(
            f"frame of {len(body)} bytes exceeds the {max_frame_bytes}-byte limit"
        )
    return _FRAME_HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental inverse of :func:`encode_frame` over an arbitrary chunking.

    Feed raw stream chunks as they arrive — any split is legal: one byte at
    a time, several concatenated frames in one read, a header straddling two
    chunks.  Complete frame bodies come back in order.  A length prefix
    larger than ``max_frame_bytes`` raises :class:`WireError` immediately
    (the caller must abort the connection: the stream cannot be re-synced).
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def pending(self) -> bool:
        """True when the stream ended (or paused) mid-frame.

        At a clean point between frames the buffer is empty; bytes left
        over after the peer closed mean the connection was reset mid-frame
        and the partial message must be discarded, never delivered.
        """
        return bool(self._buffer)

    def feed(self, chunk: bytes) -> list[bytes]:
        """Consume ``chunk``; return every frame body it completed."""
        self._buffer.extend(chunk)
        frames: list[bytes] = []
        while len(self._buffer) >= _FRAME_HEADER.size:
            (length,) = _FRAME_HEADER.unpack_from(self._buffer)
            if length > self.max_frame_bytes:
                raise WireError(
                    f"incoming frame of {length} bytes exceeds the "
                    f"{self.max_frame_bytes}-byte limit"
                )
            end = _FRAME_HEADER.size + length
            if len(self._buffer) < end:
                break
            frames.append(bytes(self._buffer[_FRAME_HEADER.size:end]))
            del self._buffer[:end]
        return frames


# --- source-stamped envelopes (frame bodies) ---------------------------------

_ENVELOPE_SEPARATOR = b"\x00"


def encode_envelope(src: str, message: object) -> bytes:
    """One frame body: the source site, a NUL, then the encoded message.

    The simulator's delivery callback receives ``(src_site, payload)``; a
    TCP stream only carries bytes, so the source site travels in-band.  The
    site name is UTF-8 and never contains NUL (site names are host names).
    """
    stamp = src.encode("utf-8")
    if _ENVELOPE_SEPARATOR in stamp:
        raise WireError(f"source site {src!r} contains NUL")
    return stamp + _ENVELOPE_SEPARATOR + encode_message(message)


def envelope_source(body: bytes) -> str:
    """The source-site stamp of an envelope, without decoding the message.

    The chaos proxy uses this to apply partition rules (which are keyed by
    source site) while forwarding the message bytes untouched.
    """
    stamp, separator, __ = body.partition(_ENVELOPE_SEPARATOR)
    if not separator:
        raise WireError("envelope missing source stamp")
    try:
        return stamp.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"undecodable source stamp: {exc}") from exc


def decode_envelope(body: bytes) -> tuple[str, object]:
    """Inverse of :func:`encode_envelope`: ``(src_site, decoded message)``."""
    src = envelope_source(body)
    __, ___, message_bytes = body.partition(_ENVELOPE_SEPARATOR)
    return src, decode_message(message_bytes)
