"""Per-process cache of compiled node-query plans.

A WEBDIS query-server evaluates the same node-query over and over as a
web-query's clones arrive (paper §2.4); the DXQ line of work makes compiled
per-site plans a first-class protocol object for exactly this reason.  The
:class:`PlanCache` keys plans by the **structural hash** of the node-query
(:func:`~repro.relational.compile.structural_hash`) — qid-independent, so
overlapping queries from different tenants share one compilation the moment
their node-queries are structurally equal (EXP-P4 cross-query sharing).  A
plan is a pure function of the query structure, which is what makes the
qid-free key sound.

Collision safety: the digest is short, so every entry stores its full
:func:`~repro.relational.compile.structural_key` alongside the plan and a
hit is only served after the full key verifies.  A colliding probe is
treated as a miss (recompiled, entry replaced) and counted in
``collisions`` — a collision may cost a recompile but can never serve the
wrong plan.

Plans are **volatile process state**, exactly like the server's node-database
cache: a crash loses them (:meth:`~repro.core.server.QueryServer.crash`
calls :meth:`clear`), and the reborn process recompiles on first touch.
That is what makes the cache trivially coherent — a stale entry can never
be served across incarnations because nothing survives one.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from ..relational.compile import (
    CompiledPlan,
    compile_node_query,
    structural_hash,
    structural_key,
)
from ..relational.query import NodeQuery
from .webquery import QueryId

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.stats import TrafficStats

__all__ = ["PlanCache"]


class PlanCache:
    """Bounded LRU of :class:`CompiledPlan` objects, structurally keyed.

    Executor-independent: a cached plan carries the row runner and lazily
    lowers its columnar runner on first batch execution, so one shared
    entry amortizes compilation for whichever executor
    (``EngineConfig.executor``) the engine selects — and both lowerings are
    pure functions of the same structure, which keeps the structural key
    sound unchanged.
    """

    __slots__ = (
        "max_size", "hits", "misses", "shared_hits", "collisions",
        "_plans", "_stats", "_hash_fn", "_prelower",
    )

    def __init__(
        self,
        max_size: int = 256,
        stats: "TrafficStats | None" = None,
        hash_fn: Callable[[NodeQuery], str] | None = None,
        prelower: bool = False,
    ) -> None:
        if max_size < 1:
            raise ValueError("plan cache needs room for at least one plan")
        self.max_size = max_size
        #: When True, a cache miss also lowers the batch (columnar) runner
        #: (:meth:`~repro.relational.compile.CompiledPlan.lower_batch`) at
        #: insert time, so a columnar engine never pays lowering inside a
        #: clone's evaluation — the same once-per-structure amortization
        #: the row runner already gets from eager compilation.
        self._prelower = prelower
        self.hits = 0
        self.misses = 0
        #: Verified hits where the plan was compiled on behalf of a
        #: *different* query — the cross-query sharing EXP-P4 measures.
        self.shared_hits = 0
        #: Probes whose digest matched but whose full key did not; each one
        #: recompiled instead of serving the colliding entry's plan.
        self.collisions = 0
        self._stats = stats
        #: Injectable for the collision regression test; production always
        #: uses the real structural digest.
        self._hash_fn = structural_hash if hash_fn is None else hash_fn
        #: digest → (full structural key, origin qid, plan).
        self._plans: OrderedDict[str, tuple[str, QueryId | None, CompiledPlan]] = (
            OrderedDict()
        )

    def plan_for(self, query: NodeQuery, origin: QueryId | None = None) -> CompiledPlan:
        """The compiled plan for ``query``, shared across structural equals.

        Compiles on first touch; later touches are O(1) lookups.  ``origin``
        is the web-query asking — only used to tell a same-query re-hit from
        genuine cross-query sharing in the counters.
        """
        digest = self._hash_fn(query)
        full_key = structural_key(query)
        entry = self._plans.get(digest)
        if entry is not None:
            stored_key, stored_origin, plan = entry
            if stored_key == full_key:
                self._plans.move_to_end(digest)
                self.hits += 1
                if (
                    origin is not None
                    and stored_origin is not None
                    and origin != stored_origin
                ):
                    self.shared_hits += 1
                    if self._stats is not None:
                        self._stats.plans_shared += 1
                return plan
            # Digest collision between distinct structures: never serve the
            # stored plan.  Recompile and let the newcomer take the slot.
            self.collisions += 1
        self.misses += 1
        plan = compile_node_query(query)
        if self._prelower:
            plan.lower_batch()
        self._plans[digest] = (full_key, origin, plan)
        self._plans.move_to_end(digest)
        while len(self._plans) > self.max_size:
            self._plans.popitem(last=False)
        return plan

    def clear(self) -> None:
        """Drop every plan (process crash / incarnation boundary)."""
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, query: NodeQuery) -> bool:
        entry = self._plans.get(self._hash_fn(query))
        return entry is not None and entry[0] == structural_key(query)
