"""Per-process cache of compiled node-query plans.

A WEBDIS query-server evaluates the same node-query over and over as a
web-query's clones arrive (paper §2.4); the DXQ line of work makes compiled
per-site plans a first-class protocol object for exactly this reason.  The
:class:`PlanCache` keys plans ``(qid, step_index)`` — a web-query's
node-queries are immutable for its lifetime, so each is compiled at most
once per site *incarnation* no matter how many clones arrive.

Plans are **volatile process state**, exactly like the server's node-database
cache: a crash loses them (:meth:`~repro.core.server.QueryServer.crash`
calls :meth:`clear`), and the reborn process recompiles on first touch.
That is what makes the cache trivially coherent — a stale ``(qid, step)``
entry can never be served across incarnations because nothing survives one.
"""

from __future__ import annotations

from collections import OrderedDict

from ..relational.compile import CompiledPlan, compile_node_query
from ..relational.query import NodeQuery
from .webquery import QueryId

__all__ = ["PlanCache"]


class PlanCache:
    """Bounded LRU of :class:`CompiledPlan` objects keyed ``(qid, step)``."""

    __slots__ = ("max_size", "hits", "misses", "_plans")

    def __init__(self, max_size: int = 256) -> None:
        if max_size < 1:
            raise ValueError("plan cache needs room for at least one plan")
        self.max_size = max_size
        self.hits = 0
        self.misses = 0
        self._plans: OrderedDict[tuple[QueryId, int], CompiledPlan] = OrderedDict()

    def plan_for(self, qid: QueryId, step_index: int, query: NodeQuery) -> CompiledPlan:
        """The compiled plan for step ``step_index`` of query ``qid``.

        Compiles on first touch; later touches are O(1) lookups.  ``query``
        is the step's :class:`NodeQuery` (the compile input on a miss).
        """
        key = (qid, step_index)
        plan = self._plans.get(key)
        if plan is not None:
            self._plans.move_to_end(key)
            self.hits += 1
            return plan
        self.misses += 1
        plan = compile_node_query(query)
        self._plans[key] = plan
        while len(self._plans) > self.max_size:
            self._plans.popitem(last=False)
        return plan

    def clear(self) -> None:
        """Drop every plan (process crash / incarnation boundary)."""
        self._plans.clear()

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: tuple[QueryId, int]) -> bool:
        return key in self._plans
