"""Engine configuration and ablation toggles.

Defaults reproduce the paper's full design.  Each toggle disables one of the
paper's mechanisms or optimizations so the benches can quantify it
(DESIGN.md experiments EXP-C2..C4):

===========================  =====================================================
``log_table_enabled``        Section 3.1 duplicate suppression
``batch_per_site``           Section 3.2 item 4 — one clone per destination site
``combine_results_and_cht``  Section 3.2 item 3 — results + CHT in one message
``direct_result_return``     Section 2.6 — direct socket vs. path retrace
``strict_dead_end``          Figure 4's literal dead-end rule (see DESIGN.md §4.2)
===========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.reliable import RetryPolicy

__all__ = ["EngineConfig"]


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Behavioural switches plus the CPU cost model."""

    # --- protocol mechanisms ------------------------------------------------
    log_table_enabled: bool = True
    #: Log-table equivalence test: "paper" (exact + A*m·B subsumption,
    #: Section 3.1.1) or "language" (exact regular-language containment —
    #: an extension that also recognizes rewritten clones as duplicates).
    log_subsumption: str = "paper"
    batch_per_site: bool = True
    combine_results_and_cht: bool = True
    direct_result_return: bool = True
    strict_dead_end: bool = False

    #: Execute node-queries through compiled plans (per-process
    #: :class:`~repro.core.plancache.PlanCache`, cleared by crashes) instead
    #: of the tree-walking interpreter.  Result-identical by construction —
    #: the DST oracle cross-checks both paths — so the toggle exists for
    #: that cross-check and for the EXP-P1 interpreted-vs-compiled bench.
    compiled_plans: bool = True

    #: Frontier-batched clone processing (EXP-P2): when a server pumps its
    #: queue it gathers every pending clone of the head clone's query and
    #: runs a site-local BFS over the PRE × site-link-graph product —
    #: Local/Interior hops are absorbed into the same pump instead of each
    #: costing a queue→log-table→process→dispatch round trip through the
    #: SimClock.  One combined result+CHT message goes to the user-site per
    #: frontier and forwards to the same destination site coalesce into one
    #: :class:`~repro.core.messages.CloneBundle`.  Answers, CHT completion
    #: outcomes and log-table end states are identical with the knob on or
    #: off (the DST harness draws it per case and cross-checks); only event
    #: and message counts change.  Engages only under
    #: ``direct_result_return`` — the path-retrace alternative needs one
    #: history trail per hop, which per-hop messages carry and a combined
    #: frontier dispatch cannot.
    frontier_batching: bool = True

    #: Cross-query result caching (EXP-P4): each server keeps a
    #: :class:`~repro.core.resultmemo.ResultMemo` of ``(node, node-query
    #: structural hash) → rows`` and ``(node, PRE state) → forward fan-out``,
    #: consulted before evaluation so overlapping queries — the
    #: millions-of-users traffic shape — reuse each other's per-node work
    #: instead of re-parsing and re-evaluating the same popular pages.
    #: Reuse is subsumption-aware (an entry for a more general A*m·B state
    #: serves a contained one after a residual filter) and invalidation is
    #: explicit: a crash clears the memo with the rest of the process
    #: state, and the versioned epoch hook
    #: (:meth:`~repro.core.resultmemo.ResultMemo.advance_epoch`) is the
    #: seam for live-web mutation.  Answers are identical with the knob on
    #: or off (hypothesis equivalence suite + DST draw it per case); only
    #: costs change.
    cross_query_caching: bool = True

    #: Node-query executor (EXP-P5/P6): ``"columnar"`` (default) runs
    #: *every* plan level of a compiled plan as a batch operator
    #: (:mod:`repro.relational.columnar`) — a selection-vector batch of
    #: candidate bindings flows through per-level batch filters, hash-index
    #: probes on equality joins (:meth:`~repro.relational.table.Table.index`,
    #: cached per table and mirrored in ``index_builds``/``index_hits``),
    #: leaf conjunct kernels and batch projection, with tuples materialized
    #: only at projection time — and emits forwards from the precomputed
    #: per-``LinkType`` target selections; ``"row"`` keeps the
    #: row-at-a-time closure chain, byte-identical to the pre-columnar
    #: engine.  Rows, order and lazily-raised errors are identical on both
    #: executors: the batch pipeline only skips evaluations that are
    #: provably total, probes only when hash equality provably matches the
    #: interpreter's coerced ``=``, and on any non-provable case (or any
    #: batch exception) optimistically rolls back and replays the plan
    #: through the row path (hypothesis equivalence suite + the DST harness
    #: draw the knob per case); only wall-clock changes — the simulated
    #: cost model is executor-independent.  With ``compiled_plans=False``
    #: the interpreter runs regardless.
    executor: str = "columnar"

    #: Node-database storage backend: ``"memory"`` (the paper's temporary
    #: in-memory databases) or ``"sqlite"`` (same relations behind stdlib
    #: sqlite, :mod:`repro.model.storage`, for corpora that shouldn't live
    #: as Python tuples).  Both executors run on both backends.
    storage_backend: str = "memory"

    #: Ceiling on entries per server's cross-query ResultMemo (rows and
    #: fan-out entries combined, LRU-evicted; ``memo_evictions`` /
    #: ``memo_bytes_est`` account it).  None = unbounded (EXP-P4 behaviour).
    memo_capacity: int | None = None

    #: §7.1 migration path: when a clone's destination site refuses the
    #: query connection (not participating in WEBDIS), redirect the clone to
    #: the central helper at the user-site instead of retiring its entries.
    central_fallback: bool = False

    #: Reliability extension (DESIGN.md §4.6): retry transient send faults
    #: (HOST_DOWN / FAULT — never REFUSED) through a per-process
    #: ReliableChannel.  None disables retrying, reproducing the paper's
    #: single-attempt transport exactly.
    retry_policy: RetryPolicy | None = None

    #: Which transport backend :func:`~repro.core.engine.build_engine`
    #: assembles: ``"sim"`` (the deterministic SimClock simulator — the
    #: default, and what tier-1 tests and DST run on) or ``"asyncio"``
    #: (real TCP sockets on an asyncio event loop,
    #: :class:`~repro.core.aio_engine.AsyncioWebDisEngine`).
    transport: str = "sim"

    #: DEBUG ONLY — re-introduces the pre-epoch-fence recovery bug for the
    #: DST shrinker demo: ``reforward_pending`` re-dispatches pending stamped
    #: instances as *unstamped legacy* clones without superseding them, so
    #: the original report and the re-forward's report both retire what only
    #: one addition announced.  The legacy signed count for the entry goes
    #: negative and never recovers — the query hangs (or spuriously
    #: escalates PARTIAL).  Never enable outside the testing harness.
    debug_unfenced_recovery: bool = False

    #: Self-healing extension: run the CHT's O(1) accounting cross-check
    #: after every report message and recovery round, raising ProtocolError
    #: on the first inconsistency instead of silently hanging or
    #: double-counting.  Cheap enough to stay on by default; benches that
    #: want the last few percent can switch it off.
    debug_consistency_checks: bool = True

    # --- server resource management ------------------------------------------
    #: Query-processor threads per server.  The paper's design is a single
    #: thread that "sequentially processes the queue of pending web-queries"
    #: (§4.4); >1 is an ablation of that choice (bench EXP-X4).
    server_threads: int = 1

    # --- multi-tenant scheduling / admission control (EXP-P3) -----------------
    #: How a server orders its pending clones: ``"fair"`` keeps one
    #: run-queue per query and round-robins across queries, so a hot
    #: query's backlog cannot head-of-line-block other tenants; ``"fifo"``
    #: is the paper's §4.4 single sequential queue.  With a single query
    #: (or clones of only one query queued) the two are order-identical,
    #: so single-tenant runs are unaffected by the default.
    scheduler: str = "fair"
    #: Work-budget per pump step: at most this many clones of one query are
    #: processed (frontier-batched or not) before the scheduler moves on to
    #: the next query's run-queue.  Overflow clones go back on their own
    #: run-queue (``clones_requeued``).  None = unbounded (a frontier runs
    #: to exhaustion, as EXP-P2 measures).
    pump_budget: int | None = None
    #: Ceiling on one query's run-queue depth at one server.  Arriving
    #: clones that would exceed it are refused admission with the transient
    #: OVERLOADED outcome (sender backs off and retries).  None = unbounded.
    per_query_queue_limit: int | None = None
    #: Ceiling on the sum of all run-queue depths at one server.  Also the
    #: saturation threshold for load shedding.  None = unbounded.
    server_queue_limit: int | None = None
    #: Load shedding: if a server stays at/over ``server_queue_limit``
    #: continuously for this many simulated seconds, it evicts the query
    #: with the deepest run-queue, retracting its entries so the user-site
    #: degrades that query to PARTIAL instead of letting the site stall.
    #: None = never shed.
    shed_after: float | None = None
    #: Node databases retained per site (footnote 3); 0 = build-use-purge.
    db_cache_size: int = 0
    #: Purge log entries older than this many simulated seconds (None = keep).
    log_max_age: float | None = None
    #: How often each server runs the purge (None = never).
    log_purge_interval: float | None = None

    # --- CPU cost model (simulated seconds) -----------------------------------
    #: Fixed cost of handling one destination node.
    node_service_time: float = 0.002
    #: Cost of parsing one KiB of HTML into the virtual relations.
    parse_time_per_kb: float = 0.001
    #: Cost per virtual-relation tuple scanned during node-query evaluation.
    eval_time_per_tuple: float = 0.0001

    def __post_init__(self) -> None:
        if self.executor not in ("row", "columnar"):
            raise ValueError(f"unknown executor {self.executor!r}")
        if self.storage_backend not in ("memory", "sqlite"):
            raise ValueError(f"unknown storage backend {self.storage_backend!r}")

    def service_time(self, html_bytes: int, tuples_scanned: int) -> float:
        """CPU time to parse a document and evaluate node-queries over it."""
        return (
            self.node_service_time
            + self.parse_time_per_kb * (html_bytes / 1024.0)
            + self.eval_time_per_tuple * tuples_scanned
        )
