"""The WEBDIS engine façade.

``WebDisEngine`` assembles one complete deployment: a simulated
:class:`~repro.web.web.Web`, a :class:`~repro.net.network.Network` over a
:class:`~repro.net.simclock.SimClock`, one
:class:`~repro.core.server.QueryServer` per participating site, and a
:class:`~repro.core.client.UserSiteClient`.  Typical use::

    engine = WebDisEngine(build_campus_web(), trace=True)
    handle = engine.submit_disql(CAMPUS_QUERY_DISQL)
    engine.run()
    for row in handle.unique_rows("q2"):
        print(row)

``participating_sites`` restricts which sites run query-servers — sites
outside the set refuse query connections, which the hybrid engine
(:mod:`repro.baselines.hybrid`) uses to model the paper's Section 7.1
migration path.
"""

from __future__ import annotations

from typing import Iterable

from ..disql.translate import compile_disql
from ..errors import SimulationError
from ..net.network import Network, NetworkConfig
from ..net.simclock import SimClock
from ..net.stats import TrafficStats
from ..web.web import Web
from .client import QueryHandle, UserSiteClient
from .config import EngineConfig
from .server import QueryServer
from .trace import Tracer
from .webquery import WebQuery

__all__ = ["WebDisEngine", "DEFAULT_USER_SITE", "build_engine"]

DEFAULT_USER_SITE = "user.example"


def build_engine(web: Web, *, config: EngineConfig | None = None, **kwargs):
    """Assemble an engine for ``config.transport``.

    ``"sim"`` (default) returns the deterministic :class:`WebDisEngine`;
    ``"asyncio"`` returns an
    :class:`~repro.core.aio_engine.AsyncioWebDisEngine` — which must be
    constructed inside a running event loop and accepts the extra
    ``chaos=`` / ``port_map=`` keywords.  Extra keyword arguments pass
    through to the chosen engine class.
    """
    config = config if config is not None else EngineConfig()
    if config.transport == "sim":
        return WebDisEngine(web, config=config, **kwargs)
    if config.transport == "asyncio":
        from .aio_engine import AsyncioWebDisEngine

        return AsyncioWebDisEngine(web, config=config, **kwargs)
    raise SimulationError(
        f"unknown transport {config.transport!r}; expected 'sim' or 'asyncio'"
    )


class WebDisEngine:
    """One runnable WEBDIS deployment over a simulated web."""

    def __init__(
        self,
        web: Web,
        *,
        config: EngineConfig | None = None,
        net_config: NetworkConfig | None = None,
        user_site: str = DEFAULT_USER_SITE,
        user: str = "maya",
        participating_sites: Iterable[str] | None = None,
        trace: bool = False,
    ) -> None:
        self.web = web
        self.config = config if config is not None else EngineConfig()
        self.clock = SimClock()
        self.stats = TrafficStats()
        self.tracer = Tracer(enabled=trace)
        self.network = Network(self.clock, self.stats, net_config)
        self.user_site = user_site

        participating = (
            set(web.site_names)
            if participating_sites is None
            else {name.lower() for name in participating_sites}
        )
        self.network.register_site(user_site)
        self.servers: dict[str, QueryServer] = {}
        for site in web.site_names:
            self.network.register_site(site)
            if site in participating:
                self.servers[site] = QueryServer(
                    site, web, self.network, self.clock, self.config, self.stats, self.tracer
                )
        self.client = UserSiteClient(
            user_site, self.network, self.clock, self.stats, self.tracer, self.config, user
        )

    # -- submission ---------------------------------------------------------------

    def submit(self, query: WebQuery, on_result=None, on_complete=None) -> QueryHandle:
        """Submit a pre-built web-query (optionally with streaming hooks)."""
        return self.client.submit(query, on_result, on_complete)

    def submit_disql(
        self, text: str, on_result=None, on_complete=None, search_index=None
    ) -> QueryHandle:
        """Parse, translate and submit a DISQL query.

        ``search_index`` resolves ``index("keywords", k)`` StartNode sources
        (§1.1's automated pipeline, surfaced in the language).
        """
        return self.submit(
            compile_disql(text, search_index=search_index), on_result, on_complete
        )

    # -- execution ------------------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Drive the simulation until quiescence (or virtual time ``until``)."""
        return self.clock.run(until)

    def run_query(self, disql_text: str) -> QueryHandle:
        """Submit DISQL and run to completion — the one-call happy path."""
        handle = self.submit_disql(disql_text)
        self.run()
        return handle

    def cancel(self, handle: QueryHandle, at: float | None = None) -> None:
        """Cancel ``handle`` now, or schedule the cancellation at time ``at``."""
        if at is None:
            self.client.cancel(handle)
        else:
            self.clock.schedule_at(at, lambda: self.client.cancel(handle))

    # -- crash / recovery (§7.1 open problem) ------------------------------------

    def crash_server(self, site: str, at: float | None = None) -> None:
        """Crash ``site``'s query-server host now (or at time ``at``).

        The host goes down (connects to it return HOST_DOWN, in-flight
        deliveries to it are lost), its sockets are dropped, and the server
        process loses all volatile state: queue, log table, db cache and
        pending retries.  Queries whose clones die inside the crash are
        recovered by sender-side retries (the connect never succeeded), by
        the client's :meth:`~repro.core.client.UserSiteClient.reforward_pending`
        (the connect succeeded but the clone was lost), or by retraction.
        """
        site = site.lower()
        server = self._server_or_raise(site)
        if at is not None:
            self.clock.schedule_at(at, lambda: self.crash_server(site))
            return
        self.network.crash_site(site)
        server.crash()

    def restart_server(self, site: str, at: float | None = None) -> None:
        """Restart a crashed query-server now (or at time ``at``).

        The host comes back up and the server re-binds its query port with
        a blank state — exactly what a process restart provides.
        """
        site = site.lower()
        server = self._server_or_raise(site)
        if at is not None:
            self.clock.schedule_at(at, lambda: self.restart_server(site))
            return
        self.network.set_site_up(site)
        server.restart()

    def advance_memo_epoch(self) -> None:
        """Bump every server's cross-query memo epoch (EXP-P4 seam).

        Explicit, deployment-wide invalidation: nothing cached before the
        bump can ever be served after it.  This is the hook a future
        live-web mutation source drives; today tests and operators call it
        to model "the web changed" without crashing anything.
        """
        for server in self.servers.values():
            server.advance_memo_epoch()

    def _server_or_raise(self, site: str) -> QueryServer:
        server = self.servers.get(site)
        if server is None:
            raise SimulationError(f"no query-server at {site!r}")
        return server

    def apply_faults(self, plan) -> None:
        """Install a :class:`~repro.net.faults.FaultPlan` on this deployment."""
        plan.install(self.network, self)

    # -- introspection -----------------------------------------------------------------

    def server_for(self, site: str) -> QueryServer:
        return self.servers[site.lower()]

    def total_log_entries(self) -> int:
        return sum(server.log_table.entry_count() for server in self.servers.values())
