"""The Web-Query object and its travelling clones.

Paper Section 4.1: a Web-Query carries a QueryID — user name, user-site
address, result port, locally unique query number — plus the sequence of
node-queries and PREs.  As the query migrates, each hop manufactures
*clones*: copies of the remaining query with an updated PRE, destination
node list, and step position (Section 2.5).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import DisqlSemanticsError
from ..pre.ast import Pre
from ..pre.ops import pre_size
from ..relational.query import NodeQuery
from ..urlutils import Url
from .state import QueryState

__all__ = ["QueryId", "WebQueryStep", "WebQuery", "QueryClone"]


@dataclass(frozen=True, slots=True)
class QueryId:
    """Globally unique query identity + the user's return address (§4.1)."""

    user: str
    host: str
    port: int
    number: int

    def __str__(self) -> str:
        return f"{self.user}@{self.host}:{self.port}/{self.number}"

    def size_bytes(self) -> int:
        return len(self.user) + len(self.host) + 8


@dataclass(frozen=True, slots=True)
class WebQueryStep:
    """One ``p_i q_i`` pair: traverse ``pre``, then evaluate ``query``."""

    pre: Pre
    query: NodeQuery

    def size_bytes(self) -> int:
        return 4 * pre_size(self.pre) + len(str(self.query))


@dataclass(frozen=True, slots=True)
class WebQuery:
    """The full web-query ``Q = S p1 q1 p2 q2 ... pn qn``.

    Attributes:
        qid: identity and return address.
        start_urls: the StartNodes ``S``.
        steps: the alternating PRE / node-query sequence.
        select_header: the user-facing select list (qualified names across
            all steps), used to assemble the final result display.
    """

    qid: QueryId
    start_urls: tuple[Url, ...]
    steps: tuple[WebQueryStep, ...]
    select_header: tuple[str, ...] = ()
    #: Display directives applied by the user-site's result collector —
    #: they never travel in clones or affect node-query evaluation.
    display_distinct: bool = False
    #: ``(qualified attribute name, descending)`` sort keys.
    display_order: tuple[tuple[str, bool], ...] = ()
    #: Cap on displayed rows per node-query (None = unlimited).
    display_limit: int | None = None

    def __post_init__(self) -> None:
        if not self.start_urls:
            raise DisqlSemanticsError("web-query has no StartNodes")
        if not self.steps:
            raise DisqlSemanticsError("web-query has no node-queries")

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def step_label(self, index: int) -> str:
        return self.steps[index].query.label

    def initial_state(self) -> QueryState:
        return QueryState(len(self.steps), self.steps[0].pre)

    def with_qid(self, qid: QueryId) -> "WebQuery":
        return replace(self, qid=qid)


@dataclass(frozen=True, slots=True)
class QueryClone:
    """One travelling copy of a web-query.

    A clone is addressed to a set of destination *nodes* that all live on one
    *site* (optimization 4 of Section 3.2: one clone per remote site, with
    the node list inside).  ``step_index`` is the next node-query to
    evaluate; ``rem`` is the PRE remaining before that evaluation.
    """

    query: WebQuery
    step_index: int
    rem: Pre
    dest: tuple[Url, ...]
    #: Server sites visited before this hop — populated only under the
    #: path-retrace result-return policy (§2.6's rejected alternative),
    #: which is exactly the "cannot forget the past" storage cost the
    #: paper criticizes.  Empty under direct return.
    history: tuple[str, ...] = ()
    #: Dispatch identity, minted by whoever forwards this clone (the
    #: user-site client or a server) and echoed back in the resulting
    #: :class:`~repro.core.messages.NodeReport` so the CHT can retire the
    #: clone's entries idempotently.  Empty = unstamped (legacy accounting).
    dispatch_id: str = ""
    #: Recovery epoch of the query when this dispatch chain was created;
    #: children inherit it, re-forwards bump it.
    epoch: int = 0

    def __post_init__(self) -> None:
        if not self.dest:
            raise DisqlSemanticsError("clone has no destination nodes")
        sites = {url.host for url in self.dest}
        if len(sites) != 1:
            raise DisqlSemanticsError(f"clone spans multiple sites: {sorted(sites)}")
        if not 0 <= self.step_index < len(self.query.steps):
            raise DisqlSemanticsError(
                f"clone step index {self.step_index} out of range"
            )

    @property
    def site(self) -> str:
        """The destination site (all ``dest`` nodes share it)."""
        return self.dest[0].host

    @property
    def state(self) -> QueryState:
        return QueryState(len(self.query.steps) - self.step_index, self.rem)

    @property
    def kind(self) -> str:
        return "query"

    def with_identity(self, dispatch_id: str, epoch: int) -> "QueryClone":
        """A copy stamped with a dispatch identity (see ``dispatch_id``)."""
        return replace(self, dispatch_id=dispatch_id, epoch=epoch)

    def size_bytes(self) -> int:
        """Serialized size: qid + remaining steps + current PRE + node list.

        Only the *remaining* node-queries travel — the paper notes that a
        clone is the "rest of the query".
        """
        remaining = sum(step.size_bytes() for step in self.query.steps[self.step_index :])
        dests = sum(len(str(url)) for url in self.dest)
        trail = sum(len(site) + 2 for site in self.history)
        identity = len(self.dispatch_id) + 4
        return (
            self.query.qid.size_bytes() + remaining + 4 * pre_size(self.rem)
            + dests + trail + identity + 16
        )
