"""The per-site WEBDIS query-server daemon.

Implements the algorithms of Figures 3 and 4 plus the optimizations of
Section 3: the node-query log table, per-site clone batching, combined
result + CHT shipping, and passive termination.  Each server processes one
clone (or frontier) at a time under the engine's CPU cost model; *which*
pending clone runs next is the scheduler's choice
(:mod:`repro.core.scheduler`): the paper's §4.4 single FIFO under
``scheduler="fifo"``, or per-query run-queues served round-robin under
``"fair"`` (the default) so one hot query cannot head-of-line-block other
tenants at the site.

Multi-tenant overload control (EXP-P3): per-query and per-server queue
ceilings (``per_query_queue_limit`` / ``server_queue_limit``) are enforced
twice — once at the transport layer via an admission probe, where an
over-limit clone message is refused with the transient OVERLOADED outcome
(the sender's ReliableChannel backs off and retries: backpressure), and
once at delivery, where a clone losing the admission race is shed with an
OVERLOADED retraction.  A server continuously saturated for ``shed_after``
seconds evicts the query with the deepest run-queue the same way, so the
victim degrades to PARTIAL with per-node coverage attribution instead of
starving every other tenant.

Frontier batching (EXP-P2, ``EngineConfig.frontier_batching``): a pump step
gathers every queued clone of one query and traverses the site-local
PRE × link-graph product as a single frontier
(:func:`~repro.core.processing.process_frontier`) — Local/Interior hops are
absorbed synchronously, log-table admission is bulk per clone, the whole
frontier's reports ship in **one** combined result+CHT message (BFS order,
parents before children, so the user-site CHT sees announce-before-retire),
and clone forwards coalesce into one :class:`CloneBundle` per destination
site.  Costs change — far fewer SimClock events and network messages — but
answers, CHT outcomes and log-table end states are identical with the knob
on or off.

Protocol ordering (Section 2.7.1, deliberately preserved): the result/CHT
message is dispatched to the user-site **first**; clones are forwarded only
when that dispatch succeeds.  A failed dispatch (user closed the result
socket — termination, Section 2.8) purges the query at this server.

One engineering extension beyond the paper (DESIGN.md §4): when a clone
*forward* fails — the destination site is unreachable or refuses — the
server sends a supplementary report retiring the affected CHT entries, so
completion detection stays exact instead of hanging.

Reliability extension (DESIGN.md §4.6): result dispatch and clone forwards
are routed through a :class:`~repro.net.reliable.ReliableChannel`.  Only
*transient* outcomes (HOST_DOWN / FAULT) are retried; a REFUSED connect
stays final because it is the passive-termination signal.  The Figure-3
ordering survives retries: clones are forwarded only once the result
dispatch has actually DELIVERED, however many attempts that took.  The
server also supports crash/recovery: :meth:`crash` loses the queue, log
table and db cache (and abandons pending retries); :meth:`restart` re-binds
the query port with a blank process state.
"""

from __future__ import annotations

import itertools
from collections import Counter
from dataclasses import replace

from ..model.database import DatabaseConstructor, build_documents_table
from ..net.network import HELPER_PORT, QUERY_PORT, Network, SendOutcome
from ..net.reliable import ReliableChannel
from ..net.simclock import SimClock
from ..net.stats import TrafficStats
from ..pre.ast import Pre
from ..urlutils import Url
from ..web.web import Web
from .config import EngineConfig
from .logtable import LogAction, NodeQueryLogTable
from .messages import ChtEntry, CloneBundle, Disposition, NodeReport, RelayMessage, ResultMessage
from .plancache import PlanCache
from .processing import Forward, process_frontier, process_node
from .resultmemo import ResultMemo
from .scheduler import make_scheduler
from .trace import Tracer
from .webquery import QueryClone, QueryId, WebQuery

__all__ = ["QueryServer"]


class QueryServer:
    """One site's query-server daemon, listening on :data:`QUERY_PORT`."""

    def __init__(
        self,
        site: str,
        web: Web,
        network: Network,
        clock: SimClock,
        config: EngineConfig,
        stats: TrafficStats,
        tracer: Tracer,
    ) -> None:
        self.site = site
        self.web = web
        self.network = network
        self.clock = clock
        self.config = config
        self.stats = stats
        self.tracer = tracer
        self.constructor = DatabaseConstructor(
            config.db_cache_size, storage=config.storage_backend, stats=stats
        )
        self.log_table = NodeQueryLogTable(config.log_subsumption)
        #: Compiled node-query plans, structurally keyed so tenants share
        #: compilations — volatile process state, cleared by crash()
        #: exactly like the db cache.  Under the columnar executor the
        #: batch pipeline is lowered at compile time (prelower) so the
        #: first clone's evaluation doesn't pay lowering on the hot path.
        self.plans = PlanCache(stats=stats, prelower=config.executor == "columnar")
        #: Cross-query memo of per-node rows and forward fan-outs (EXP-P4);
        #: None when the knob is off.  Volatile like the plan cache, plus
        #: an explicit epoch hook for future live-web mutation.
        self.memo = (
            ResultMemo(stats, capacity=config.memo_capacity)
            if config.cross_query_caching
            else None
        )
        self.channel = ReliableChannel(
            network, clock, config.retry_policy,
            name=f"server:{site}", trace=self._trace_transport,
        )
        #: Pending clones, behind the scheduler seam: per-query run-queues
        #: round-robined under ``scheduler="fair"``, the paper's single
        #: FIFO under ``"fifo"`` — both enforcing the same queue ceilings.
        self._scheduler = make_scheduler(config)
        self._site_documents = None  # lazy §7.1 multi-document table
        self._active_workers = 0
        self._purged: set[QueryId] = set()
        self._last_purge = 0.0
        #: When the queue total first reached ``server_queue_limit`` and has
        #: stayed there since; None while below the limit.  Drives shedding.
        self._saturated_since: float | None = None
        #: Bumped by crash(): callbacks scheduled by a dead process must not
        #: touch the reborn one's state.
        self._epoch = 0
        #: Mints dispatch identities for forwarded clones.  Deliberately
        #: *not* reset by crash(): identities must stay unique across the
        #: server's incarnations or a reborn server could mint an id that
        #: collides with a pre-crash dispatch still tracked by a user-site.
        self._dispatch_serial = itertools.count(1)
        network.listen(site, QUERY_PORT, self._on_message)
        if (
            config.per_query_queue_limit is not None
            or config.server_queue_limit is not None
        ):
            # Admission control: refuse clone traffic at the transport layer
            # (OVERLOADED, retryable-with-backoff) before it is delivered.
            # Guarded getattr: minimal Transport fakes need not implement it.
            set_admission = getattr(network, "set_admission", None)
            if set_admission is not None:
                set_admission(site, QUERY_PORT, self._admission_probe)

    def _mint_dispatch_id(self) -> str:
        return f"s{next(self._dispatch_serial)}@{self.site}"

    # -- crash / recovery (§7.1 open problem) ------------------------------------

    def crash(self) -> None:
        """The server process dies: all volatile state is lost.

        The queue, log table, db cache, site-document table and purge memory
        are gone; pending retries are abandoned; in-progress processing
        never completes.  The caller (the engine) is responsible for the
        network side: marking the site down and dropping its sockets.
        """
        self._epoch += 1
        lost = self._scheduler.drain()
        if lost:
            # Queued clones from *every* tenant die with the process; the
            # count lets the oracle attribute PARTIAL coverage afterwards.
            self.stats.clones_lost_in_crash += len(lost)
        self._saturated_since = None
        self._active_workers = 0
        self.log_table = NodeQueryLogTable(self.config.log_subsumption)
        self.constructor = DatabaseConstructor(
            self.config.db_cache_size,
            storage=self.config.storage_backend,
            stats=self.stats,
        )
        self.plans.clear()
        if self.memo is not None:
            self.memo.clear()
        self._site_documents = None
        self._purged = set()
        self._last_purge = 0.0
        self.channel.reset()

    def restart(self) -> None:
        """Re-bind the query port with a blank process state.

        Purge memory was lost with the crash; termination is re-discovered
        the usual way (a REFUSED result dispatch).
        """
        if not self.network.is_listening(self.site, QUERY_PORT):
            self.network.listen(self.site, QUERY_PORT, self._on_message)

    def advance_memo_epoch(self) -> None:
        """Invalidate the cross-query memo without a crash.

        The versioned epoch hook: the seam a live-web mutation source will
        drive when this site's pages change under a running system.  No-op
        with ``cross_query_caching`` off.
        """
        if self.memo is not None:
            self.memo.advance_epoch()

    # -- ingress ----------------------------------------------------------------

    def _on_message(self, src: str, payload: object) -> None:
        if isinstance(payload, RelayMessage):
            self._relay(payload)
            return
        if isinstance(payload, CloneBundle):
            # Coalesced dispatch: unpack in order; each clone keeps its own
            # dispatch identity, so accounting matches separate messages.
            for clone in payload.clones:
                self._admit(clone)
            self._pump()
            return
        assert isinstance(payload, QueryClone), f"unexpected payload {payload!r}"
        self._admit(payload)
        self._pump()

    def _relay(self, message: RelayMessage) -> None:
        """Forward a retracing result message one hop back (§2.6 alternative).

        Relaying loads this server — the very drawback the paper cites —
        which we account as processing time without blocking the query queue.
        """
        self.stats.record_processing(self.site, self.config.node_service_time)
        qid = message.inner.qid
        if message.remaining:
            next_hop, rest = message.remaining[0], message.remaining[1:]
            self.channel.send(self.site, next_hop, QUERY_PORT, RelayMessage(rest, message.inner))
        else:
            self.channel.send(self.site, qid.host, qid.port, message.inner)

    def enqueue_local(self, clone: QueryClone) -> None:
        """Accept a clone forwarded within this site (no network message)."""
        self.stats.local_hops += 1
        self._admit(clone)
        self._pump()

    def _admit(self, clone: QueryClone) -> None:
        """Queue one arriving clone, or shed it if a ceiling refuses it.

        The transport-level admission probe keeps most over-limit traffic
        from ever being delivered; this delivery-time re-check catches the
        race where the queue filled between connect and delivery (and
        local enqueues, which never cross the transport).  A refused clone
        is shed with a retraction so its CHT entries retire instead of
        hanging the query.
        """
        if self._scheduler.push(clone):
            self._update_saturation()
            return
        self._shed_clones(clone.query.qid, [clone])

    def _admission_probe(self, __: str, payload: object) -> bool:
        """Transport admission probe for :data:`QUERY_PORT` (see __init__)."""
        if isinstance(payload, CloneBundle):
            counts: Counter = Counter(clone.query.qid for clone in payload.clones)
        elif isinstance(payload, QueryClone):
            counts = Counter((payload.query.qid,))
        else:
            return True  # relay/control traffic is never refused admission
        return self._scheduler.would_admit(counts)

    @property
    def queue_depth(self) -> int:
        return self._scheduler.total

    def queue_depths(self) -> dict[QueryId, int]:
        """Per-query run-queue depths (only queries with queued clones)."""
        return self._scheduler.depths()

    @property
    def peak_query_queue_depth(self) -> int:
        """High-water mark of any one query's run-queue depth — audited by
        the DST ceiling invariant against ``per_query_queue_limit``."""
        return self._scheduler.max_query_depth_seen

    # -- scheduled processing loop -----------------------------------------------

    @property
    def _frontier_enabled(self) -> bool:
        """Frontier batching needs direct result return: a combined frontier
        dispatch cannot carry one retrace trail per hop (§2.6 alternative)."""
        return self.config.frontier_batching and self.config.direct_result_return

    def _pump(self) -> None:
        while self._active_workers < self.config.server_threads:
            clone = self._scheduler.pop()
            if clone is None:
                break
            self._active_workers += 1
            self._maybe_purge_log()
            if self._frontier_enabled:
                reports, clones, service = self._process_frontier(clone)
            else:
                reports, clones, service = self._process(clone)
            self.stats.record_processing(self.site, service)
            epoch = self._epoch
            self.clock.schedule(
                service,
                lambda c=clone, r=reports, f=clones, e=epoch: self._complete(c, r, f, e),
            )
        self._update_saturation()

    def _process_frontier(
        self, head: QueryClone
    ) -> tuple[list[NodeReport], list[QueryClone], float]:
        """One frontier-batched pump step (EXP-P2).

        Seeds the frontier with ``head`` plus every queued clone of the same
        query (they would each have cost their own pump round trip), then
        lets :func:`~repro.core.processing.process_frontier` run the
        site-local BFS, absorbing Local/Interior hops synchronously.  One
        combined report list and one remote-clone list come back; the
        caller pays the summed service time with a single SimClock event.

        ``pump_budget`` bounds the whole frontier — seeds taken plus hops
        absorbed — so under multi-tenant load one query's frontier cannot
        monopolize the pump; overflow continuations come back as same-site
        remote clones and re-enter this query's run-queue behind the other
        tenants' turns.
        """
        budget = self.config.pump_budget
        qid = head.query.qid
        seeds = [head]
        seeds.extend(
            self._scheduler.take_same_query(qid, None if budget is None else budget - 1)
        )
        if budget is not None:
            result = process_frontier(seeds, self.site, self._process, max_clones=budget)
        else:
            result = process_frontier(seeds, self.site, self._process)
        if result.clones_processed > 1:
            self.stats.frontier_batches += 1
            self.stats.frontier_clones_batched += result.clones_processed
            if self.tracer.enabled:
                self.tracer.record(
                    self.clock.now, "-", self.site, "-", "-", "frontier-batched",
                    detail=(
                        f"{result.clones_processed} clones"
                        f" ({result.local_absorbed} local hops absorbed)"
                    ),
                )
        self.stats.local_hops += result.local_absorbed
        return result.reports, result.remote, result.service

    def _maybe_purge_log(self) -> None:
        interval = self.config.log_purge_interval
        if interval is None or self.config.log_max_age is None:
            return
        now = self.clock.now
        if now - self._last_purge >= interval:
            self._last_purge = now
            self.log_table.purge_older_than(now - self.config.log_max_age)

    # -- the Figure 3 algorithm ------------------------------------------------

    def _process(
        self, clone: QueryClone
    ) -> tuple[list[NodeReport], list[QueryClone], float]:
        now = self.clock.now
        qid = clone.query.qid
        if qid in self._purged:
            # Passive termination already observed here; drop silently.
            self._trace_nodes(clone, "purged", Disposition.PURGED)
            return [], [], self.config.node_service_time

        reports: list[NodeReport] = []
        all_forwards: list[Forward] = []
        service = 0.0
        plan_for = self._plan_for(clone.query)
        tracing = self.tracer.enabled

        # Bulk admission: one log-table pass for the clone's whole node
        # list (all nodes share the clone's state, so the pass can share
        # its subsumption comparisons).  Node order — and therefore every
        # drop/rewrite outcome — is the per-node sequence.
        observations = (
            self.log_table.observe_bulk(clone.dest, qid, clone.state, now)
            if self.config.log_table_enabled
            else None
        )

        for index, node in enumerate(clone.dest):
            entry = ChtEntry(node, clone.state)
            rem: Pre = clone.rem
            disposition = Disposition.PROCESSED

            if observations is not None:
                observation = observations[index]
                if observation.action is LogAction.DROP:
                    self.stats.duplicates_dropped += 1
                    service += self.config.node_service_time
                    if tracing:
                        self.tracer.record(
                            now, str(node), self.site, clone.state, "-", "duplicate-dropped"
                        )
                    reports.append(NodeReport(entry, Disposition.DUPLICATE))
                    continue
                if observation.action is LogAction.REWRITE:
                    assert observation.rewritten_rem is not None
                    rem = observation.rewritten_rem
                    disposition = Disposition.REWRITTEN
                    self.stats.queries_rewritten += 1
                    if tracing:
                        self.tracer.record(
                            now, str(node), self.site, clone.state, "-", "rewritten",
                            detail=f"rem -> {rem}",
                        )

            html = self.web.html_for(node)
            if html is None:
                service += self.config.node_service_time
                if tracing:
                    self.tracer.record(
                        now, str(node), self.site, clone.state, "-", "missing"
                    )
                reports.append(NodeReport(entry, Disposition.MISSING))
                continue

            if self.memo is None:
                database = self.constructor.construct(node, html)
                self.stats.documents_parsed += 1
                outcome = process_node(
                    node, database, clone.query, clone.step_index, rem, self.config,
                    site_documents=self._site_documents_for(clone.query),
                    plan_for=plan_for,
                )
                service += self.config.service_time(len(html), outcome.tuples_scanned)
            else:
                # Cross-query caching (EXP-P4): the database is built lazily
                # — a node fully served from the memo never parses its
                # document, and is charged only the base per-node service
                # time (like a duplicate drop) instead of parse + scan cost.
                built: list = []

                def provider(node=node, html=html, built=built):
                    if not built:
                        built.append(self.constructor.construct(node, html))
                        self.stats.documents_parsed += 1
                    return built[0]

                outcome = process_node(
                    node, provider, clone.query, clone.step_index, rem, self.config,
                    site_documents=self._site_documents_for(clone.query),
                    plan_for=plan_for,
                    memo=self.memo.view(node, clone.query),
                )
                if built:
                    service += self.config.service_time(
                        len(html), outcome.tuples_scanned
                    )
                else:
                    service += self.config.node_service_time
            self.stats.node_queries_evaluated += len(outcome.evaluations)
            self._trace_outcome(now, node, clone, outcome)

            new_forwards = self._dedupe_forwards(outcome.forwards, all_forwards)
            new_entries = tuple(
                ChtEntry(fw.target, self._forward_state(clone, fw)) for fw in new_forwards
            )
            all_forwards.extend(new_forwards)
            reports.append(NodeReport(entry, disposition, new_entries, tuple(outcome.results)))

        clones = self._build_clones(clone, all_forwards)
        return self._stamp_identities(clone, reports, clones), clones, service

    def _stamp_identities(
        self,
        clone: QueryClone,
        reports: list[NodeReport],
        clones: list[QueryClone],
    ) -> list[NodeReport]:
        """Echo the parent's dispatch identity and mint the children's.

        Each outgoing clone gets a fresh dispatch id (epoch inherited from
        the parent); the reports announce it via ``child_ids`` so the
        user-site registers exactly the identity the child's own report will
        later echo.  Unstamped parents (legacy traffic) stay unstamped
        throughout.  Mutates ``clones`` in place so the stamped copies are
        the ones forwarded.
        """
        if not clone.dispatch_id:
            return reports
        child_of: dict[tuple[Url, object], str] = {}
        for index, child in enumerate(clones):
            stamped = child.with_identity(self._mint_dispatch_id(), clone.epoch)
            clones[index] = stamped
            for node in stamped.dest:
                child_of[(node, stamped.state)] = stamped.dispatch_id
        return [
            replace(
                report,
                dispatch_id=clone.dispatch_id,
                epoch=clone.epoch,
                child_ids=tuple(
                    child_of.get((entry.node, entry.state), "")
                    for entry in report.new_entries
                ),
            )
            for report in reports
        ]

    def _plan_for(self, query: WebQuery):
        """Bind the plan cache to ``query``: a step-index → compiled-plan map.

        Returns None when compiled plans are disabled, which makes
        :func:`~repro.core.processing.process_node` fall back to the
        interpreter (the EXP-P1 ablation / DST cross-check path).
        """
        if not self.config.compiled_plans:
            return None
        qid = query.qid
        steps = query.steps
        cache = self.plans
        return lambda k: cache.plan_for(steps[k].query, qid)

    def _site_documents_for(self, query):
        """The site-spanning DOCUMENT table, built lazily on first need.

        Only queries with sitewide document aliases (§7.1 multi-document
        node-queries) pay for it; the build is charged once per server.
        """
        if not any(step.query.sitewide_aliases for step in query.steps):
            return None
        if self._site_documents is None:
            site = self.web.site(self.site)
            pages = [
                (site.url_of(path), page.html)
                for path, page in sorted(site.pages.items())
            ]
            self._site_documents = build_documents_table(pages, stats=self.stats)
            self.stats.documents_parsed += len(pages)
        return self._site_documents

    @staticmethod
    def _dedupe_forwards(
        candidates: list[Forward], already: list[Forward]
    ) -> list[Forward]:
        """Keep only forwards not yet emitted during this clone's processing.

        Without this, two destination nodes at one site pointing at the same
        target would add two CHT entries for a single eventual visit and the
        query would never be detected complete.
        """
        seen = set(already)
        fresh: list[Forward] = []
        for forward in candidates:
            if forward not in seen:
                seen.add(forward)
                fresh.append(forward)
        return fresh

    def _forward_state(self, clone: QueryClone, forward: Forward):
        return QueryClone(
            clone.query, forward.step_index, forward.rem, (forward.target,)
        ).state

    def _build_clones(
        self, clone: QueryClone, forwards: list[Forward]
    ) -> list[QueryClone]:
        """Group forwards into clones (optimization 4: one per site & state).

        With a ``pump_budget`` configured, each group's node list is further
        chunked to at most ``pump_budget`` nodes per clone: a whole BFS
        layer coalesced into one fat clone would otherwise be indivisible —
        one pump would process every node of the layer no matter the
        budget, and the fair scheduler would have nothing to interleave.
        Chunks keep the (site, state) grouping, travel in the same bundle,
        and each carries its own dispatch identity, so CHT accounting is
        exactly as without chunking.
        """
        groups: dict[tuple[str, int, Pre], list[Url]] = {}
        for forward in forwards:
            if self.config.batch_per_site:
                key = (forward.target.host, forward.step_index, forward.rem)
            else:
                key = (str(forward.target), forward.step_index, forward.rem)  # type: ignore[assignment]
            groups.setdefault(key, []).append(forward.target)
        if self.config.direct_result_return:
            history: tuple[str, ...] = ()
        elif clone.history and clone.history[-1] == self.site:
            history = clone.history  # local hop: the retrace chain is unchanged
        else:
            history = clone.history + (self.site,)
        budget = self.config.pump_budget
        clones = []
        for (__, step_index, rem), targets in groups.items():
            deduped = tuple(dict.fromkeys(targets))
            if budget is None or len(deduped) <= budget:
                clones.append(QueryClone(clone.query, step_index, rem, deduped, history))
            else:
                for start in range(0, len(deduped), budget):
                    clones.append(
                        QueryClone(
                            clone.query, step_index, rem,
                            deduped[start:start + budget], history,
                        )
                    )
        return clones

    # -- completion: dispatch results first, then forward (Figure 3, 17-20) ----

    def _complete(
        self,
        clone: QueryClone,
        reports: list[NodeReport],
        clones: list[QueryClone],
        epoch: int,
    ) -> None:
        if epoch != self._epoch:
            return  # the process that started this work crashed; work is lost
        try:
            if reports:
                self._dispatch_and_forward(clone, reports, clones)
        finally:
            self._active_workers -= 1
            self._pump()

    def _dispatch_and_forward(
        self,
        clone: QueryClone,
        reports: list[NodeReport],
        clones: list[QueryClone],
    ) -> None:
        qid = clone.query.qid
        epoch = self._epoch
        if self.config.combine_results_and_cht:
            self._dispatch_report(
                clone,
                ResultMessage(qid, tuple(reports)),
                lambda outcome: self._after_dispatch(outcome, clone, clones, epoch),
            )
            return
        # Ablation: CHT bookkeeping and result rows travel separately.
        cht_half = tuple(replace(r, results=()) for r in reports)
        data_half = tuple(
            NodeReport(
                r.entry, Disposition.DATA_ONLY, (), r.results,
                dispatch_id=r.dispatch_id, epoch=r.epoch,
            )
            for r in reports
            if r.results
        )

        def after_cht(outcome: SendOutcome) -> None:
            if outcome.delivered and data_half:
                # Pure payload message: loss doesn't affect completion keys.
                self._dispatch_report(clone, ResultMessage(qid, data_half))
            self._after_dispatch(outcome, clone, clones, epoch)

        self._dispatch_report(clone, ResultMessage(qid, cht_half, kind="cht"), after_cht)

    def _after_dispatch(
        self,
        outcome: SendOutcome,
        clone: QueryClone,
        clones: list[QueryClone],
        epoch: int,
    ) -> None:
        """Figure-3 ordering: forward clones only once the dispatch DELIVERED.

        REFUSED means the user closed the result socket — passive
        termination.  A transient outcome arriving here has already been
        through the channel's retry budget: the user-site is effectively
        unreachable, so the query is purged locally too (its entries will be
        re-resolved if the user's stall recovery re-forwards them).  An
        ABANDONED outcome (or any outcome observed after a crash bumped the
        epoch) belongs to a dead incarnation and must not touch this one.
        """
        if epoch != self._epoch or outcome is SendOutcome.ABANDONED:
            return
        if outcome.delivered:
            self._forward_all(clones)
            return
        if not outcome.refused:
            self._trace_transport("dispatch-exhausted", str(clone.query.qid))
        self._purge(clone)

    def _send_to_user(self, qid: QueryId, message: ResultMessage, on_final=None) -> SendOutcome:
        return self.channel.send(self.site, qid.host, qid.port, message, on_final)

    def _dispatch_report(
        self, clone: QueryClone, message: ResultMessage, on_final=None
    ) -> SendOutcome:
        """Send a report either directly (§2.6 design) or by path retrace.

        ``on_final`` observes the channel's final outcome — DELIVERED,
        REFUSED, or the last transient failure after retry exhaustion.
        Under retrace, "delivered" only means the *first backward hop*
        accepted the message — the weaker guarantee the paper criticizes
        (termination no longer propagates to this server).
        """
        qid = clone.query.qid
        if self.config.direct_result_return or not clone.history:
            return self._send_to_user(qid, message, on_final)
        trail = clone.history
        first_hop, rest = trail[-1], tuple(reversed(trail[:-1]))
        return self.channel.send(
            self.site, first_hop, QUERY_PORT, RelayMessage(rest, message), on_final
        )

    def _forward_all(self, clones: list[QueryClone]) -> None:
        """Forward a completed pump's clones — coalescing under batching.

        With frontier batching on, every clone bound for one destination
        site travels in a single :class:`CloneBundle` (optimization 4 of
        §3.2 taken one step further: one *message* per site per frontier,
        whatever mix of states it carries).  Same-site clones — frontier
        overflow continuations — re-enter the local queue.  With batching
        off the per-clone sends are preserved exactly.
        """
        if not self._frontier_enabled:
            for fclone in clones:
                self._forward(fclone)
            return
        groups: dict[str, list[QueryClone]] = {}
        for fclone in clones:
            if fclone.site == self.site:
                # Frontier overflow continuation (pump_budget exhausted):
                # back onto its own run-queue, behind other tenants' turns.
                self.stats.clones_requeued += 1
                self.enqueue_local(fclone)
            else:
                groups.setdefault(fclone.site, []).append(fclone)
        for group in groups.values():
            if len(group) == 1:
                self._forward(group[0])
            else:
                self._forward_bundle(CloneBundle(tuple(group)))

    def _forward_bundle(self, bundle: CloneBundle) -> None:
        epoch = self._epoch

        def after_forward(outcome: SendOutcome) -> None:
            if epoch != self._epoch or outcome is SendOutcome.ABANDONED:
                return
            if outcome.delivered:
                self.stats.clones_forwarded += len(bundle.clones)
                self.stats.clone_bundles_sent += 1
                self.stats.clones_bundled += len(bundle.clones)
            else:
                # Per-clone failure handling: retractions (or the central
                # fallback) resolve each inner clone's entries exactly as a
                # separately-travelling clone's failure would.
                for fclone in bundle.clones:
                    self._forward_failed(fclone)

        self.channel.send(self.site, bundle.site, QUERY_PORT, bundle, after_forward)

    def _forward(self, fclone: QueryClone) -> None:
        if fclone.site == self.site:
            self.enqueue_local(fclone)
            return
        epoch = self._epoch

        def after_forward(outcome: SendOutcome) -> None:
            if epoch != self._epoch or outcome is SendOutcome.ABANDONED:
                return  # a dead incarnation's send; the reborn process moved on
            if outcome.delivered:
                self.stats.clones_forwarded += 1
            else:
                self._forward_failed(fclone)

        self.channel.send(self.site, fclone.site, QUERY_PORT, fclone, after_forward)

    def _forward_failed(self, fclone: QueryClone) -> None:
        """The forward's connect refused, or exhausted its retries."""
        qid = fclone.query.qid
        if self.config.central_fallback:
            # §7.1: the destination site does not participate — ship the
            # clone to the user-site's central helper for local processing.
            if self.network.send(self.site, qid.host, HELPER_PORT, fclone):
                self.stats.clones_forwarded += 1
                return
        # Destination site unreachable: retire the CHT entries we announced.
        # The retraction echoes the clone's own dispatch identity — it is
        # resolving exactly the instances this server announced for it.
        retractions = tuple(
            NodeReport(
                ChtEntry(url, fclone.state), Disposition.UNREACHABLE,
                dispatch_id=fclone.dispatch_id, epoch=fclone.epoch,
            )
            for url in fclone.dest
        )
        if self.tracer.enabled:
            for url in fclone.dest:
                self.tracer.record(
                    self.clock.now, str(url), self.site, fclone.state, "-",
                    "unreachable-site",
                )
        self._send_to_user(qid, ResultMessage(qid, retractions, kind="cht"))

    def _purge(self, clone: QueryClone) -> None:
        qid = clone.query.qid
        self._purged.add(qid)
        self._trace_nodes(clone, "purged", Disposition.PURGED)
        # Drop any queued clones of the same query right away.
        self._scheduler.drop_query(qid)
        self._update_saturation()

    # -- overload shedding (graceful degradation under saturation) ---------------

    def _update_saturation(self) -> None:
        """Track time-at-ceiling; arm the shed timer on entering saturation."""
        limit = self.config.server_queue_limit
        if limit is None or self.config.shed_after is None:
            return
        if self._scheduler.total >= limit:
            if self._saturated_since is None:
                self._saturated_since = self.clock.now
                epoch, started = self._epoch, self._saturated_since
                self.clock.schedule(
                    self.config.shed_after, lambda: self._shed_check(epoch, started)
                )
        else:
            self._saturated_since = None

    def _shed_check(self, epoch: int, started: float) -> None:
        """Fires ``shed_after`` after saturation began: still saturated ⇒ shed.

        Stale guards: the timer belongs to one (epoch, saturation episode);
        a crash or any dip below the limit in between voids it — a new
        episode arms its own timer.
        """
        if epoch != self._epoch or self._saturated_since != started:
            return
        victim = self._scheduler.victim()
        if victim is not None:
            dropped = self._scheduler.drop_query(victim)
            if dropped:
                self.stats.queries_shed += 1
                self._shed_clones(victim, dropped)
        # Re-evaluate: if the server is *still* at the ceiling, this starts
        # a fresh saturation episode (and timer) for the next victim.
        self._saturated_since = None
        self._update_saturation()

    def _shed_clones(self, qid: QueryId, clones: list[QueryClone]) -> None:
        """Drop queued clones of one query, retracting their CHT entries.

        The retraction echoes each clone's own dispatch identity with the
        OVERLOADED disposition, so the user-site retires exactly the
        pending instances this server was holding — the query degrades to
        PARTIAL with per-node attribution instead of hanging.
        """
        self.stats.clones_shed += len(clones)
        retractions = []
        for clone in clones:
            for url in clone.dest:
                retractions.append(
                    NodeReport(
                        ChtEntry(url, clone.state), Disposition.OVERLOADED,
                        dispatch_id=clone.dispatch_id, epoch=clone.epoch,
                    )
                )
                if self.tracer.enabled:
                    self.tracer.record(
                        self.clock.now, str(url), self.site, clone.state, "-",
                        "overload-shed",
                    )
        self._send_to_user(qid, ResultMessage(qid, tuple(retractions), kind="cht"))

    # -- tracing ----------------------------------------------------------------

    def _trace_transport(self, action: str, detail: str) -> None:
        """Channel-level events (retries, exhaustion) — no node/state context."""
        if self.tracer.enabled:
            self.tracer.record(self.clock.now, "-", self.site, "-", "-", action, detail)

    def _trace_outcome(self, now: float, node: Url, clone: QueryClone, outcome) -> None:
        if not self.tracer.enabled:
            # Keep the stats side effect; skip all event formatting.
            if outcome.dead_end:
                self.stats.dead_ends += 1
            return
        state = clone.state
        for step_index, success in outcome.evaluations:
            label = clone.query.step_label(step_index)
            action = "answered" if success else "failed"
            self.tracer.record(
                now, str(node), self.site, state, outcome.role, action, detail=label
            )
        if not outcome.evaluations:
            self.tracer.record(now, str(node), self.site, state, outcome.role, "routed")
        if outcome.dead_end:
            self.stats.dead_ends += 1
            self.tracer.record(now, str(node), self.site, state, outcome.role, "dead-end")
        elif outcome.forwards:
            self.tracer.record(
                now, str(node), self.site, state, outcome.role, "forwarded",
                detail=f"{len(outcome.forwards)} link(s)",
            )

    def _trace_nodes(self, clone: QueryClone, action: str, __: Disposition) -> None:
        if not self.tracer.enabled:
            return
        for node in clone.dest:
            self.tracer.record(
                self.clock.now, str(node), self.site, clone.state, "-", action
            )
