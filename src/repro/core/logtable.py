"""The node-query log table — duplicate detection and the multi-rewrite.

Paper Section 3.1.1.  Each site logs ``[URL_node, Query_ID, State]`` for
every node-query it processes.  A newly arrived clone for the same node and
query id is compared state-wise against the logged entries:

* identical state, or ``A*m·B`` with ``m <= n`` — the clone is a duplicate
  and is dropped;
* ``A*m·B`` with ``m > n`` — the clone covers strictly more paths: the log
  entry is replaced and the query is rewritten ``A·A*(m-1)·B``, forcing this
  node to act as a PureRouter for the rewritten clone;
* otherwise — a genuinely new state: logged and processed normally.

Old entries are purged periodically; an over-eager purge only costs
recomputation, never correctness (Section 3.1.1), which the ablation bench
EXP-C3 demonstrates.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..pre.ast import Pre
from ..pre.automaton import AutomatonLimitError, language_subsumes
from ..pre.ops import LogComparison, compare_for_log, rewrite_superset
from ..urlutils import Url
from .state import QueryState
from .webquery import QueryId

__all__ = ["LogAction", "LogObservation", "NodeQueryLogTable"]


class LogAction(enum.Enum):
    """What the server should do with an arriving clone at one node."""

    PROCESS = "process"
    DROP = "drop"
    REWRITE = "rewrite"


@dataclass(frozen=True, slots=True)
class LogObservation:
    """The outcome of a log-table check.

    ``rewritten_rem`` is set only for :attr:`LogAction.REWRITE`.
    """

    action: LogAction
    rewritten_rem: Pre | None = None


@dataclass
class _LogEntry:
    state: QueryState
    time: float


class NodeQueryLogTable:
    """Per-site log of node-query visits, keyed by ``(node, qid)``.

    ``mode`` selects the equivalence test:

    * ``"paper"`` (default) — exact match plus the ``A*m·B`` subsumption of
      Section 3.1.1;
    * ``"language"`` — exact regular-language containment
      (:func:`~repro.pre.automaton.language_subsumes`): strictly more
      duplicates recognized (e.g. a rewritten ``L·L*2·B`` clone arriving
      where ``L*4·B`` is logged), still with the paper's rewrite for the
      ``A*m·B`` superset case.
    """

    def __init__(self, mode: str = "paper") -> None:
        if mode not in ("paper", "language"):
            raise ValueError(f"unknown log-table mode {mode!r}")
        self.mode = mode
        self._entries: dict[tuple[Url, QueryId], list[_LogEntry]] = {}
        self.drops = 0
        self.rewrites = 0
        self.inserts = 0

    def observe(self, node: Url, qid: QueryId, state: QueryState, now: float) -> LogObservation:
        """Check (and update) the table for a clone arriving at ``node``.

        Implements the paper's three-way outcome; comparisons only apply
        between states with equal ``num_q`` (the paper requires all fields
        equal except the PRE).
        """
        return self._observe_entry(self._entries.setdefault((node, qid), []), state, now, None)

    def observe_bulk(
        self, nodes: tuple[Url, ...], qid: QueryId, state: QueryState, now: float
    ) -> list[LogObservation]:
        """Admit one clone's whole destination list in a single pass.

        All of a clone's nodes arrive in the same ``state``, so the
        state-vs-logged-state relation is a pure function of the *logged*
        PRE — the pass shares one relation cache across nodes instead of
        re-deriving ``A*m·B`` comparisons per node.  Observation order (and
        therefore every drop/rewrite/insert outcome and counter) is exactly
        the per-node ``observe`` sequence.
        """
        entries_map = self._entries
        cache: dict[Pre, LogComparison] = {}
        rewritten: Pre | None = None
        observations = []
        for node in nodes:
            obs = self._observe_entry(
                entries_map.setdefault((node, qid), []), state, now, cache
            )
            if obs.action is LogAction.REWRITE:
                # rewrite_superset(state.rem) is node-independent too.
                if rewritten is None:
                    rewritten = obs.rewritten_rem
                else:
                    obs = LogObservation(LogAction.REWRITE, rewritten)
            observations.append(obs)
        return observations

    def _observe_entry(
        self,
        entries: list[_LogEntry],
        state: QueryState,
        now: float,
        cache: dict[Pre, LogComparison] | None,
    ) -> LogObservation:
        for entry in entries:
            if entry.state.num_q != state.num_q:
                continue
            if cache is None:
                relation = compare_for_log(state.rem, entry.state.rem)
            else:
                # Keyed by the logged PRE only: the incoming PRE is fixed
                # for the pass, and num_q already matched above.
                relation = cache.get(entry.state.rem)
                if relation is None:
                    relation = compare_for_log(state.rem, entry.state.rem)
                    cache[entry.state.rem] = relation
            if relation is LogComparison.DUPLICATE:
                self.drops += 1
                return LogObservation(LogAction.DROP)
            if relation is LogComparison.SUPERSET:
                # Replace the existing entry with the wider incoming state,
                # then hand back the rewritten PRE (paper step 1 + 2).
                entry.state = state
                entry.time = now
                self.rewrites += 1
                return LogObservation(LogAction.REWRITE, rewrite_superset(state.rem))
            if self.mode == "language" and self._language_covered(state.rem, entry.state.rem):
                self.drops += 1
                return LogObservation(LogAction.DROP)
        entries.append(_LogEntry(state, now))
        self.inserts += 1
        return LogObservation(LogAction.PROCESS)

    @staticmethod
    def _language_covered(incoming: Pre, logged: Pre) -> bool:
        try:
            return language_subsumes(logged, incoming)
        except AutomatonLimitError:
            # Pathological PRE: fall back to the conservative answer.
            return False

    def purge_older_than(self, cutoff: float) -> int:
        """Drop entries logged strictly before ``cutoff``; returns the count.

        This is the paper's periodic purge.  It can only cause duplicate
        recomputation, never wrong answers.
        """
        removed = 0
        for key in list(self._entries):
            kept = [entry for entry in self._entries[key] if entry.time >= cutoff]
            removed += len(self._entries[key]) - len(kept)
            if kept:
                self._entries[key] = kept
            else:
                del self._entries[key]
        return removed

    def entry_count(self) -> int:
        return sum(len(entries) for entries in self._entries.values())

    def canonical_snapshot(self) -> dict[tuple[str, str], frozenset[str]]:
        """The table's semantic end state: maximal logged states per key.

        Which clones get *inserted* is schedule-dependent under paper-mode
        subsumption — a later ``A*m·B`` superset replaces the entry it
        covers, but children forwarded before the replacement may log
        derivative states a different schedule never produces.  What every
        schedule converges on is the set of path-languages marked covered:
        per ``(node, qid)``, the logged states that no other logged state
        language-contains.  Equivalence tests (frontier batching on/off,
        EXP-P2) compare these snapshots.
        """
        snapshot: dict[tuple[str, str], frozenset[str]] = {}
        for (node, qid), entries in self._entries.items():
            states = [entry.state for entry in entries]
            keep = set()
            for state in states:
                dominated = False
                for other in states:
                    if other is state or other.num_q != state.num_q:
                        continue
                    if self._language_covered(state.rem, other.rem):
                        # Strict cover loses; mutual (equal-language) states
                        # collapse onto the lexicographically first form.
                        if not self._language_covered(other.rem, state.rem) or str(
                            other
                        ) < str(state):
                            dominated = True
                            break
                if not dominated:
                    keep.add(str(state))
            snapshot[(str(node), str(qid))] = frozenset(keep)
        return snapshot

    def states_for(self, node: Url, qid: QueryId) -> list[QueryState]:
        """Logged states for one node/query (test and trace support)."""
        return [entry.state for entry in self._entries.get((node, qid), [])]
