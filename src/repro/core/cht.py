"""The Current Hosts Table (CHT) — exact query-completion detection.

Paper Section 2.7.1: the user-site tracks every node currently hosting a
clone of the query.  Servers send the CHT delta (their own retired entry on
top, the new entries below) *before* forwarding clones, so the table always
has complete knowledge and "all entries marked deleted" is an exact
completion test.

Two accounting modes coexist:

**Legacy signed counts.**  Result messages from different servers are
independent connections, so deltas can arrive out of order — a deletion may
precede the arrival of the report that added the entry.  Unstamped
operations therefore keep *signed pending counts* per ``(node, state)``
key.  The balance argument: every deletion is paired with exactly one
addition (by ``send_query`` or an upstream report), and any in-flight
report keeps the entries it would retire positive.  Hence "all counts
zero" still holds exactly when no clone is active and no report is in
flight — transient negative counts never produce a false completion.

**Dispatch-identity instances (self-healing extension).**  Signed counts
break down under *recovery*: re-forwarding an entry whose original report
is merely slow (not lost) makes two reports retire one addition, the
balance goes negative, and the query hangs.  Stamped operations instead
track one *instance* per ``(dispatch_id, node)`` — the identity minted by
whoever dispatched the clone and echoed in its report.  Retirement is
idempotent per instance: a second report for an already-retired instance
is absorbed (``duplicates_absorbed``), a report for a dispatch that a
re-forward superseded is absorbed as stale (``stale_absorbed``), and a
retirement racing ahead of its own announcement is held as an *early*
retirement until the announcement lands.  Completion is then "no pending
instance and no unmatched early retirement" — exact under arbitrary
re-forwarding, duplication and reordering.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field

from ..errors import ProtocolError
from ..urlutils import Url
from .messages import ChtEntry

__all__ = [
    "ChtRecord",
    "CurrentHostsTable",
    "DispatchInstance",
    "InstanceStatus",
    "RetireResult",
]


class InstanceStatus(enum.Enum):
    """Lifecycle of one dispatch-identity instance."""

    PENDING = "pending"  # clone dispatched, report awaited
    RETIRED = "retired"  # resolved by exactly one report
    SUPERSEDED = "superseded"  # replaced by a re-forward under a newer epoch
    ABANDONED = "abandoned"  # written off by recovery escalation (PARTIAL)


class RetireResult(enum.Enum):
    """What one retirement attempt actually did."""

    RETIRED = "retired"  # a pending instance was resolved
    EARLY = "early"  # retirement arrived before its announcement
    ABSORBED_DUPLICATE = "absorbed-duplicate"  # instance already retired
    ABSORBED_STALE = "absorbed-stale"  # instance superseded/abandoned
    LEGACY = "legacy"  # unstamped signed-count retirement


@dataclass
class DispatchInstance:
    """One ``(dispatch_id, node)`` accounting unit."""

    dispatch_id: str
    node: Url
    entry: ChtEntry | None
    epoch: int
    status: InstanceStatus
    added_at: float
    resolved_at: float | None = None
    reason: str = ""
    #: True while a retirement has been recorded but the matching
    #: announcement has not arrived yet (out-of-order delivery).
    early: bool = False


@dataclass(frozen=True, slots=True)
class ChtRecord:
    """One historical table row (kept for traces and debugging)."""

    entry: ChtEntry
    time: float
    deleted: bool
    dispatch_id: str = ""
    note: str = ""


class CurrentHostsTable:
    """Dual-mode CHT: signed multiset plus dispatch-identity instances."""

    def __init__(self) -> None:
        self._pending: Counter[ChtEntry] = Counter()
        self._legacy_nonzero = 0
        self._instances: dict[tuple[str, Url], DispatchInstance] = {}
        self._pending_count = 0
        self._early_unmatched = 0
        self._history: list[ChtRecord] = []
        self._abandoned: list[DispatchInstance] = []
        self._additions = 0
        self._deletions = 0
        self._duplicates_absorbed = 0
        self._stale_absorbed = 0
        self._duplicate_adds_absorbed = 0

    # -- legacy signed-count helpers ------------------------------------------

    def _legacy_bump(self, entry: ChtEntry, delta: int) -> None:
        before = self._pending[entry]
        after = before + delta
        self._pending[entry] = after
        if before == 0 and after != 0:
            self._legacy_nonzero += 1
        elif before != 0 and after == 0:
            self._legacy_nonzero -= 1

    # -- additions --------------------------------------------------------------

    def add(
        self,
        entry: ChtEntry,
        time: float = 0.0,
        *,
        dispatch_id: str | None = None,
        epoch: int = 0,
    ) -> None:
        """Record that a clone is (about to be) active at ``entry``.

        With ``dispatch_id`` the addition registers an identity instance;
        without it, the legacy signed count is incremented.
        """
        if not dispatch_id:
            self._legacy_bump(entry, +1)
            self._additions += 1
            self._history.append(ChtRecord(entry, time, deleted=False))
            return
        key = (dispatch_id, entry.node)
        instance = self._instances.get(key)
        if instance is None:
            self._instances[key] = DispatchInstance(
                dispatch_id, entry.node, entry, epoch, InstanceStatus.PENDING, time
            )
            self._pending_count += 1
            self._additions += 1
            self._history.append(ChtRecord(entry, time, deleted=False, dispatch_id=dispatch_id))
            return
        if instance.early:
            # The retirement beat its own announcement; match them up.
            instance.early = False
            instance.entry = entry
            instance.epoch = epoch
            self._early_unmatched -= 1
            self._additions += 1
            self._history.append(
                ChtRecord(entry, time, deleted=False, dispatch_id=dispatch_id, note="early-match")
            )
            return
        # A duplicate announcement of the same instance: absorb.
        self._duplicate_adds_absorbed += 1

    # -- retirements ------------------------------------------------------------

    def mark_deleted(
        self,
        entry: ChtEntry,
        time: float = 0.0,
        *,
        dispatch_id: str | None = None,
    ) -> RetireResult:
        """Retire ``entry`` — idempotently per dispatch identity when stamped."""
        if not dispatch_id:
            self._legacy_bump(entry, -1)
            self._deletions += 1
            self._history.append(ChtRecord(entry, time, deleted=True))
            return RetireResult.LEGACY
        key = (dispatch_id, entry.node)
        instance = self._instances.get(key)
        if instance is None:
            # Out-of-order: the report retiring this instance arrived before
            # the report announcing it.  Hold it; the announcement will match.
            self._instances[key] = DispatchInstance(
                dispatch_id, entry.node, entry, 0, InstanceStatus.RETIRED,
                time, resolved_at=time, early=True,
            )
            self._early_unmatched += 1
            self._deletions += 1
            self._history.append(
                ChtRecord(entry, time, deleted=True, dispatch_id=dispatch_id, note="early")
            )
            return RetireResult.EARLY
        if instance.status is InstanceStatus.PENDING:
            instance.status = InstanceStatus.RETIRED
            instance.resolved_at = time
            self._pending_count -= 1
            self._deletions += 1
            self._history.append(ChtRecord(entry, time, deleted=True, dispatch_id=dispatch_id))
            return RetireResult.RETIRED
        if instance.status is InstanceStatus.RETIRED:
            self._duplicates_absorbed += 1
            self._history.append(
                ChtRecord(entry, time, deleted=True, dispatch_id=dispatch_id, note="absorbed")
            )
            return RetireResult.ABSORBED_DUPLICATE
        # SUPERSEDED or ABANDONED: a stale report from an older recovery
        # epoch (or for a written-off entry) — absorbed harmlessly.
        self._stale_absorbed += 1
        instance.resolved_at = time
        self._history.append(
            ChtRecord(entry, time, deleted=True, dispatch_id=dispatch_id, note="stale")
        )
        return RetireResult.ABSORBED_STALE

    # -- recovery: supersession and write-off ------------------------------------

    def supersede(
        self,
        dispatch_id: str,
        node: Url,
        new_dispatch_id: str,
        new_epoch: int,
        time: float = 0.0,
    ) -> bool:
        """Replace a pending instance with a re-forwarded one (epoch fence).

        The old instance stops blocking completion — its late report, if the
        original dispatch was merely slow, will be absorbed as stale — and a
        fresh pending instance under ``new_dispatch_id`` takes its place.
        """
        instance = self._instances.get((dispatch_id, node))
        if instance is None or instance.status is not InstanceStatus.PENDING:
            return False
        instance.status = InstanceStatus.SUPERSEDED
        instance.resolved_at = time
        instance.reason = f"superseded by {new_dispatch_id}"
        self._pending_count -= 1
        self._deletions += 1
        entry = instance.entry
        assert entry is not None
        self._history.append(
            ChtRecord(entry, time, deleted=True, dispatch_id=dispatch_id, note="superseded")
        )
        self.add(entry, time, dispatch_id=new_dispatch_id, epoch=new_epoch)
        return True

    def abandon(self, dispatch_id: str, node: Url, reason: str, time: float = 0.0) -> bool:
        """Write off a pending instance (graceful degradation — PARTIAL)."""
        instance = self._instances.get((dispatch_id, node))
        if instance is None or instance.status is not InstanceStatus.PENDING:
            return False
        instance.status = InstanceStatus.ABANDONED
        instance.resolved_at = time
        instance.reason = reason
        self._pending_count -= 1
        self._deletions += 1
        self._abandoned.append(instance)
        if instance.entry is not None:
            self._history.append(
                ChtRecord(
                    instance.entry, time, deleted=True, dispatch_id=dispatch_id,
                    note=f"abandoned: {reason}",
                )
            )
        return True

    # -- completion and introspection ---------------------------------------------

    def all_deleted(self) -> bool:
        """True exactly when the query has fully completed (see module doc)."""
        return (
            self._additions == self._deletions
            and self._legacy_nonzero == 0
            and self._pending_count == 0
            and self._early_unmatched == 0
        )

    @property
    def additions(self) -> int:
        return self._additions

    @property
    def deletions(self) -> int:
        return self._deletions

    @property
    def duplicates_absorbed(self) -> int:
        """Reports absorbed because their instance was already retired."""
        return self._duplicates_absorbed

    @property
    def stale_absorbed(self) -> int:
        """Reports absorbed because their dispatch was superseded/abandoned."""
        return self._stale_absorbed

    def pending_entries(self) -> list[ChtEntry]:
        """Entries still awaited (active clone locations), deduplicated."""
        entries = {entry for entry, count in self._pending.items() if count > 0}
        entries.update(
            instance.entry
            for instance in self._instances.values()
            if instance.status is InstanceStatus.PENDING and instance.entry is not None
        )
        return sorted(entries, key=str)

    def pending_instances(self) -> list[DispatchInstance]:
        """Identity instances still awaiting their report, stable order."""
        return sorted(
            (
                instance
                for instance in self._instances.values()
                if instance.status is InstanceStatus.PENDING
            ),
            key=lambda inst: (str(inst.node), inst.dispatch_id),
        )

    def abandoned_instances(self) -> list[DispatchInstance]:
        """Instances written off by recovery escalation, in write-off order."""
        return list(self._abandoned)

    def negative_legacy_entries(self) -> list[tuple[ChtEntry, int]]:
        """Legacy ``(node, state)`` keys whose signed count is negative.

        Transient negatives are legitimate mid-flight (a deletion's report
        can outrun the addition's — see the module doc), but at quiescence
        every count must be >= 0: Figure 3's ordering dispatches each
        server's report (additions) before forwarding the clones whose
        reports could delete them, so a *settled* negative count means two
        reports retired an entry only one addition announced — the
        pre-epoch-fence double-retire bug.  The DST invariant monitor checks
        this at quiescence.
        """
        return sorted(
            ((entry, count) for entry, count in self._pending.items() if count < 0),
            key=lambda item: str(item[0]),
        )

    def imbalance(self) -> int:
        """Net outstanding additions; 0 at completion."""
        return self._additions - self._deletions

    def history(self) -> list[ChtRecord]:
        return list(self._history)

    def check_consistency(self) -> None:
        """Raise :class:`ProtocolError` if the accounting disagrees with itself.

        O(1): cross-checks the incrementally maintained aggregates.  The
        invariant — additions minus deletions equals the legacy signed sum
        plus pending instances minus unmatched early retirements — holds
        after every message when accounting is correct; a double-retired or
        double-added instance breaks it immediately.
        """
        legacy_net = sum(self._pending.values())
        expected = legacy_net + self._pending_count - self._early_unmatched
        if self._additions - self._deletions != expected:
            raise ProtocolError(
                "CHT counts diverged from addition/deletion totals: "
                f"additions={self._additions} deletions={self._deletions} "
                f"legacy_net={legacy_net} pending={self._pending_count} "
                f"early={self._early_unmatched}"
            )
        if self._pending_count < 0 or self._early_unmatched < 0:
            raise ProtocolError(
                f"CHT instance counters negative: pending={self._pending_count} "
                f"early={self._early_unmatched}"
            )

    def audit(self) -> None:
        """Full O(n) recount of every aggregate (invariant-monitor check)."""
        pending = sum(
            1 for i in self._instances.values() if i.status is InstanceStatus.PENDING
        )
        early = sum(1 for i in self._instances.values() if i.early)
        nonzero = sum(1 for count in self._pending.values() if count != 0)
        if pending != self._pending_count:
            raise ProtocolError(
                f"CHT pending recount {pending} != counter {self._pending_count}"
            )
        if early != self._early_unmatched:
            raise ProtocolError(
                f"CHT early recount {early} != counter {self._early_unmatched}"
            )
        if nonzero != self._legacy_nonzero:
            raise ProtocolError(
                f"CHT legacy nonzero recount {nonzero} != counter {self._legacy_nonzero}"
            )
        self.check_consistency()
