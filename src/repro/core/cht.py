"""The Current Hosts Table (CHT) — exact query-completion detection.

Paper Section 2.7.1: the user-site tracks every node currently hosting a
clone of the query.  Servers send the CHT delta (their own retired entry on
top, the new entries below) *before* forwarding clones, so the table always
has complete knowledge and "all entries marked deleted" is an exact
completion test.

Implementation note: result messages from different servers are independent
connections, so deltas can arrive out of order — a deletion may precede the
arrival of the report that added the entry.  We therefore keep *signed
pending counts* per ``(node, state)`` key.  The balance argument: every
deletion is paired with exactly one addition (by ``send_query`` or an
upstream report), and any in-flight report keeps the entries it would retire
positive.  Hence "all counts zero" still holds exactly when no clone is
active and no report is in flight — transient negative counts never produce
a false completion.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..errors import ProtocolError
from .messages import ChtEntry

__all__ = ["ChtRecord", "CurrentHostsTable"]


@dataclass(frozen=True, slots=True)
class ChtRecord:
    """One historical table row (kept for traces and debugging)."""

    entry: ChtEntry
    time: float
    deleted: bool


class CurrentHostsTable:
    """Signed-multiset CHT with a full audit history."""

    def __init__(self) -> None:
        self._pending: Counter[ChtEntry] = Counter()
        self._history: list[ChtRecord] = []
        self._additions = 0
        self._deletions = 0

    def add(self, entry: ChtEntry, time: float = 0.0) -> None:
        """Record that a clone is (about to be) active at ``entry``."""
        self._pending[entry] += 1
        self._additions += 1
        self._history.append(ChtRecord(entry, time, deleted=False))

    def mark_deleted(self, entry: ChtEntry, time: float = 0.0) -> None:
        """Retire one pending instance of ``entry``."""
        self._pending[entry] -= 1
        self._deletions += 1
        self._history.append(ChtRecord(entry, time, deleted=True))

    def all_deleted(self) -> bool:
        """True exactly when the query has fully completed (see module doc)."""
        return self._additions == self._deletions and all(
            count == 0 for count in self._pending.values()
        )

    @property
    def additions(self) -> int:
        return self._additions

    @property
    def deletions(self) -> int:
        return self._deletions

    def pending_entries(self) -> list[ChtEntry]:
        """Entries with a positive pending count (active clone locations)."""
        return sorted(
            (entry for entry, count in self._pending.items() if count > 0),
            key=str,
        )

    def imbalance(self) -> int:
        """Net outstanding additions; 0 at completion."""
        return self._additions - self._deletions

    def history(self) -> list[ChtRecord]:
        return list(self._history)

    def check_consistency(self) -> None:
        """Raise :class:`ProtocolError` if counts and totals disagree."""
        if sum(self._pending.values()) != self._additions - self._deletions:
            raise ProtocolError("CHT counts diverged from addition/deletion totals")
