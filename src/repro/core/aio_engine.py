"""The WEBDIS engine over real sockets.

``AsyncioWebDisEngine`` assembles the same deployment as
:class:`~repro.core.engine.WebDisEngine` — one
:class:`~repro.core.server.QueryServer` per participating site plus a
:class:`~repro.core.client.UserSiteClient` — but wires them to an
:class:`~repro.net.aio.AsyncioTransport` instead of the simulator: every
site listens on a real ``127.0.0.1`` TCP port, every clone forward and
result report is a framed message over a real connection, and time is the
event loop's wall clock (:class:`~repro.net.aio.LoopClock`).  The protocol
objects are byte-for-byte the same classes the simulator runs; only the
transport seam differs — which is the point: self-healing proved here is
proved off the simulator.

Must be constructed (and driven) inside a running event loop::

    async def main():
        engine = AsyncioWebDisEngine(build_campus_web())
        handle = engine.submit_disql(CAMPUS_QUERY_DISQL)
        await engine.run([handle])
        await engine.aclose()

Chaos goes in at construction (``chaos=ChaosRules.from_plan(plan)``) so
every listener is behind an in-path :class:`~repro.net.chaos.ChaosProxy`;
:meth:`apply_chaos_crashes` schedules the plan's kill/restart rules as real
socket teardowns.  Unlike the simulator there is no global quiescence:
:meth:`run` polls the handles to a terminal status under a wall-clock
timeout, and a :class:`~repro.core.supervisor.QuerySupervisor` (same class,
same policy) provides the re-forward→degrade path under real faults.

Two simulator-only conveniences are rejected here rather than silently
misbehaving: ``central_fallback`` (its legacy call site reads the
*synchronous* send outcome, which a deferred transport cannot provide) and
fault plans installed via ``apply_faults`` (use ``chaos=``).
"""

from __future__ import annotations

import asyncio
from typing import Iterable

from ..disql.translate import compile_disql
from ..errors import SimulationError
from ..net.aio import AsyncioTransport, LoopClock, PortMap
from ..net.chaos import ChaosRules
from ..net.network import NetworkConfig
from ..net.stats import TrafficStats
from ..web.web import Web
from .client import QueryHandle, QueryStatus, UserSiteClient
from .config import EngineConfig
from .engine import DEFAULT_USER_SITE
from .server import QueryServer
from .trace import Tracer
from .webquery import WebQuery

__all__ = ["AsyncioWebDisEngine"]


class AsyncioWebDisEngine:
    """One runnable WEBDIS deployment over real asyncio sockets."""

    def __init__(
        self,
        web: Web,
        *,
        config: EngineConfig | None = None,
        net_config: NetworkConfig | None = None,
        user_site: str = DEFAULT_USER_SITE,
        user: str = "maya",
        participating_sites: Iterable[str] | None = None,
        trace: bool = False,
        chaos: ChaosRules | None = None,
        port_map: PortMap | None = None,
    ) -> None:
        self.web = web
        self.config = config if config is not None else EngineConfig()
        if self.config.central_fallback:
            raise SimulationError(
                "central_fallback reads the synchronous send outcome and is "
                "not supported on the asyncio transport"
            )
        self.clock = LoopClock()
        self.stats = TrafficStats()
        self.tracer = Tracer(enabled=trace)
        self.network = AsyncioTransport(
            self.clock, self.stats, net_config, chaos=chaos, port_map=port_map
        )
        self.chaos = chaos
        self.user_site = user_site

        participating = (
            set(web.site_names)
            if participating_sites is None
            else {name.lower() for name in participating_sites}
        )
        self.network.register_site(user_site)
        self.servers: dict[str, QueryServer] = {}
        for site in web.site_names:
            self.network.register_site(site)
            if site in participating:
                self.servers[site] = QueryServer(
                    site, web, self.network, self.clock, self.config, self.stats, self.tracer
                )
        self.client = UserSiteClient(
            user_site, self.network, self.clock, self.stats, self.tracer, self.config, user
        )

    # -- submission ----------------------------------------------------------

    def submit(self, query: WebQuery, on_result=None, on_complete=None) -> QueryHandle:
        return self.client.submit(query, on_result, on_complete)

    def submit_disql(
        self, text: str, on_result=None, on_complete=None, search_index=None
    ) -> QueryHandle:
        return self.submit(
            compile_disql(text, search_index=search_index), on_result, on_complete
        )

    # -- execution -----------------------------------------------------------

    async def run(
        self,
        handles: Iterable[QueryHandle],
        *,
        timeout: float = 60.0,
        poll: float = 0.02,
    ) -> float:
        """Wait until every handle reaches a terminal status.

        There is no quiescence signal on real sockets, so this polls (the
        terminal transition itself is event-driven — completion fires on
        the report that exactly empties the CHT, escalation on a
        supervisor timer).  Raises :class:`SimulationError` with the stuck
        handles after ``timeout`` wall seconds — a run that trips it
        without a supervisor usually just needs one.  Returns elapsed
        wall-clock seconds.
        """
        pending = list(handles)
        started = self.clock.now
        deadline = started + timeout
        while True:
            pending = [h for h in pending if h.status is QueryStatus.RUNNING]
            if not pending:
                return self.clock.now - started
            if self.clock.now >= deadline:
                stuck = ", ".join(str(h.qid) for h in pending)
                raise SimulationError(
                    f"run timed out after {timeout}s; still RUNNING: {stuck}"
                )
            await asyncio.sleep(poll)

    def cancel(self, handle: QueryHandle, at: float | None = None) -> None:
        if at is None:
            self.client.cancel(handle)
        else:
            self.clock.schedule_at(at, lambda: self.client.cancel(handle))

    # -- crash / recovery ----------------------------------------------------

    def crash_server(self, site: str, at: float | None = None) -> None:
        """Crash ``site`` now (or at clock time ``at``): every socket the
        site holds is torn down for real and its volatile state is lost."""
        site = site.lower()
        server = self._server_or_raise(site)
        if at is not None:
            self.clock.schedule_at(at, lambda: self.crash_server(site))
            return
        self.network.crash_site(site)
        server.crash()

    def restart_server(self, site: str, at: float | None = None) -> None:
        """Restart a crashed server: re-bind its query port (a fresh real
        port — the port map re-points, like a restarted process)."""
        site = site.lower()
        server = self._server_or_raise(site)
        if at is not None:
            self.clock.schedule_at(at, lambda: self.restart_server(site))
            return
        server.restart()

    def _server_or_raise(self, site: str) -> QueryServer:
        server = self.servers.get(site)
        if server is None:
            raise SimulationError(f"no query-server at {site!r}")
        return server

    def apply_faults(self, plan) -> None:
        raise SimulationError(
            "FaultPlan.install targets the simulator; pass "
            "chaos=ChaosRules.from_plan(plan) at construction and call "
            "apply_chaos_crashes() instead"
        )

    def apply_chaos_crashes(self) -> None:
        """Schedule the chaos rules' crash/restart draws as real teardowns."""
        if self.chaos is None:
            return
        for site, kill_at, restart_at in self.chaos.crash_schedule():
            self.crash_server(site, at=kill_at)
            if restart_at is not None:
                self.restart_server(site, at=restart_at)

    # -- introspection / lifecycle -------------------------------------------

    def server_for(self, site: str) -> QueryServer:
        return self.servers[site.lower()]

    def total_log_entries(self) -> int:
        return sum(server.log_table.entry_count() for server in self.servers.values())

    async def aclose(self) -> None:
        """Close every socket and cancel in-flight transport tasks."""
        await self.network.aclose()
