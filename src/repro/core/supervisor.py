"""Self-healing query supervision: watch, re-forward, degrade gracefully.

The paper's completion detection is exact but *passive* — a query whose
clones died inside a crashed server would simply never complete (§7.1 lists
node failures as an open problem).  PR 1 added the pieces (stall watchdog,
``reforward_pending``); this module closes the loop into an automatic
driver:

1. **Watch.**  After ``quiet_timeout`` simulated seconds with no *effective*
   progress — CHT movement or new result rows; absorbed stale/duplicate
   reports do not count — the query is considered stalled.
2. **Recover.**  A recovery round bumps the query's epoch and re-forwards
   every outstanding dispatch (superseding the old instances, so a slow —
   not dead — original report is absorbed as stale rather than
   double-retiring).  Consecutive fruitless rounds back off geometrically.
3. **Escalate.**  After ``max_recoveries`` fruitless rounds, or at the
   absolute per-query ``deadline``, the supervisor stops fighting: the
   outstanding dispatches are written off, their sites marked unreachable,
   and the query finishes ``PARTIAL`` with a :class:`CoverageReport`
   saying exactly which nodes were abandoned and why.

Everything runs on the simulation clock and is deterministic for a given
seed/schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..net.simclock import SimClock
from ..urlutils import Url
from .client import QueryHandle, QueryStatus, UserSiteClient
from .state import QueryState
from .webquery import QueryId

__all__ = ["RecoveryPolicy", "AbandonedDispatch", "CoverageReport", "QuerySupervisor"]


@dataclass(frozen=True, slots=True)
class RecoveryPolicy:
    """Shape of one supervisor's watch/recover/escalate behaviour.

    ``quiet_timeout`` is the silence that triggers the first recovery round;
    each consecutive fruitless round multiplies it by ``backoff_multiplier``
    (progress resets both the counter and the timeout).  ``max_recoveries``
    bounds consecutive fruitless rounds before escalation.  ``deadline``
    bounds the query's total lifetime regardless of progress; None disables
    the absolute deadline (escalation then only happens via the round
    budget).
    """

    quiet_timeout: float = 1.0
    max_recoveries: int = 3
    backoff_multiplier: float = 2.0
    deadline: float | None = 30.0

    def __post_init__(self) -> None:
        if self.quiet_timeout <= 0:
            raise ValueError(f"quiet_timeout must be > 0, got {self.quiet_timeout}")
        if self.max_recoveries < 0:
            raise ValueError(f"max_recoveries must be >= 0, got {self.max_recoveries}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )


@dataclass(frozen=True, slots=True)
class AbandonedDispatch:
    """One written-off dispatch instance, for the coverage report."""

    node: Url
    state: QueryState
    dispatch_id: str
    reason: str
    abandoned_at: float


@dataclass(frozen=True, slots=True)
class CoverageReport:
    """What a supervised query actually covered when it finished.

    A COMPLETE query has full coverage (``abandoned`` and ``shed_nodes``
    empty).  A PARTIAL query lists every dispatch that was written off,
    the sites judged unreachable, the nodes shed by overloaded servers
    (load shedding — the coverage hole is the *server's* doing, not a
    fault), and how hard recovery tried before giving up.
    """

    qid: QueryId
    status: QueryStatus
    reason: str
    rows_collected: int
    recoveries_attempted: int
    recovery_epoch: int
    abandoned: tuple[AbandonedDispatch, ...]
    unreachable_sites: tuple[str, ...]
    shed_nodes: tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        return (
            not self.abandoned
            and not self.shed_nodes
            and self.status is QueryStatus.COMPLETE
        )

    def summary(self) -> str:
        if self.complete:
            return f"{self.qid}: complete, {self.rows_collected} row(s)"
        sites = ", ".join(self.unreachable_sites) or "-"
        shed = f", {len(self.shed_nodes)} node(s) shed" if self.shed_nodes else ""
        return (
            f"{self.qid}: {self.status.value} ({self.reason}); "
            f"{self.rows_collected} row(s) collected, "
            f"{len(self.abandoned)} dispatch(es) abandoned, "
            f"unreachable: {sites}{shed}, "
            f"{self.recoveries_attempted} recovery round(s)"
        )


@dataclass
class _Supervision:
    """Mutable per-query supervisor state."""

    handle: QueryHandle
    started: float
    #: Consecutive fruitless recovery rounds (reset by progress).
    consecutive: int = 0
    #: Total recovery rounds over the query's lifetime.
    total_recoveries: int = 0
    escalated: bool = False
    on_final: Callable[[CoverageReport], None] | None = None
    finalized: bool = False
    sites_recovered: set = field(default_factory=set)
    #: Effective-progress snapshot the armed timer compares against.
    token: tuple = ()


class QuerySupervisor:
    """Automatic watch→re-forward→degrade driver for one client's queries."""

    def __init__(
        self,
        client: UserSiteClient,
        policy: RecoveryPolicy | None = None,
    ) -> None:
        self.client = client
        self.clock: SimClock = client.clock
        self.policy = policy or RecoveryPolicy()
        self._supervised: dict[QueryId, _Supervision] = {}

    # -- public API ---------------------------------------------------------------

    def supervise(
        self,
        handle: QueryHandle,
        on_final: Callable[[CoverageReport], None] | None = None,
    ) -> None:
        """Drive ``handle`` to a terminal status within the policy's bounds.

        ``on_final`` fires exactly once with the coverage report when the
        query reaches COMPLETE, PARTIAL or CANCELLED under supervision.
        """
        sup = _Supervision(handle, self.clock.now, on_final=on_final)
        self._supervised[handle.qid] = sup
        if self.policy.deadline is not None:
            self.clock.schedule(self.policy.deadline, lambda: self._deadline(sup))
        self._arm(sup, self.policy.quiet_timeout)

    def coverage(self, handle: QueryHandle) -> CoverageReport:
        """The coverage report for ``handle`` in its current state."""
        sup = self._supervised.get(handle.qid)
        abandoned = tuple(
            AbandonedDispatch(
                instance.node,
                instance.entry.state if instance.entry is not None else None,
                instance.dispatch_id,
                instance.reason,
                instance.resolved_at if instance.resolved_at is not None else 0.0,
            )
            for instance in handle.cht.abandoned_instances()
        )
        return CoverageReport(
            qid=handle.qid,
            status=handle.status,
            reason=handle.partial_reason,
            rows_collected=len(handle.results),
            recoveries_attempted=sup.total_recoveries if sup is not None else 0,
            recovery_epoch=handle.recovery_epoch,
            abandoned=abandoned,
            unreachable_sites=tuple(
                sorted({dispatch.node.host for dispatch in abandoned})
            ),
            shed_nodes=tuple(sorted(str(node) for node in handle.shed_nodes)),
        )

    def supervised(self) -> list[QueryHandle]:
        return [sup.handle for sup in self._supervised.values()]

    # -- the watch loop -----------------------------------------------------------

    @staticmethod
    def _progress_token(handle: QueryHandle) -> tuple:
        """Effective progress only: CHT movement and rows collected.

        Deliberately *not* ``messages_received``: an absorbed stale or
        duplicate report resolves nothing, and counting it as progress lets
        a quiet_timeout shorter than the report round-trip livelock the
        loop — every round resets the backoff and supersedes a re-forward
        whose own report is already in flight.  Absorbed retirements do not
        move ``deletions``, so they do not move this token.
        """
        return (handle.cht.additions, handle.cht.deletions, len(handle.results))

    def _arm(self, sup: _Supervision, timeout: float) -> None:
        # Snapshot *now*, after any recovery round this call follows — the
        # round's own supersessions must not read as next check's progress.
        sup.token = self._progress_token(sup.handle)
        self.clock.schedule(timeout, lambda: self._check(sup, timeout))

    def _check(self, sup: _Supervision, timeout: float) -> None:
        handle = sup.handle
        if handle.finished:
            self._finalize(sup)
            return
        if self._progress_token(handle) != sup.token:
            # Effective progress since the timer was armed: recovery (if
            # any) worked.
            sup.consecutive = 0
            self._arm(sup, self.policy.quiet_timeout)
            return
        if sup.consecutive >= self.policy.max_recoveries:
            self._escalate(
                sup,
                f"no progress after {sup.consecutive} recovery round(s)",
            )
            return
        sup.consecutive += 1
        sup.total_recoveries += 1
        handle.stall_detected_at = self.clock.now
        for instance in handle.cht.pending_instances():
            sup.sites_recovered.add(instance.node.host)
        reforwarded = self.client.reforward_pending(handle)
        if self.client.tracer.enabled:
            self.client.tracer.record(
                self.clock.now, "-", self.client.site, "-", "-", "recovery-round",
                detail=(
                    f"{handle.qid}: round {sup.total_recoveries}, "
                    f"{reforwarded} clone(s) re-forwarded"
                ),
            )
        if handle.finished:
            # Re-forwarding can complete the query synchronously (e.g. every
            # outstanding site now refuses and the entries retire).
            self._finalize(sup)
            return
        self._arm(sup, timeout * self.policy.backoff_multiplier)

    def _deadline(self, sup: _Supervision) -> None:
        if sup.handle.finished:
            self._finalize(sup)
            return
        self._escalate(sup, f"deadline {self.policy.deadline:g}s exceeded")

    # -- escalation ---------------------------------------------------------------

    def _escalate(self, sup: _Supervision, reason: str) -> None:
        if sup.escalated or sup.handle.finished:
            self._finalize(sup)
            return
        sup.escalated = True
        handle = sup.handle
        self.client.finish_partial(handle, reason)
        self._finalize(sup)

    def _finalize(self, sup: _Supervision) -> None:
        if sup.finalized or not sup.handle.finished:
            return
        sup.finalized = True
        if sup.on_final is not None:
            sup.on_final(self.coverage(sup.handle))
