"""Execution tracing — the raw material for Figures 1, 5 and 7.

Every significant per-node event (evaluation, forwarding, duplicate drop,
rewrite, dead end, purge) is recorded with its virtual time, node, role and
query state, so benches can print the paper's traversal diagrams as tables.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .state import QueryState

__all__ = ["TraceEvent", "Tracer"]

#: Role names as used in the paper.
SERVER_ROUTER = "ServerRouter"
PURE_ROUTER = "PureRouter"
START_NODE = "StartNode"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One traversal event."""

    time: float
    node: str
    site: str
    state: QueryState
    role: str
    action: str
    detail: str = ""

    def __str__(self) -> str:
        extra = f" [{self.detail}]" if self.detail else ""
        return (
            f"t={self.time:8.4f}  {self.role:<12} {self.action:<18} "
            f"{self.node}  state={self.state}{extra}"
        )


class Tracer:
    """Collects :class:`TraceEvent` objects when enabled."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.events: list[TraceEvent] = []

    def record(
        self,
        time: float,
        node: str,
        site: str,
        state: QueryState,
        role: str,
        action: str,
        detail: str = "",
    ) -> None:
        if self.enabled:
            self.events.append(TraceEvent(time, node, site, state, role, action, detail))

    # -- analysis helpers used by tests and benches ---------------------------

    def visits_to(self, node: str) -> list[TraceEvent]:
        """Arrival events (any action) at ``node``, in time order."""
        return [event for event in self.events if event.node == node]

    def nodes_with_role(self, role: str) -> list[str]:
        """Distinct nodes that ever acted in ``role``, in first-seen order."""
        seen: list[str] = []
        for event in self.events:
            if event.role == role and event.node not in seen:
                seen.append(event.node)
        return seen

    def actions(self) -> Counter:
        return Counter(event.action for event in self.events)

    def to_dot(self, title: str = "WEBDIS traversal") -> str:
        """Export the traversal as a Graphviz DOT digraph (Figure-7 style).

        Nodes are the visited URLs (shaded by outcome: answered / failed /
        duplicate / routed); edges connect consecutive distinct nodes in
        trace order, labelled with the destination's query state.  The
        output renders with ``dot -Tsvg``.
        """
        colors = {
            "answered": "palegreen",
            "failed": "lightsalmon",
            "duplicate-dropped": "lightgoldenrod",
            "dead-end": "lightsalmon",
        }
        node_color: dict[str, str] = {}
        node_roles: dict[str, set[str]] = {}
        for event in self.events:
            node_roles.setdefault(event.node, set()).add(event.role)
            if event.action in colors and event.node not in node_color:
                node_color[event.node] = colors[event.action]
            elif event.action == "answered":
                node_color[event.node] = colors["answered"]
        lines = [
            "digraph webdis {",
            f'  label="{title}";',
            "  rankdir=LR;",
            '  node [shape=box, style=filled, fillcolor=white, fontsize=10];',
        ]
        for node, roles in node_roles.items():
            fill = node_color.get(node, "white")
            role = "/".join(sorted(r for r in roles if r != "-")) or "visited"
            lines.append(
                f'  "{node}" [fillcolor={fill}, tooltip="{role}"];'
            )
        previous: str | None = None
        seen_edges: set[tuple[str, str, str]] = set()
        for event in self.events:
            if previous is not None and previous != event.node:
                edge = (previous, event.node, str(event.state))
                if edge not in seen_edges:
                    seen_edges.add(edge)
                    lines.append(
                        f'  "{previous}" -> "{event.node}" [label="{event.state}", fontsize=8];'
                    )
            previous = event.node
        lines.append("}")
        return "\n".join(lines)

    def render(self) -> str:
        """A printable table of the whole trace."""
        lines = [
            f"{'time':>10}  {'role':<12} {'action':<18} {'state':<18} node",
            "-" * 88,
        ]
        for event in self.events:
            lines.append(
                f"{event.time:10.4f}  {event.role:<12} {event.action:<18} "
                f"{str(event.state):<18} {event.node}"
                + (f"  [{event.detail}]" if event.detail else "")
            )
        return "\n".join(lines)
