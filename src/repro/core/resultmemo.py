"""Cross-query result memoization — the EXP-P4 reuse layer.

The log table (paper §3.1) dedups clone visits *within* one qid and the
plan cache shares *compilation*; this module shares the actual per-node
work across queries.  Under the millions-of-users traffic shape, many
overlapping queries re-walk the same popular pages, and for a frozen web
incarnation both halves of :func:`~repro.core.processing.process_node` are
pure functions of per-node data:

* **rows** — ``(node, structural hash of the node-query) → result rows``.
  Two structurally equal node-queries (same select/from/where/sitewide
  aliases, any label, any qid) compute the same rows at the same node, so
  the evaluation — including the document parse feeding it — can be
  skipped entirely.  An empty tuple is a real entry: "evaluated, no rows"
  (the failed-evaluation outcome) is as reusable as a hit.
* **forward fan-out** — ``(node, PRE-state) → {link type → targets}``.
  Which links leave a node per link type is *state-independent* node data;
  the PRE state only selects which link types matter.  That is what makes
  subsumption-aware reuse sound: an entry logged for a more general state
  serves any contained state (``A*m·B`` containment via
  :func:`~repro.pre.ops.compare_for_log`, exactly the log table's §3.1.1
  machinery) after a **residual filter** that restricts the stored buckets
  to the contained state's own first symbols.

Keying and collision safety mirror the plan cache: rows entries are keyed
by the short structural digest but store the full
:func:`~repro.relational.compile.structural_key` and verify it on every
hit, so a digest collision degrades to a miss instead of wrong rows.

Invalidation is explicit and coarse: the memo belongs to one *(process
incarnation, web epoch)*.  :meth:`ResultMemo.clear` (called by
:meth:`~repro.core.server.QueryServer.crash`) and
:meth:`ResultMemo.advance_epoch` (the seam a future live-web mutation
feature drives) both bump ``version`` and drop everything; every entry is
stamped with the version that wrote it, so the DST
``check_memo_coherence`` invariant can audit that no entry ever outlives
an invalidation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..model.relations import LinkType
from ..pre.ast import Pre
from ..pre.ops import LogComparison, compare_for_log, first_symbols
from ..relational.compile import structural_hash, structural_key
from ..relational.query import NodeQuery, ResultRow
from ..urlutils import Url

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.stats import TrafficStats
    from .webquery import WebQuery

__all__ = ["NodeMemoView", "ResultMemo"]

#: Fan-out payload: per link type, the forward targets (fragment-stripped),
#: in the page's link order.
FanoutTargets = dict[LinkType, tuple[Url, ...]]


@dataclass(frozen=True, slots=True)
class _RowsEntry:
    full_key: str
    rows: tuple[ResultRow, ...]
    version: int


@dataclass(frozen=True, slots=True)
class _FanoutEntry:
    targets: FanoutTargets
    version: int


class ResultMemo:
    """One site's cross-query memo of rows and forward fan-outs.

    Optionally bounded: with ``capacity`` set, rows and fan-out entries
    share one LRU (hits refresh recency, stores evict the coldest entry
    once the ceiling is crossed), accounted in ``evictions`` and the
    ``bytes_est`` size gauge — mirrored to ``TrafficStats`` as
    ``memo_evictions`` / ``memo_bytes_est``.  Entries are layout- and
    executor-independent (plain ``ResultRow`` tuples and URL tuples), so a
    memo populated under one executor serves the other unchanged.
    """

    __slots__ = ("version", "capacity", "evictions", "bytes_est", "_rows", "_fanout", "_lru", "_stats")

    def __init__(
        self,
        stats: "TrafficStats | None" = None,
        capacity: int | None = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("memo capacity must be at least 1 entry")
        #: Bumped by every invalidation; entries stamped with an older
        #: version must not exist (audited by ``check_memo_coherence``).
        self.version = 0
        self.capacity = capacity
        self.evictions = 0
        #: Rough retained-size gauge (strings + per-object overhead); an
        #: estimate for observability, not an allocator measurement.
        self.bytes_est = 0
        self._rows: dict[tuple[Url, str], _RowsEntry] = {}
        self._fanout: dict[Url, dict[Pre, _FanoutEntry]] = {}
        #: Shared recency order over both entry kinds: key → byte estimate.
        #: ``("r", node, digest)`` addresses ``_rows``; ``("f", node, rem)``
        #: addresses ``_fanout``.
        self._lru: "OrderedDict[tuple, int]" = OrderedDict()
        self._stats = stats

    # -- rows -----------------------------------------------------------------

    def rows_for(self, node: Url, query: NodeQuery) -> tuple[ResultRow, ...] | None:
        """The memoized rows of ``query`` at ``node``; None on a miss.

        Exact structural equality only — a contained *node-query* (unlike a
        contained PRE state) computes a genuinely different relation, so
        there is nothing sound to filter from.
        """
        key = (node, structural_hash(query))
        entry = self._rows.get(key)
        if entry is None or entry.full_key != structural_key(query):
            self._count("memo_misses")
            return None
        self._touch(("r",) + key)
        self._count("memo_hits")
        return entry.rows

    def store_rows(self, node: Url, query: NodeQuery, rows: tuple[ResultRow, ...]) -> None:
        key = (node, structural_hash(query))
        entry = _RowsEntry(structural_key(query), rows, self.version)
        self._rows[key] = entry
        self._account(("r",) + key, _rows_bytes(entry))

    # -- forward fan-out ------------------------------------------------------

    def fanout_for(self, node: Url, rem: Pre) -> FanoutTargets | None:
        """The memoized link fan-out for state ``rem`` at ``node``.

        Exact hit first; otherwise any logged state at this node that
        *subsumes* ``rem`` (A*m·B containment, §3.1.1) serves it through a
        residual filter — the stored buckets restricted to ``rem``'s own
        first symbols.  The filtered fan-out is promoted to an exact entry
        so the residual filter is paid once per (node, state).
        """
        per_node = self._fanout.get(node)
        if per_node is None:
            self._count("memo_misses")
            return None
        entry = per_node.get(rem)
        if entry is not None:
            self._touch(("f", node, rem))
            self._count("memo_hits")
            return entry.targets
        needed = first_symbols(rem)
        for general, candidate in per_node.items():
            if compare_for_log(rem, general) is not LogComparison.DUPLICATE:
                continue
            if not all(ltype in candidate.targets for ltype in needed):
                # Conservative coverage check: only reuse when the general
                # entry logged a bucket for every link type ``rem`` can
                # follow.  (Containment implies it for the A*m·B shapes,
                # but reuse must stay locally provable.)
                continue
            filtered: FanoutTargets = {
                ltype: candidate.targets[ltype] for ltype in needed
            }
            per_node[rem] = _FanoutEntry(filtered, self.version)
            self._account(("f", node, rem), _fanout_bytes(filtered))
            self._count("memo_hits")
            self._count("residual_filters")
            return filtered
        self._count("memo_misses")
        return None

    def store_fanout(self, node: Url, rem: Pre, targets: FanoutTargets) -> None:
        self._fanout.setdefault(node, {})[rem] = _FanoutEntry(targets, self.version)
        self._account(("f", node, rem), _fanout_bytes(targets))

    # -- invalidation ---------------------------------------------------------

    def clear(self) -> None:
        """Crash invalidation: the incarnation died, nothing survives it."""
        self.version += 1
        self._rows.clear()
        self._fanout.clear()
        self._lru.clear()
        self._gauge(-self.bytes_est)
        self.bytes_est = 0

    def advance_epoch(self) -> int:
        """The live-web mutation seam: declare every cached entry stale.

        Today the simulated web is frozen, so nothing calls this on the hot
        path; a future mutation source bumps the epoch when page content or
        links change, and in-flight queries recompute from the live web.
        Returns the new version for callers that stamp downstream state.
        """
        self.clear()
        return self.version

    # -- audit ----------------------------------------------------------------

    def stale_entries(self) -> list[str]:
        """Entries stamped with a dead version — always empty unless an
        invalidation path forgot to drop them (the coherence invariant)."""
        stale = [
            f"rows {key[1]} @ {key[0]} (v{entry.version} != v{self.version})"
            for key, entry in self._rows.items()
            if entry.version != self.version
        ]
        stale += [
            f"fanout {rem} @ {node} (v{entry.version} != v{self.version})"
            for node, per_node in self._fanout.items()
            for rem, entry in per_node.items()
            if entry.version != self.version
        ]
        return stale

    def recount_bytes(self) -> int:
        """Recompute the byte gauge from scratch over the live entries.

        The audit twin of ``bytes_est``: the gauge is maintained
        incrementally (stores add, overwrites subtract the replaced entry's
        estimate first, evictions and clears subtract), and overwrite-heavy
        sequences are exactly where incremental accounting drifts if any
        path forgets the subtraction — an entry shrinking in place must
        *decrease* the gauge.  ``check_memo_coherence`` (and the regression
        test) assert ``recount_bytes() == bytes_est`` so any future store
        path that breaks the invariant fails loudly instead of skewing the
        dashboard gauge and the LRU's eviction pressure.
        """
        total = sum(_rows_bytes(entry) for entry in self._rows.values())
        for per_node in self._fanout.values():
            total += sum(_fanout_bytes(entry.targets) for entry in per_node.values())
        return total

    def __len__(self) -> int:
        return len(self._rows) + sum(len(v) for v in self._fanout.values())

    def view(self, node: Url, query: "WebQuery") -> "NodeMemoView":
        """Bind the memo to one (node, web-query) for a process_node call."""
        return NodeMemoView(self, node, query)

    # -- LRU bookkeeping ------------------------------------------------------

    def _touch(self, key: tuple) -> None:
        """Refresh recency on a verified hit (no-op if unaccounted yet)."""
        if key in self._lru:
            self._lru.move_to_end(key)

    def _account(self, key: tuple, size: int) -> None:
        """Register a (re)stored entry under ``key`` and enforce capacity."""
        lru = self._lru
        previous = lru.pop(key, None)
        if previous is not None:
            self.bytes_est -= previous
            self._gauge(-previous)
        lru[key] = size
        self.bytes_est += size
        self._gauge(size)
        capacity = self.capacity
        if capacity is None:
            return
        while len(lru) > capacity:
            victim, victim_size = lru.popitem(last=False)
            if victim[0] == "r":
                self._rows.pop((victim[1], victim[2]), None)
            else:
                per_node = self._fanout.get(victim[1])
                if per_node is not None:
                    per_node.pop(victim[2], None)
                    if not per_node:
                        del self._fanout[victim[1]]
            self.bytes_est -= victim_size
            self._gauge(-victim_size)
            self.evictions += 1
            self._count("memo_evictions")

    def _gauge(self, delta: int) -> None:
        if self._stats is not None and delta:
            self._stats.memo_bytes_est += delta

    def _count(self, counter: str) -> None:
        if self._stats is not None:
            setattr(self._stats, counter, getattr(self._stats, counter) + 1)


# Flat per-object size guesses (CPython-ish): this is a gauge for dashboards
# and eviction sanity checks, not an allocator audit.  URLs are shared
# objects, so they are charged as references plus a small constant.
_ROW_OVERHEAD = 56
_ENTRY_OVERHEAD = 80
_URL_EST = 64


def _rows_bytes(entry: _RowsEntry) -> int:
    total = _ENTRY_OVERHEAD + len(entry.full_key)
    for row in entry.rows:
        total += _ROW_OVERHEAD
        for value in row.values:
            total += (len(value) + 49) if isinstance(value, str) else 28
    return total


def _fanout_bytes(targets: FanoutTargets) -> int:
    total = _ENTRY_OVERHEAD
    for urls in targets.values():
        total += 24 + _URL_EST * len(urls)
    return total


class NodeMemoView:
    """Memo access scoped to one node and one web-query's steps.

    This is the adapter :func:`~repro.core.processing.process_node` talks
    to: ``rows(k)`` / ``store_rows(k, rows)`` address step ``k``'s
    node-query, ``fanout(rem)`` / ``store_fanout(rem, targets)`` address
    the PRE state — the view owns the (node, step → structural key)
    resolution so the processing hot path stays protocol-free.
    """

    __slots__ = ("_memo", "_node", "_query")

    def __init__(self, memo: ResultMemo, node: Url, query: "WebQuery") -> None:
        self._memo = memo
        self._node = node
        self._query = query

    def rows(self, step_index: int) -> tuple[ResultRow, ...] | None:
        return self._memo.rows_for(self._node, self._query.steps[step_index].query)

    def store_rows(self, step_index: int, rows: tuple[ResultRow, ...]) -> None:
        self._memo.store_rows(
            self._node, self._query.steps[step_index].query, rows
        )

    def fanout(self, rem: Pre) -> FanoutTargets | None:
        return self._memo.fanout_for(self._node, rem)

    def store_fanout(self, rem: Pre, targets: FanoutTargets) -> None:
        self._memo.store_fanout(self._node, rem, targets)
