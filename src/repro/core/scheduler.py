"""Run-queue scheduling for the per-site query-server (multi-tenancy).

The paper's §4.4 server "sequentially processes the queue of pending
web-queries" — one FIFO shared by every tenant, so a hot query's backlog
head-of-line-blocks every other query at its site.  This module factors
that queue into a scheduler seam with two policies:

* :class:`SequentialScheduler` (``EngineConfig.scheduler = "fifo"``) —
  the paper's single FIFO, order-identical to the historical behaviour;
* :class:`FairScheduler` (``"fair"``, the default) — one run-queue per
  query plus a round-robin ring across queries: each pump step serves the
  next tenant, so a deep backlog only delays its own query.  With clones
  of a single query queued the ring has one member and the policy
  degenerates to FIFO, so single-tenant runs are bit-identical under
  either setting.

Both policies share the same ceiling bookkeeping: :meth:`push` refuses a
clone that would exceed the per-query or per-server queue limit, and
:meth:`would_admit` answers the transport-level admission probe *before*
a sender's message is delivered — the refusal then travels back as the
transient ``OVERLOADED`` outcome and the sender's
:class:`~repro.net.reliable.ReliableChannel` backs off (backpressure).
:attr:`max_query_depth_seen` is the high-water mark the DST ceiling
invariant audits after a run.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Mapping

from ..errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .config import EngineConfig
    from .webquery import QueryClone, QueryId

__all__ = [
    "CloneScheduler",
    "SequentialScheduler",
    "FairScheduler",
    "make_scheduler",
]


class CloneScheduler:
    """Ceiling bookkeeping shared by both policies.

    Subclasses store the clones and decide ``pop`` order; this base tracks
    per-query depths, the total, and the admission ceilings so both
    policies enforce identical limits.
    """

    def __init__(self, per_query_limit: int | None, server_limit: int | None) -> None:
        self.per_query_limit = per_query_limit
        self.server_limit = server_limit
        self.total = 0
        #: High-water mark of any single query's run-queue depth.
        self.max_query_depth_seen = 0
        self._depths: dict["QueryId", int] = {}

    # -- shared bookkeeping --------------------------------------------------

    def depths(self) -> dict["QueryId", int]:
        """Live per-query queue depths (only non-empty queues appear)."""
        return {qid: depth for qid, depth in self._depths.items() if depth}

    def depth(self, qid: "QueryId") -> int:
        return self._depths.get(qid, 0)

    def would_admit(self, counts: Mapping["QueryId", int]) -> bool:
        """Would a message carrying ``counts`` clones per query fit the
        ceilings?  Consulted by the transport admission probe, so a
        rejection costs the receiver nothing — the message is never built,
        queued or delivered."""
        extra = sum(counts.values())
        if self.server_limit is not None and self.total + extra > self.server_limit:
            return False
        if self.per_query_limit is not None:
            for qid, count in counts.items():
                if self._depths.get(qid, 0) + count > self.per_query_limit:
                    return False
        return True

    def victim(self) -> "QueryId | None":
        """The query with the deepest run-queue — the load-shedding target.

        Ties break on the qid's string form so the choice is deterministic
        regardless of dict insertion history.
        """
        if not self._depths:
            return None
        return max(self._depths, key=lambda qid: (self._depths[qid], str(qid)))

    def _admit_one(self, qid: "QueryId") -> bool:
        if not self.would_admit({qid: 1}):
            return False
        depth = self._depths.get(qid, 0) + 1
        self._depths[qid] = depth
        self.total += 1
        if depth > self.max_query_depth_seen:
            self.max_query_depth_seen = depth
        return True

    def _release(self, qid: "QueryId", count: int = 1) -> None:
        depth = self._depths.get(qid, 0) - count
        if depth > 0:
            self._depths[qid] = depth
        else:
            self._depths.pop(qid, None)
        self.total -= count

    # -- storage policy (subclasses) -----------------------------------------

    def push(self, clone: "QueryClone") -> bool:
        """Queue ``clone``; False if a ceiling refuses it (caller sheds)."""
        raise NotImplementedError

    def pop(self) -> "QueryClone | None":
        """The next clone to process under this policy, or None if idle."""
        raise NotImplementedError

    def take_same_query(
        self, qid: "QueryId", budget: int | None = None
    ) -> list["QueryClone"]:
        """Remove up to ``budget`` queued clones of ``qid`` (None = all) —
        the frontier-batching seed gather."""
        raise NotImplementedError

    def drop_query(self, qid: "QueryId") -> list["QueryClone"]:
        """Remove and return every queued clone of ``qid`` (purge / shed)."""
        raise NotImplementedError

    def drain(self) -> list["QueryClone"]:
        """Remove and return everything (crash: the queue dies with the
        process; the count feeds ``clones_lost_in_crash``)."""
        raise NotImplementedError


class SequentialScheduler(CloneScheduler):
    """The paper's §4.4 single FIFO (``scheduler="fifo"``)."""

    def __init__(self, per_query_limit: int | None, server_limit: int | None) -> None:
        super().__init__(per_query_limit, server_limit)
        self._queue: deque["QueryClone"] = deque()

    def push(self, clone: "QueryClone") -> bool:
        if not self._admit_one(clone.query.qid):
            return False
        self._queue.append(clone)
        return True

    def pop(self) -> "QueryClone | None":
        if not self._queue:
            return None
        clone = self._queue.popleft()
        self._release(clone.query.qid)
        return clone

    def take_same_query(
        self, qid: "QueryId", budget: int | None = None
    ) -> list["QueryClone"]:
        taken: list["QueryClone"] = []
        kept: deque["QueryClone"] = deque()
        for clone in self._queue:
            if clone.query.qid == qid and (budget is None or len(taken) < budget):
                taken.append(clone)
            else:
                kept.append(clone)
        if taken:
            self._queue = kept
            self._release(qid, len(taken))
        return taken

    def drop_query(self, qid: "QueryId") -> list["QueryClone"]:
        dropped = [clone for clone in self._queue if clone.query.qid == qid]
        if dropped:
            self._queue = deque(c for c in self._queue if c.query.qid != qid)
            self._release(qid, len(dropped))
        return dropped

    def drain(self) -> list["QueryClone"]:
        drained = list(self._queue)
        self._queue.clear()
        self._depths.clear()
        self.total = 0
        return drained


class FairScheduler(CloneScheduler):
    """Per-query run-queues + round-robin across queries (``"fair"``).

    Invariant: ``_ring`` holds exactly the qids with a non-empty run-queue,
    each once, in service order; ``pop`` serves the front qid's next clone
    and rotates it to the back.
    """

    def __init__(self, per_query_limit: int | None, server_limit: int | None) -> None:
        super().__init__(per_query_limit, server_limit)
        self._queues: dict["QueryId", deque["QueryClone"]] = {}
        self._ring: deque["QueryId"] = deque()

    def push(self, clone: "QueryClone") -> bool:
        qid = clone.query.qid
        if not self._admit_one(qid):
            return False
        queue = self._queues.get(qid)
        if queue is None:
            queue = self._queues[qid] = deque()
            self._ring.append(qid)
        queue.append(clone)
        return True

    def pop(self) -> "QueryClone | None":
        if not self._ring:
            return None
        qid = self._ring.popleft()
        queue = self._queues[qid]
        clone = queue.popleft()
        if queue:
            self._ring.append(qid)
        else:
            del self._queues[qid]
        self._release(qid)
        return clone

    def take_same_query(
        self, qid: "QueryId", budget: int | None = None
    ) -> list["QueryClone"]:
        queue = self._queues.get(qid)
        if not queue:
            return []
        if budget is None or budget >= len(queue):
            taken = list(queue)
            queue.clear()
        else:
            taken = [queue.popleft() for __ in range(budget)]
        if not queue:
            del self._queues[qid]
            self._ring.remove(qid)
        self._release(qid, len(taken))
        return taken

    def drop_query(self, qid: "QueryId") -> list["QueryClone"]:
        queue = self._queues.pop(qid, None)
        if queue is None:
            return []
        self._ring.remove(qid)
        self._release(qid, len(queue))
        return list(queue)

    def drain(self) -> list["QueryClone"]:
        drained = [clone for qid in self._ring for clone in self._queues[qid]]
        self._queues.clear()
        self._ring.clear()
        self._depths.clear()
        self.total = 0
        return drained


def make_scheduler(config: "EngineConfig") -> CloneScheduler:
    """Build the scheduler ``config`` asks for."""
    if config.scheduler == "fair":
        cls: type[CloneScheduler] = FairScheduler
    elif config.scheduler == "fifo":
        cls = SequentialScheduler
    else:
        raise SimulationError(
            f"unknown scheduler {config.scheduler!r}; expected 'fair' or 'fifo'"
        )
    return cls(config.per_query_queue_limit, config.server_queue_limit)
