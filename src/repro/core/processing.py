"""Per-node query processing — the heart of Figures 3 and 4.

Given one destination node's virtual-relation database and the clone state
``(step_index, rem)``, :func:`process_node` decides:

* whether the node acts as a **ServerRouter** (the remaining PRE is nullable
  — "contains the null link" — so the node-query is evaluated) or a
  **PureRouter** (forward only);
* which result rows to return;
* which ``(step_index, rem', target)`` forwards to emit.

State worklist: a successful node-query both *continues the current PRE*
(deeper nodes may also satisfy ``q_k``) and *starts the next PRE* at this
very node — when ``p_{k+1}`` is itself nullable the node immediately
evaluates ``q_{k+1}`` too (the paper's node 4 "acts twice").  A failed
node-query blocks progression to the next stage; under
``strict_dead_end=True`` it additionally blocks the current PRE's
continuations (Figure 4's literal rule — see DESIGN.md §4.2 for why the
lenient rule is the default).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Callable

from ..model.database import NodeDatabase
from ..model.relations import LinkType
from ..pre.ast import Never, Pre
from ..pre.ops import advance, first_symbols, nullable
from ..relational.query import ResultRow, evaluate_node_query
from ..urlutils import Url
from .config import EngineConfig
from .trace import PURE_ROUTER, SERVER_ROUTER
from .webquery import WebQuery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..relational.compile import CompiledPlan
    from .messages import NodeReport
    from .resultmemo import NodeMemoView
    from .webquery import QueryClone

__all__ = ["Forward", "FrontierResult", "NodeOutcome", "process_frontier", "process_node"]


@dataclass(frozen=True, slots=True)
class Forward:
    """One outgoing clone seed: evaluate step ``step_index`` after ``rem``."""

    step_index: int
    rem: Pre
    target: Url


@dataclass
class NodeOutcome:
    """Everything that happened while processing one node."""

    results: list[tuple[str, ResultRow]] = field(default_factory=list)
    forwards: list[Forward] = field(default_factory=list)
    #: Step indices whose node-query was evaluated here, with success flag.
    evaluations: list[tuple[int, bool]] = field(default_factory=list)
    #: Tuples scanned across evaluations (input to the CPU cost model).
    tuples_scanned: int = 0
    #: Forwards already emitted, maintained incrementally so emission is
    #: O(links) across the whole worklist instead of rebuilding this set
    #: from ``forwards`` on every iteration (O(links²)).
    _emitted: set[Forward] = field(default_factory=set, repr=False, compare=False)

    @property
    def role(self) -> str:
        """ServerRouter if any node-query ran here, else PureRouter."""
        return SERVER_ROUTER if self.evaluations else PURE_ROUTER

    @property
    def answered(self) -> bool:
        return any(success for __, success in self.evaluations)

    @property
    def failed(self) -> bool:
        return any(not success for __, success in self.evaluations)

    @property
    def dead_end(self) -> bool:
        """No results and nothing forwarded — the clone dies at this node."""
        return not self.results and not self.forwards


def process_node(
    node: Url,
    database: "NodeDatabase | Callable[[], NodeDatabase]",
    query: WebQuery,
    step_index: int,
    rem: Pre,
    config: EngineConfig,
    site_documents=None,
    plan_for: "Callable[[int], CompiledPlan] | None" = None,
    memo: "NodeMemoView | None" = None,
) -> NodeOutcome:
    """Run the ServerRouter/PureRouter logic for one node.

    ``site_documents`` is the site-spanning DOCUMENT table required by
    node-queries with sitewide aliases (§7.1 multi-document extension).

    ``plan_for`` maps a step index to that step's compiled node-query plan
    (normally a :class:`~repro.core.plancache.PlanCache` lookup bound to the
    query); when None, evaluation falls back to the tree-walking
    interpreter.  Both paths are result-identical — same rows, same order.

    ``memo`` is the cross-query memo bound to this node (EXP-P4): rows and
    forward fan-outs are served from it when present, and ``database`` may
    then be a zero-arg *provider* that is only invoked — paying the
    document parse and table build — if some probe actually misses.  A full
    memo hit processes the node without ever materializing its database.
    Role accounting is unchanged either way: a served evaluation still
    counts as the node acting as a ServerRouter.

    Pure function: no network, no tables — the server layers protocol
    bookkeeping (log table, CHT reports, message batching) on top.
    """
    outcome = NodeOutcome()
    if callable(database):
        resolve_db: "Callable[[], NodeDatabase]" = database
    else:
        def resolve_db(db: NodeDatabase = database) -> NodeDatabase:
            return db
    # The executor seam (EXP-P5/P6): "columnar" routes plan execution
    # through the full batch pipeline — per-level batch filters, hash-probe
    # joins, leaf kernels, batch projection — and forward emission through
    # the precomputed per-LinkType target selections; "row" leaves both hot
    # paths exactly as the pre-columnar engine ran them.  Interpreter
    # evaluation (plan_for=None) is row-at-a-time on either executor.
    columnar = config.executor == "columnar"
    pending: deque[tuple[int, Pre]] = deque([(step_index, rem)])
    seen: set[tuple[int, Pre]] = set()

    while pending:
        k, current = pending.popleft()
        if (k, current) in seen:
            continue
        seen.add((k, current))

        forward_continuations = True
        if nullable(current) and k < len(query.steps):
            step = query.steps[k]
            rows = memo.rows(k) if memo is not None else None
            if rows is None:
                db = resolve_db()
                if plan_for is None:
                    rows = evaluate_node_query(step.query, db, site_documents)
                elif columnar:
                    rows = plan_for(k).execute_columnar(db, site_documents)
                else:
                    rows = plan_for(k).execute(db, site_documents)
                outcome.tuples_scanned += db.tuple_count()
                if step.query.sitewide_aliases and site_documents is not None:
                    outcome.tuples_scanned += len(site_documents)
                if memo is not None:
                    memo.store_rows(k, tuple(rows))
            success = bool(rows)
            outcome.evaluations.append((k, success))
            if success:
                label = query.step_label(k)
                outcome.results.extend((label, row) for row in rows)
                if k + 1 < len(query.steps):
                    pending.append((k + 1, query.steps[k + 1].pre))
            elif config.strict_dead_end:
                forward_continuations = False

        if forward_continuations:
            _emit_forwards(outcome, resolve_db, k, current, memo, columnar)

    return outcome


@dataclass
class FrontierResult:
    """Aggregate outcome of one site-local frontier traversal (EXP-P2).

    ``reports`` accumulate in BFS order — every parent's report precedes
    its children's, the announce-before-retire order the user-site's CHT
    relies on when the whole frontier ships as one message.  ``remote``
    holds the clones that left the site, in emission order.
    """

    reports: "list[NodeReport]" = field(default_factory=list)
    remote: "list[QueryClone]" = field(default_factory=list)
    #: Total simulated CPU time across the frontier (one schedule pays it).
    service: float = 0.0
    #: Clones evaluated, including the seeds.
    clones_processed: int = 0
    #: Same-site child clones absorbed into the worklist instead of being
    #: re-queued through the event loop — each one is a saved SimClock
    #: round trip (schedule + complete + re-pump).
    local_absorbed: int = 0


def process_frontier(
    seeds: "list[QueryClone]",
    site: str,
    process_clone: "Callable[[QueryClone], tuple[list[NodeReport], list[QueryClone], float]]",
    max_clones: int = 100_000,
) -> FrontierResult:
    """Traverse the PRE × site-link-graph product as one batched frontier.

    :func:`process_node` already walks the PRE × *node* product (the
    ``(step, rem)`` worklist at one document); this driver extends the
    product across the site's link graph: every child clone that targets
    ``site`` itself (a Local or Interior hop) is pushed onto the FIFO
    worklist and processed in the same pass, instead of being bounced
    through the server queue and the SimClock.  FIFO order makes the
    traversal exactly the breadth-first order the unbatched event loop
    produces for the same seeds, so log-table outcomes — which are
    order-sensitive under the ``A*m·B`` rewrite — match the per-event path.

    ``process_clone`` is the protocol layer's per-clone step (log-table
    admission, node-query evaluation, report building and child identity
    stamping); this function owns only the product traversal.

    ``max_clones`` bounds one synchronous pass: with duplicate suppression
    disabled a cyclic site would otherwise spin here forever, invisible to
    the SimClock's ``max_events`` runaway guard.  Leftover worklist entries
    are returned in ``remote``-style continuation via the caller re-queuing
    — see the return's ``pending`` note below — so a runaway query still
    surfaces as a clock-level event storm.  Pure driver: no network, no
    clock, no tables.
    """
    worklist: deque["QueryClone"] = deque(seeds)
    result = FrontierResult()
    while worklist and result.clones_processed < max_clones:
        clone = worklist.popleft()
        reports, children, service = process_clone(clone)
        result.clones_processed += 1
        result.service += service
        result.reports.extend(reports)
        for child in children:
            if child.site == site:
                worklist.append(child)
                result.local_absorbed += 1
            else:
                result.remote.append(child)
    # Overflow (max_clones hit): hand unprocessed local clones back to the
    # caller as if they were remote — the server re-queues same-site clones,
    # so the traversal continues on the next pump under clock supervision.
    result.remote.extend(worklist)
    return result


@lru_cache(maxsize=65536)
def _fanout(rem: Pre) -> tuple[tuple[LinkType, Pre], ...]:
    """The ``(symbol, derivative)`` fan-out of ``rem``, memoized.

    A run revisits the same handful of distinct ``rem`` states at every
    node of the traversal; computing the first-symbol set, sorting it and
    taking the derivatives once per distinct state removes that work from
    the per-node hot path.  Pure function of ``rem`` (PREs are immutable),
    so a shared cache is safe.
    """
    pairs = []
    for ltype in sorted(first_symbols(rem), key=lambda lt: lt.value):
        next_rem = advance(rem, ltype)
        if not isinstance(next_rem, Never):
            pairs.append((ltype, next_rem))
    return tuple(pairs)


def _emit_forwards(
    outcome: NodeOutcome,
    resolve_db: "Callable[[], NodeDatabase]",
    k: int,
    rem: Pre,
    memo: "NodeMemoView | None" = None,
    columnar: bool = False,
) -> None:
    """Append one forward per (link matching ``rem``'s first symbols).

    With a memo bound, the per-link-type target tuples come from (and feed)
    the cross-query fan-out memo; the anchor scan then only runs on a miss.
    Without one, the original direct scan is preserved untouched on the row
    executor — the uncached row hot path pays nothing for the feature
    existing — while the columnar executor reads the database's precomputed
    per-``LinkType`` target selections (same URLs, stripped once per
    database instead of per probe).
    """
    emitted = outcome._emitted
    if memo is None:
        database = resolve_db()
        if columnar:
            for ltype, next_rem in _fanout(rem):
                for target in database.forward_targets(ltype):
                    forward = Forward(k, next_rem, target)
                    if forward not in emitted:
                        emitted.add(forward)
                        outcome.forwards.append(forward)
            return
        for ltype, next_rem in _fanout(rem):
            for anchor in database.outgoing_links(ltype):
                forward = Forward(k, next_rem, anchor.href.without_fragment())
                if forward not in emitted:
                    emitted.add(forward)
                    outcome.forwards.append(forward)
        return
    targets = memo.fanout(rem)
    if targets is None:
        database = resolve_db()
        if columnar:
            targets = {
                ltype: database.forward_targets(ltype) for ltype, __ in _fanout(rem)
            }
        else:
            targets = {
                ltype: tuple(
                    anchor.href.without_fragment()
                    for anchor in database.outgoing_links(ltype)
                )
                for ltype, __ in _fanout(rem)
            }
        memo.store_fanout(rem, targets)
    for ltype, next_rem in _fanout(rem):
        for target in targets.get(ltype, ()):
            forward = Forward(k, next_rem, target)
            if forward not in emitted:
                emitted.add(forward)
                outcome.forwards.append(forward)
