"""The WEBDIS core: distributed query-shipping execution.

This package implements the paper's system proper:

* :mod:`repro.core.webquery` — the Web-Query object (query id, node-query
  sequence) and its travelling clones;
* :mod:`repro.core.cht` — the Current Hosts Table completion protocol
  (Section 2.7);
* :mod:`repro.core.logtable` — the node-query log table with ``A*m·B``
  equivalence and the multi-rewrite (Section 3.1);
* :mod:`repro.core.processing` — per-node ServerRouter/PureRouter logic
  (Figures 3 and 4);
* :mod:`repro.core.server` — the per-site query-server daemon;
* :mod:`repro.core.client` — the user-site client (Figure 2) with passive
  termination (Section 2.8);
* :mod:`repro.core.engine` — the façade wiring web + network + servers +
  client into one runnable simulation.
"""

from .config import EngineConfig
from .client import QueryHandle, UserSiteClient
from .engine import WebDisEngine
from .messages import NodeReport, ResultMessage
from .plancache import PlanCache
from .resultmemo import ResultMemo
from .state import QueryState
from .trace import TraceEvent, Tracer
from .webquery import QueryClone, QueryId, WebQuery, WebQueryStep

__all__ = [
    "EngineConfig",
    "NodeReport",
    "PlanCache",
    "QueryClone",
    "QueryHandle",
    "QueryId",
    "QueryState",
    "ResultMemo",
    "ResultMessage",
    "TraceEvent",
    "Tracer",
    "UserSiteClient",
    "WebDisEngine",
    "WebQuery",
    "WebQueryStep",
]
