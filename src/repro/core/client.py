"""The user-site WEBDIS client: submission, result collection, termination.

Implements Figure 2's ``send_query`` / ``receive_results`` pair:

* ``submit`` allocates a result port, opens the listening socket, seeds the
  CHT with the StartNodes, and dispatches the initial clones (grouped per
  start site);
* each arriving :class:`ResultMessage` retires its reports' CHT entries,
  merges the new entries, and stores result rows; when the CHT shows all
  entries deleted the query is complete — exact completion detection with
  no timeouts;
* ``cancel`` implements passive termination (Section 2.8): the listening
  socket is closed and the query is purged locally; servers discover the
  cancellation when their next result dispatch fails.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..errors import QueryLifecycleError
from ..net.network import (
    FIRST_RESULT_PORT,
    HELPER_PORT,
    QUERY_PORT,
    Network,
    SendOutcome,
)
from ..net.reliable import ReliableChannel
from ..net.simclock import SimClock
from ..net.stats import TrafficStats
from ..relational.query import ResultRow
from ..urlutils import Url
from .cht import CurrentHostsTable, RetireResult
from .config import EngineConfig
from .messages import ChtEntry, Disposition, ResultMessage
from .trace import START_NODE, Tracer
from .webquery import QueryClone, QueryId, WebQuery

__all__ = ["QueryStatus", "QueryHandle", "UserSiteClient"]


class QueryStatus(enum.Enum):
    RUNNING = "running"
    COMPLETE = "complete"
    CANCELLED = "cancelled"
    #: Recovery gave up on part of the query (graceful degradation): the
    #: reachable portion of the answer was collected, the rest written off.
    PARTIAL = "partial"


@dataclass
class QueryHandle:
    """The user's view of one submitted web-query."""

    query: WebQuery
    cht: CurrentHostsTable
    submit_time: float
    status: QueryStatus = QueryStatus.RUNNING
    completion_time: float | None = None
    first_result_time: float | None = None
    cancel_time: float | None = None
    results: list[tuple[str, ResultRow, float]] = field(default_factory=list)
    messages_received: int = 0
    #: Arrival time of the most recent report message (None before any).
    last_message_time: float | None = None
    #: Streaming hooks — results display incrementally, like the paper's
    #: GUI, which showed rows as they arrived rather than at completion.
    on_result: Callable[[str, ResultRow, float], None] | None = None
    on_complete: Callable[["QueryHandle"], None] | None = None
    #: Set by the watchdog when the query made no progress past a deadline.
    #: Note this is a *failure detector*, not completion detection — the
    #: CHT makes completion exact without timeouts (§2.7); the watchdog
    #: only flags queries stalled by lost messages or dead servers.
    stall_detected_at: float | None = None
    #: Bumped by each :meth:`UserSiteClient.reforward_pending` round; clones
    #: re-dispatched by recovery carry the new epoch, so reports from the
    #: superseded dispatches are recognizably stale.
    recovery_epoch: int = 0
    #: ``(node, state)`` pairs whose result rows were already ingested —
    #: node processing is deterministic, so a second stamped report for the
    #: same pair (re-processing after a crash wiped the target's log table)
    #: carries rows the user already has.
    row_sources: set = field(default_factory=set)
    #: Why the query finished PARTIAL (empty otherwise).
    partial_reason: str = ""
    #: Nodes whose pending clones a saturated server shed (OVERLOADED
    #: retractions).  Non-empty at quiescence ⇒ the query's coverage has a
    #: hole, so completion finishes it PARTIAL, never COMPLETE.
    shed_nodes: set = field(default_factory=set)

    @property
    def stalled(self) -> bool:
        return self.stall_detected_at is not None

    @property
    def finished(self) -> bool:
        return self.status is not QueryStatus.RUNNING

    @property
    def qid(self) -> QueryId:
        return self.query.qid

    def rows(self, label: str | None = None) -> list[ResultRow]:
        """Result rows, optionally restricted to one node-query label."""
        return [row for lbl, row, __ in self.results if label is None or lbl == label]

    def unique_rows(self, label: str | None = None) -> list[ResultRow]:
        """Rows with exact duplicates removed, preserving first-seen order."""
        seen: set[tuple[tuple[str, ...], tuple[object, ...]]] = set()
        unique = []
        for row in self.rows(label):
            key = (row.header, row.values)
            if key not in seen:
                seen.add(key)
                unique.append(row)
        return unique

    def response_time(self) -> float | None:
        """Submission-to-completion latency (None while running)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.submit_time

    def first_result_latency(self) -> float | None:
        if self.first_result_time is None:
            return None
        return self.first_result_time - self.submit_time

    def display_rows(self, label: str | None = None) -> list[ResultRow]:
        """Rows after applying the query's display directives.

        ``select distinct`` collapses duplicates; ``order by`` sorts by the
        requested keys where they appear in a row's header (rows from steps
        that lack a key keep arrival order).  This is the result collector's
        "process results for display" step (Figure 2, line 13).
        """
        rows = self.unique_rows(label) if self.query.display_distinct else self.rows(label)
        keys = [
            (name, descending)
            for name, descending in self.query.display_order
            if rows and name in rows[0].header
        ]
        for name, descending in reversed(keys):
            index = rows[0].header.index(name)
            rows = sorted(rows, key=lambda r: str(r.values[index]), reverse=descending)
        if self.query.display_limit is not None:
            rows = rows[: self.query.display_limit]
        return rows

    def display_table(self) -> str:
        """Render results grouped by node-query, Figure-8 style."""
        lines = [f"Results of the query {self.qid.number} by user {self.qid.user}"]
        labels = list(dict.fromkeys(lbl for lbl, __, ___ in self.results))
        for label in labels:
            has_directives = (
                self.query.display_order
                or self.query.display_distinct
                or self.query.display_limit is not None
            )
            rows = self.display_rows(label) if has_directives else self.unique_rows(label)
            if not rows:
                continue
            header = rows[0].header
            widths = [
                max(len(h), *(len(str(r.values[i])) for r in rows))
                for i, h in enumerate(header)
            ]
            lines.append("")
            lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
            lines.append("  ".join("-" * w for w in widths))
            for row in rows:
                lines.append(
                    "  ".join(str(v).ljust(w) for v, w in zip(row.values, widths))
                )
        return "\n".join(lines)


class UserSiteClient:
    """The WEBDIS client process at one user site."""

    def __init__(
        self,
        site: str,
        network: Network,
        clock: SimClock,
        stats: TrafficStats,
        tracer: Tracer,
        config: EngineConfig,
        user: str = "maya",
    ) -> None:
        self.site = site
        self.network = network
        self.clock = clock
        self.stats = stats
        self.tracer = tracer
        self.config = config
        self.user = user
        self.channel = ReliableChannel(
            network, clock, config.retry_policy,
            name=f"client:{site}", trace=self._trace_transport,
        )
        self._query_numbers = itertools.count(1)
        self._ports = itertools.count(FIRST_RESULT_PORT)
        self._handles: dict[QueryId, QueryHandle] = {}
        self._dispatch_serial = itertools.count(1)

    def _trace_transport(self, action: str, detail: str) -> None:
        if self.tracer.enabled:
            self.tracer.record(self.clock.now, "-", self.site, "-", "-", action, detail)

    def _mint_dispatch_id(self) -> str:
        """A dispatch identity unique across the run (site-scoped serial)."""
        return f"u{next(self._dispatch_serial)}@{self.site}"

    # -- Figure 2: send_query ---------------------------------------------------

    def submit(
        self,
        query: WebQuery,
        on_result: Callable[[str, ResultRow, float], None] | None = None,
        on_complete: Callable[[QueryHandle], None] | None = None,
    ) -> QueryHandle:
        """Dispatch ``query`` to its StartNodes and start listening.

        ``on_result(label, row, time)`` fires per arriving row (streaming
        display); ``on_complete(handle)`` fires once at exact completion.
        """
        number = next(self._query_numbers)
        port = next(self._ports)
        qid = QueryId(self.user, self.site, port, number)
        query = query.with_qid(qid)
        handle = QueryHandle(
            query,
            CurrentHostsTable(),
            submit_time=self.clock.now,
            on_result=on_result,
            on_complete=on_complete,
        )
        self._handles[qid] = handle
        self.network.listen(
            self.site, port, lambda src, payload: self._receive(handle, src, payload)
        )

        initial_pre = query.steps[0].pre
        state = query.initial_state()
        by_site: dict[str, list[Url]] = {}
        for url in query.start_urls:
            node = url.without_fragment()
            if self.tracer.enabled:
                self.tracer.record(
                    self.clock.now, str(node), node.host, state, START_NODE, "dispatched"
                )
            by_site.setdefault(node.host, []).append(node)

        for site, nodes in by_site.items():
            groups = [tuple(nodes)] if self.config.batch_per_site else [(n,) for n in nodes]
            for group in groups:
                clone = QueryClone(query, 0, initial_pre, group).with_identity(
                    self._mint_dispatch_id(), handle.recovery_epoch
                )
                for node in group:
                    handle.cht.add(
                        ChtEntry(node, state), self.clock.now,
                        dispatch_id=clone.dispatch_id, epoch=clone.epoch,
                    )
                self._dispatch_clone(handle, clone, "unreachable-start")
        self._check_completion(handle)
        return handle

    def _dispatch_clone(
        self, handle: QueryHandle, clone: QueryClone, failure_action: str
    ) -> None:
        """Send ``clone`` to its site reliably; retire its entries on failure.

        The channel retries transient faults; the callback fires with the
        final outcome (synchronously when the first connect settles it).
        All of the clone's CHT entries must already be in the table —
        retirement on failure keeps completion exact.
        """
        state = clone.state

        def after_send(outcome: SendOutcome) -> None:
            if outcome.delivered:
                self.stats.clones_forwarded += 1
                return
            if outcome is not SendOutcome.ABANDONED and (
                self.config.central_fallback
                and self.network.send(self.site, self.site, HELPER_PORT, clone)
            ):
                self.stats.clones_forwarded += 1
                return
            if handle.status is not QueryStatus.RUNNING:
                return  # cancelled/escalated while the send awaited a retry
            # Destination unreachable / not participating: retire entries.
            for node in clone.dest:
                handle.cht.mark_deleted(
                    ChtEntry(node, state), self.clock.now,
                    dispatch_id=clone.dispatch_id or None,
                )
                if self.tracer.enabled:
                    self.tracer.record(
                        self.clock.now, str(node), clone.site, state, START_NODE,
                        failure_action,
                    )
            self._check_completion(handle)

        self.channel.send(
            self.site, clone.site, QUERY_PORT, clone, after_send, tag=handle.qid
        )

    # -- Figure 2: receive_results ------------------------------------------------

    def _receive(self, handle: QueryHandle, src: str, payload: object) -> None:
        assert isinstance(payload, ResultMessage)
        if handle.status is not QueryStatus.RUNNING:
            return
        now = self.clock.now
        handle.messages_received += 1
        handle.last_message_time = now
        for report in payload.reports:
            if report.disposition is not Disposition.DATA_ONLY:
                if report.disposition is Disposition.OVERLOADED:
                    # A saturated server shed this pending clone: its entry
                    # retires like any retraction, but the coverage hole is
                    # remembered — completion degrades to PARTIAL.
                    handle.shed_nodes.add(report.entry.node)
                outcome = handle.cht.mark_deleted(
                    report.entry, now, dispatch_id=report.dispatch_id or None
                )
                if outcome is RetireResult.ABSORBED_DUPLICATE:
                    self.stats.duplicate_reports_absorbed += 1
                    self._trace_transport(
                        "report-absorbed", f"duplicate {report.dispatch_id}"
                    )
                elif outcome is RetireResult.ABSORBED_STALE:
                    self.stats.stale_reports_absorbed += 1
                    self._trace_transport(
                        "report-absorbed",
                        f"stale {report.dispatch_id} epoch {report.epoch}",
                    )
                # The announcements are accepted even from an absorbed report:
                # the server really did forward those children (forwards
                # follow a *successful* report connect), so the CHT must
                # expect their reports.  Idempotence comes from the child
                # dispatch identities, not from dropping the announcement.
                for index, entry in enumerate(report.new_entries):
                    child_id = (
                        report.child_ids[index]
                        if index < len(report.child_ids)
                        else ""
                    )
                    handle.cht.add(
                        entry, now, dispatch_id=child_id or None, epoch=report.epoch
                    )
            self._ingest_rows(handle, report, now)
        if self.config.debug_consistency_checks:
            handle.cht.check_consistency()
        self._check_completion(handle)

    def _ingest_rows(self, handle: QueryHandle, report, now: float) -> None:
        """Store a report's rows, deduplicating re-processed work.

        Node processing is deterministic, so two *stamped* reports for the
        same ``(node, state)`` carry identical rows — the second is a
        recovery artifact (the clone was re-forwarded and the target's log
        table had been wiped by a crash).  Unstamped reports keep the legacy
        behaviour: every row is stored and duplicate suppression is the
        display layer's job.
        """
        if not report.results:
            return
        if report.dispatch_id:
            source = (report.entry.node, report.entry.state)
            if source in handle.row_sources and handle.recovery_epoch > 0:
                # Only queries that have been through a recovery round can
                # see re-processing duplicates; before that, a repeated
                # (node, state) is legitimate protocol traffic (e.g. the
                # log-table-disabled ablation) and is kept, as before.
                self.stats.duplicate_rows_dropped += len(report.results)
                self._trace_transport(
                    "rows-deduplicated", f"{report.entry.node} x{len(report.results)}"
                )
                return
            handle.row_sources.add(source)
        for label, row in report.results:
            if handle.first_result_time is None:
                handle.first_result_time = now
            handle.results.append((label, row, now))
            if handle.on_result is not None:
                handle.on_result(label, row, now)

    def _check_completion(self, handle: QueryHandle) -> None:
        if handle.status is QueryStatus.RUNNING and handle.cht.all_deleted():
            if handle.shed_nodes:
                # Every entry resolved, but some were resolved by overload
                # shedding — coverage has a known hole, so this is the
                # graceful-degradation outcome, not completion.
                handle.status = QueryStatus.PARTIAL
                handle.partial_reason = (
                    f"overload-shed ({len(handle.shed_nodes)} node(s))"
                )
                self.stats.queries_partial += 1
                self._trace_transport(
                    "finished-partial",
                    f"{handle.qid}: {len(handle.shed_nodes)} node(s) shed",
                )
            else:
                handle.status = QueryStatus.COMPLETE
            handle.completion_time = self.clock.now
            self.network.close(self.site, handle.qid.port)
            if handle.on_complete is not None:
                handle.on_complete(handle)

    # -- failure detection (extension) --------------------------------------------

    def watch(
        self,
        handle: QueryHandle,
        quiet_timeout: float,
        on_stall: Callable[[QueryHandle], None] | None = None,
    ) -> None:
        """Flag ``handle`` as stalled after ``quiet_timeout`` silent seconds.

        "Silent" means no report message arrived.  Progress re-arms the
        timer; completion or cancellation disarms it.  The handle stays
        RUNNING (late messages are still accepted) — the caller decides
        whether to cancel and retry.
        """

        def arm() -> None:
            # Capture the count *now*; the check compares against it later.
            count_at_arm = handle.messages_received
            self.clock.schedule(quiet_timeout, lambda: check(count_at_arm))

        def check(expected_count: int) -> None:
            if handle.status is not QueryStatus.RUNNING:
                return
            if handle.messages_received != expected_count:
                arm()  # progress since the timer was set: re-arm
                return
            handle.stall_detected_at = self.clock.now
            if on_stall is not None:
                on_stall(handle)

        arm()

    # -- crash recovery (extension): re-forward orphaned clones --------------------

    def reforward_pending(self, handle: QueryHandle) -> int:
        """Re-dispatch a clone for every outstanding CHT entry.

        A clone that died inside a crashed query-server (queued, being
        processed, or in flight to it) leaves its CHT entry pending forever:
        the forwarder saw a successful connect, so no retry fires and no
        retraction arrives.  The entry's ``(node, state)`` key is exactly the
        paper's complete clone state (§2.7.1), so the user-site can rebuild
        the clone and forward it afresh — each re-forward is resolved by a
        new report (possibly a DUPLICATE drop at the target's log table) or,
        if the site stays unreachable, a retraction.

        Call this only for entries believed *orphaned* — e.g. from the
        :meth:`watch` stall detector.  Re-forwarding an entry whose original
        report is still in flight would retire it twice and unbalance the
        CHT.  Returns the number of clones re-forwarded.
        """
        if handle.status is not QueryStatus.RUNNING:
            return 0
        now = self.clock.now
        query = handle.query
        handle.recovery_epoch += 1
        epoch = handle.recovery_epoch

        if self.config.debug_unfenced_recovery:
            return self._reforward_unfenced(handle, now)

        # Identity-tracked instances: group, supersede under the new epoch,
        # re-dispatch.  A late report from the old dispatch is absorbed as
        # stale; the re-forward's own report retires the new instance.
        instance_groups: dict[tuple[str, int, object], list] = {}
        for instance in handle.cht.pending_instances():
            entry = instance.entry
            assert entry is not None
            step_index = len(query.steps) - entry.state.num_q
            key = (entry.node.host, step_index, entry.state.rem)
            instance_groups.setdefault(key, []).append(instance)
        count = 0
        for (site, step_index, rem), instances in sorted(
            instance_groups.items(), key=lambda item: str(item[0])
        ):
            seen: dict[Url, object] = {}
            for instance in instances:
                seen.setdefault(instance.node, instance)
            clone = QueryClone(
                query, step_index, rem, tuple(seen)
            ).with_identity(self._mint_dispatch_id(), epoch)
            for node, instance in seen.items():
                handle.cht.supersede(
                    instance.dispatch_id, node, clone.dispatch_id, epoch, now
                )
                if self.tracer.enabled:
                    self.tracer.record(
                        now, str(node), site, clone.state, "-", "re-forwarded",
                        detail=f"epoch {epoch} supersedes {instance.dispatch_id}",
                    )
            self.stats.clones_reforwarded += 1
            count += 1
            self._dispatch_clone(handle, clone, "unreachable-reforward")

        # Legacy (unstamped) entries keep the pre-identity behaviour: the
        # rebuilt clone travels unstamped and its report retires the signed
        # count — with the documented double-retire hazard.
        legacy_groups: dict[tuple[str, int, object], list[Url]] = {}
        for entry in handle.cht.pending_entries():
            if any(
                inst.entry == entry for inst in handle.cht.pending_instances()
            ):
                continue
            step_index = len(query.steps) - entry.state.num_q
            key = (entry.node.host, step_index, entry.state.rem)
            legacy_groups.setdefault(key, []).append(entry.node)
        for (site, step_index, rem), nodes in sorted(legacy_groups.items(), key=str):
            clone = QueryClone(query, step_index, rem, tuple(dict.fromkeys(nodes)))
            if self.tracer.enabled:
                for node in clone.dest:
                    self.tracer.record(
                        now, str(node), site, clone.state, "-", "re-forwarded"
                    )
            self.stats.clones_reforwarded += 1
            count += 1
            self._dispatch_clone(handle, clone, "unreachable-reforward")
        if self.config.debug_consistency_checks:
            handle.cht.check_consistency()
        return count

    def _reforward_unfenced(self, handle: QueryHandle, now: float) -> int:
        """DEBUG ONLY: the pre-epoch-fence recovery, preserved as a bug oracle.

        Re-dispatches every pending stamped instance as an *unstamped*
        legacy clone, without superseding the instance — exactly what
        recovery did before dispatch identities existed.  The re-forward's
        unstamped report then retires a legacy signed count that no legacy
        addition ever announced (the original addition is instance-tracked),
        driving the ``(node, state)`` count negative; the stamped instance
        meanwhile stays pending until the original — possibly dead — server
        reports.  Net effect: the query hangs or spuriously escalates
        PARTIAL, and :meth:`CurrentHostsTable.negative_legacy_entries` is
        non-empty at quiescence.  Exists so the DST shrinker has a known
        bug to find (``EngineConfig.debug_unfenced_recovery``).
        """
        query = handle.query
        groups: dict[tuple[str, int, object], list[Url]] = {}
        for instance in handle.cht.pending_instances():
            entry = instance.entry
            assert entry is not None
            step_index = len(query.steps) - entry.state.num_q
            key = (entry.node.host, step_index, entry.state.rem)
            groups.setdefault(key, []).append(entry.node)
        count = 0
        for (site, step_index, rem), nodes in sorted(groups.items(), key=str):
            clone = QueryClone(query, step_index, rem, tuple(dict.fromkeys(nodes)))
            if self.tracer.enabled:
                for node in clone.dest:
                    self.tracer.record(
                        now, str(node), site, clone.state, "-", "re-forwarded",
                        detail="unfenced (debug)",
                    )
            self.stats.clones_reforwarded += 1
            count += 1
            self._dispatch_clone(handle, clone, "unreachable-reforward")
        return count

    # -- Section 2.8: passive termination ----------------------------------------

    def cancel(self, handle: QueryHandle) -> None:
        """Cancel a running query by closing its result socket.

        Outbound sends still awaiting a retry for this query are abandoned
        too — a cancelled query must not keep re-offering its clones to
        sites that were down when it was alive.
        """
        if handle.status is not QueryStatus.RUNNING:
            raise QueryLifecycleError(f"cannot cancel a {handle.status.value} query")
        handle.status = QueryStatus.CANCELLED
        handle.cancel_time = self.clock.now
        self.network.close(self.site, handle.qid.port)
        abandoned = self.channel.reset(tag=handle.qid)
        if abandoned:
            self._trace_transport(
                "cancel-abandoned-sends", f"{handle.qid}: {abandoned}"
            )

    # -- graceful degradation (extension): finish with partial coverage ------------

    def finish_partial(self, handle: QueryHandle, reason: str) -> int:
        """Give up on the outstanding entries and finish the query PARTIAL.

        Every pending dispatch instance is written off (visible afterwards
        via ``handle.cht.abandoned_instances()`` for the coverage report),
        the result socket closes so lingering servers purge via passive
        termination, and pending outbound retries are abandoned.  Returns
        the number of instances written off.
        """
        if handle.status is not QueryStatus.RUNNING:
            raise QueryLifecycleError(
                f"cannot finish a {handle.status.value} query as partial"
            )
        now = self.clock.now
        written_off = 0
        for instance in handle.cht.pending_instances():
            handle.cht.abandon(instance.dispatch_id, instance.node, reason, now)
            written_off += 1
        handle.status = QueryStatus.PARTIAL
        handle.partial_reason = reason
        handle.completion_time = now
        handle.cancel_time = now
        self.stats.queries_partial += 1
        self.network.close(self.site, handle.qid.port)
        self.channel.reset(tag=handle.qid)
        self._trace_transport(
            "finished-partial", f"{handle.qid}: {written_off} written off ({reason})"
        )
        if handle.on_complete is not None:
            handle.on_complete(handle)
        return written_off

    def handles(self) -> list[QueryHandle]:
        return list(self._handles.values())
