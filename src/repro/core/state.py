"""Query processing state.

The paper (Section 2.7.1): *"the state of a query Q_clone ... is completely
captured by num_q, the remaining number of node-queries yet to be processed,
and rem(p_i), the remaining part of the current PRE."*  Both the CHT and the
node-query log table key on this state.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pre.ast import Pre
from ..pre.ops import pre_size

__all__ = ["QueryState"]


@dataclass(frozen=True, slots=True)
class QueryState:
    """``(num_q, rem(p))`` — hashable so tables can key on it."""

    num_q: int
    rem: Pre

    def __post_init__(self) -> None:
        if self.num_q < 0:
            raise ValueError(f"num_q must be >= 0, got {self.num_q}")

    def size_bytes(self) -> int:
        """Serialized size estimate (4 bytes per PRE node + the counter)."""
        return 4 + 4 * pre_size(self.rem)

    def __str__(self) -> str:
        return f"({self.num_q}, {self.rem})"
