"""Messages flowing back to the user-site.

Optimization 3 of Section 3.2: node-query results and the new
``(NextNode, QueryState)`` information for the CHT are *shipped together* in
one message, batched across all the nodes a clone covered at a site.  Each
:class:`NodeReport` inside the message is the per-node unit: it names the
processed node and received state (the CHT entry to mark deleted), lists the
CHT entries for the clones about to be forwarded, and carries that node's
result rows.

Frontier batching widens the batch: one :class:`ResultMessage` then covers
*every* clone a site-local frontier processed, in BFS order.  That order is
load-bearing for the CHT — a child's report (retiring its entry) always
appears *after* the parent report whose ``new_entries`` announced it, so the
user-site processes announce-before-retire within the one message exactly as
it would across separate per-hop messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import DisqlSemanticsError
from ..relational.query import ResultRow
from ..urlutils import Url
from .state import QueryState
from .webquery import QueryClone, QueryId

__all__ = ["Disposition", "ChtEntry", "NodeReport", "ResultMessage", "CloneBundle"]


class Disposition(enum.Enum):
    """How the server handled one destination node."""

    PROCESSED = "processed"  # node-query stage processed normally
    DATA_ONLY = "data-only"  # result rows only; carries no CHT bookkeeping
    DUPLICATE = "duplicate"  # dropped by the node-query log table
    REWRITTEN = "rewritten"  # log table superset: query rewritten, processed
    MISSING = "missing"  # node does not exist at this site (floating link)
    UNREACHABLE = "unreachable"  # forward of this entry's clone failed
    PURGED = "purged"  # query purged at the server (termination)
    OVERLOADED = "overloaded"  # clone shed by a saturated server (load shedding)


@dataclass(frozen=True, slots=True)
class ChtEntry:
    """One ``(node URL, query state)`` pair — the CHT's key."""

    node: Url
    state: QueryState

    def size_bytes(self) -> int:
        return len(str(self.node)) + self.state.size_bytes()

    def __str__(self) -> str:
        return f"{self.node} {self.state}"


@dataclass(frozen=True, slots=True)
class NodeReport:
    """Everything the user-site learns about one processed node.

    ``entry`` is the CHT entry this report retires (the paper's "top-most
    entry in the list").  ``new_entries`` are the entries for the clones the
    server is about to forward — sent *before* the forwarding happens so the
    CHT always has complete knowledge (Section 2.7.1).  ``results`` pairs
    each row with the node-query label that produced it.

    Dispatch identity (self-healing extension): ``dispatch_id`` echoes the
    identity of the clone dispatch this report resolves, and ``epoch`` the
    recovery epoch that dispatch was issued under.  ``child_ids`` runs
    parallel to ``new_entries`` — ``child_ids[i]`` is the dispatch identity
    the clone carrying ``new_entries[i]`` will travel under, minted by the
    reporting server *before* the forward.  The user-site's CHT keys its
    accounting on these identities so a late or duplicated report is
    absorbed idempotently instead of unbalancing the table.  Empty strings
    mean an unstamped (legacy) report, accounted by signed counts.
    """

    entry: ChtEntry
    disposition: Disposition
    new_entries: tuple[ChtEntry, ...] = ()
    results: tuple[tuple[str, ResultRow], ...] = ()
    dispatch_id: str = ""
    epoch: int = 0
    child_ids: tuple[str, ...] = ()

    def size_bytes(self) -> int:
        size = self.entry.size_bytes() + 1
        size += sum(entry.size_bytes() for entry in self.new_entries)
        for label, row in self.results:
            size += len(label) + sum(len(str(value)) for value in row.values)
        size += len(self.dispatch_id) + 4 + sum(len(cid) for cid in self.child_ids)
        return size


@dataclass(frozen=True, slots=True)
class ResultMessage:
    """A batch of node reports sent directly to the user-site (§2.6, §3.2).

    ``kind`` is ``"result"`` for the paper's combined message; the
    results/CHT-separation ablation labels the CHT-only half ``"cht"``.
    """

    qid: QueryId
    reports: tuple[NodeReport, ...]
    kind: str = "result"

    def size_bytes(self) -> int:
        return self.qid.size_bytes() + sum(report.size_bytes() for report in self.reports) + 8

    def result_count(self) -> int:
        return sum(len(report.results) for report in self.reports)


@dataclass(frozen=True, slots=True)
class CloneBundle:
    """Several clones travelling to one destination site in one message.

    Coalesced dispatch (frontier batching, EXP-P2): a frontier can seed
    clones in *different* states for the same remote site; instead of one
    network message per ``(site, state)`` group, the server ships them all
    under a single envelope.  The receiving server unpacks the bundle into
    its queue — each inner clone keeps its own dispatch identity, so CHT
    accounting is exactly as if the clones had travelled separately.
    """

    clones: tuple[QueryClone, ...]

    def __post_init__(self) -> None:
        if not self.clones:
            raise DisqlSemanticsError("clone bundle is empty")
        sites = {clone.site for clone in self.clones}
        if len(sites) != 1:
            raise DisqlSemanticsError(f"bundle spans multiple sites: {sorted(sites)}")

    @property
    def site(self) -> str:
        return self.clones[0].site

    @property
    def kind(self) -> str:
        return "query-batch"

    def size_bytes(self) -> int:
        return sum(clone.size_bytes() for clone in self.clones) + 8


@dataclass(frozen=True, slots=True)
class RelayMessage:
    """A result message retracing the query's path (§2.6 alternative).

    ``remaining`` lists the server sites still to traverse backwards; the
    last hop delivers ``inner`` to the user-site's result port.  Only used
    when ``EngineConfig.direct_result_return`` is False.
    """

    remaining: tuple[str, ...]
    inner: ResultMessage

    @property
    def kind(self) -> str:
        return "relay"

    def size_bytes(self) -> int:
        return self.inner.size_bytes() + sum(len(site) + 2 for site in self.remaining) + 8
