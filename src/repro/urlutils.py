"""URL handling for the simulated Web.

WEBDIS classifies every hyperlink by where its destination lives relative to
the document that contains it (paper Section 2):

* **interior** (``I``) — a fragment inside the same web resource,
* **local** (``L``) — a different resource on the same server,
* **global** (``G``) — a resource on a different server,
* **null** (``N``) — the resource itself (the zero-length path).

That classification is purely a function of the *base* and *href* URLs, so it
lives here next to the URL type rather than in the link-model module.

URLs in this library are the simplified ``scheme://host/path[#fragment]``
shape that the 1999-era Web (and the paper's examples) used.  The type is a
frozen dataclass so URLs can key dictionaries and sets — both the CHT and the
node-query log table are keyed by node URL.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass
from functools import lru_cache

from .errors import UrlError

DEFAULT_SCHEME = "http"
_SCHEME_SEP = "://"


@dataclass(frozen=True, slots=True)
class Url:
    """A parsed, normalized URL.

    Attributes:
        host: the server name, lower-cased (``dsl.serc.iisc.ernet.in``).
        path: absolute resource path, always starting with ``/``.
        fragment: the part after ``#`` (empty when absent); fragments
            distinguish *interior* links from *null* links.
        scheme: protocol name, lower-cased; defaults to ``http``.
    """

    host: str
    path: str = "/"
    fragment: str = ""
    scheme: str = DEFAULT_SCHEME

    def __post_init__(self) -> None:
        if not self.host:
            raise UrlError("URL host must be non-empty")
        if not self.path.startswith("/"):
            raise UrlError(f"URL path must be absolute, got {self.path!r}")

    @property
    def site(self) -> str:
        """The hosting site name; WEBDIS servers are deployed one per site."""
        return self.host

    def without_fragment(self) -> "Url":
        """This URL with any ``#fragment`` removed (the *node* identity)."""
        if not self.fragment:
            return self
        return Url(self.host, self.path, "", self.scheme)

    def with_fragment(self, fragment: str) -> "Url":
        """This URL pointing at ``fragment`` inside the same resource."""
        return Url(self.host, self.path, fragment, self.scheme)

    def __str__(self) -> str:
        base = f"{self.scheme}{_SCHEME_SEP}{self.host}{self.path}"
        return f"{base}#{self.fragment}" if self.fragment else base


def parse_url(text: str, *, base: Url | None = None) -> Url:
    """Parse ``text`` into a :class:`Url`, resolving relative forms via ``base``.

    Accepted shapes::

        http://host/path#frag     absolute
        host/path                 scheme-less absolute (paper style:
                                  ``dsl.serc.iisc.ernet.in/people``)
        /path                     host-relative          (requires base)
        path or ./path or ../p    document-relative      (requires base)
        #frag                     fragment-only          (requires base)

    Raises:
        UrlError: on empty input or when a relative form has no base.
    """
    text = text.strip()
    if not text:
        raise UrlError("empty URL")

    if _SCHEME_SEP in text:
        scheme, _, rest = text.partition(_SCHEME_SEP)
        return _parse_host_rest(rest, scheme.lower() or DEFAULT_SCHEME)

    if text.startswith("#"):
        if base is None:
            raise UrlError(f"fragment-only URL {text!r} needs a base URL")
        return base.with_fragment(text[1:])

    if text.startswith("/"):
        if base is None:
            raise UrlError(f"host-relative URL {text!r} needs a base URL")
        path, frag = _split_fragment(text)
        return Url(base.host, _normalize_path(path), frag, base.scheme)

    head = text.split("/", 1)[0].split("#", 1)[0]
    if _looks_like_host(head):
        return _parse_host_rest(text, DEFAULT_SCHEME)

    if base is None:
        raise UrlError(f"relative URL {text!r} needs a base URL")
    path, frag = _split_fragment(text)
    directory = posixpath.dirname(base.path)
    return Url(base.host, _normalize_path(posixpath.join(directory, path)), frag, base.scheme)


def _parse_host_rest(rest: str, scheme: str) -> Url:
    """Parse ``host[/path][#frag]`` (everything after ``scheme://``)."""
    rest, frag = _split_fragment(rest)
    host, slash, path = rest.partition("/")
    if not host:
        raise UrlError(f"URL {rest!r} has an empty host")
    return Url(host.lower(), _normalize_path("/" + path if slash else "/"), frag, scheme)


def _split_fragment(text: str) -> tuple[str, str]:
    path, _, frag = text.partition("#")
    return path, frag


def _normalize_path(path: str) -> str:
    """Collapse ``.``/``..`` segments and duplicate slashes; keep it absolute.

    A trailing slash is preserved (``/dir/`` is a directory reference and
    resolves relative URLs differently than ``/dir``).
    """
    trailing = path.endswith("/") and path != "/"
    normalized = posixpath.normpath(path)
    if normalized == ".":
        return "/"
    if trailing and not normalized.endswith("/"):
        normalized += "/"
    if normalized.startswith("//"):
        # POSIX preserves a leading double slash; URLs have no use for it.
        normalized = normalized[1:]
    if not normalized.startswith("/"):
        normalized = "/" + normalized
    return normalized


@lru_cache(maxsize=4096)
def _looks_like_host(token: str) -> bool:
    """Heuristic for scheme-less absolute URLs (``csa.iisc.ernet.in/...``).

    A token is treated as a host when it contains a dot and every
    dot-separated label is a well-formed DNS label.  Single-word tokens
    (``people``) and file-looking tokens (``index.html``) are *not* hosts.
    """
    if "." not in token:
        return False
    labels = token.lower().split(".")
    if any(not label or not label.replace("-", "").isalnum() for label in labels):
        return False
    # "index.html" style names: final label is a well-known file suffix.
    if labels[-1] in _FILE_SUFFIXES:
        return False
    return True


_FILE_SUFFIXES = frozenset(
    {"html", "htm", "xml", "txt", "ps", "pdf", "gz", "gif", "jpg", "jpeg", "png", "css", "js"}
)


def classify_link(base: Url, href: Url) -> str:
    """Classify the link ``base -> href`` as one of ``"I"``/``"L"``/``"G"``/``"N"``.

    Per the paper's definitions: *interior* when the destination is a
    fragment of the same resource, *local* when it is a different resource on
    the same server, *global* when the server differs, and *null* when the
    link points at the resource itself (no fragment).
    """
    if href.host != base.host:
        return "G"
    if href.path != base.path:
        return "L"
    return "I" if href.fragment else "N"
