"""Synthetic HTML page rendering.

Web builders (:mod:`repro.web`) describe pages structurally — title,
paragraphs, links, emphasized segments — and this module renders them to real
HTML text.  The rendered text then flows through the *actual* tokenizer and
parser when a query-server constructs its virtual relations, so the whole
pipeline is exercised exactly as it would be on live pages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["PageSpec", "render_page"]


def _escape(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attr(text: str) -> str:
    return _escape(text).replace('"', "&quot;")


@dataclass(frozen=True, slots=True)
class PageSpec:
    """A declarative description of one synthetic HTML page.

    Attributes:
        title: the ``<title>`` content.
        paragraphs: plain-text paragraphs rendered as ``<p>`` blocks.
        links: ``(label, href)`` pairs rendered as one ``<li><a>`` each.
        emphasized: ``(tag, text)`` pairs rendered as container segments,
            e.g. ``("b", "Breaking news")`` — these become rel-infons with
            that delimiter.
        ruled: text blocks each followed by an ``<hr>`` — these become
            rel-infons with delimiter ``hr`` (the paper's convener idiom).
        padding: extra filler words appended to inflate the document length;
            used by benchmarks to control document sizes.
    """

    title: str
    paragraphs: Sequence[str] = ()
    links: Sequence[tuple[str, str]] = ()
    emphasized: Sequence[tuple[str, str]] = ()
    ruled: Sequence[str] = ()
    padding: int = 0
    extra_head: str = ""

    def word_estimate(self) -> int:
        """Rough visible word count; handy for sizing assertions in tests."""
        words = len(self.title.split()) + self.padding
        for paragraph in self.paragraphs:
            words += len(paragraph.split())
        for label, __ in self.links:
            words += len(label.split())
        for __, text in self.emphasized:
            words += len(text.split())
        for text in self.ruled:
            words += len(text.split())
        return words


_FILLER_WORDS = (
    "research", "systems", "database", "network", "campus", "laboratory",
    "faculty", "publications", "projects", "seminar", "archive", "resources",
)


def render_page(spec: PageSpec) -> str:
    """Render ``spec`` to an HTML string."""
    parts: list[str] = [
        "<html>",
        "<head>",
        f"<title>{_escape(spec.title)}</title>",
    ]
    if spec.extra_head:
        parts.append(spec.extra_head)
    parts += ["</head>", "<body>", f"<h1>{_escape(spec.title)}</h1>"]

    for paragraph in spec.paragraphs:
        parts.append(f"<p>{_escape(paragraph)}</p>")

    for tag, text in spec.emphasized:
        parts.append(f"<{tag}>{_escape(text)}</{tag}>")

    for text in spec.ruled:
        # The text sits directly before an <hr> (no block wrapper) so the
        # parser attributes it to the horizontal rule as a rel-infon.
        parts.append(_escape(text))
        parts.append("<hr>")

    if spec.links:
        parts.append("<ul>")
        for label, href in spec.links:
            parts.append(f'<li><a href="{_escape_attr(href)}">{_escape(label)}</a></li>')
        parts.append("</ul>")

    if spec.padding:
        filler = " ".join(_FILLER_WORDS[i % len(_FILLER_WORDS)] for i in range(spec.padding))
        parts.append(f"<p>{filler}</p>")

    parts += ["</body>", "</html>"]
    return "\n".join(parts)
