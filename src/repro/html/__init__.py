"""Lightweight HTML tooling for the simulated Web.

WEBDIS models every web resource as an HTML document (paper Section 2.2) and
builds its virtual relations — DOCUMENT, ANCHOR, RELINFON — from a single
pass over the document.  This subpackage provides the three pieces that make
that possible without any external dependency:

* :mod:`repro.html.tokenizer` — a forgiving HTML 2.0-era tokenizer,
* :mod:`repro.html.parser` — extraction of title, visible text, anchors and
  delimiter-scoped *rel-infon* segments,
* :mod:`repro.html.generator` — rendering of synthetic pages so web builders
  can express sites structurally and still exercise the real parser.
"""

from .generator import PageSpec, render_page
from .parser import Anchor, ParsedDocument, RelInfon, parse_html
from .tokenizer import Comment, EndTag, StartTag, Text, Token, tokenize

__all__ = [
    "Anchor",
    "Comment",
    "EndTag",
    "PageSpec",
    "ParsedDocument",
    "RelInfon",
    "StartTag",
    "Text",
    "Token",
    "parse_html",
    "render_page",
    "tokenize",
]
