"""HTML document analysis for virtual-relation construction.

A single pass over the token stream (mirroring the paper's Database
Constructor, Section 4.4) produces everything the three virtual relations
need:

* the ``<title>`` and the visible text for DOCUMENT,
* every ``<a href=...>label</a>`` for ANCHOR,
* *rel-infon* segments for RELINFON.

Rel-infons (from reference [12] of the paper) are delimiter-scoped regions of
the document.  Two delimiter styles are supported:

* **container tags** (``b``, ``i``, ``h1`` ... ``font``): the rel-infon is
  the text enclosed by the tag pair;
* **void tags** (``hr``, ``br``): the rel-infon is the text block *preceding*
  each occurrence — the paper's example query matches a convener name that
  "is usually succeeded by a horizontal line" with ``delimiter = "hr"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .tokenizer import EndTag, StartTag, Text, tokenize

__all__ = ["Anchor", "RelInfon", "ParsedDocument", "parse_html", "VOID_TAGS"]

#: Tags that never contain content; for these a rel-infon is the preceding block.
VOID_TAGS = frozenset({"hr", "br", "img", "meta", "input", "link", "base"})

#: Tags whose content is invisible and must not leak into DOCUMENT.text.
_INVISIBLE_TAGS = frozenset({"script", "style", "title"})

#: Structural containers that never form rel-infons of their own.
_STRUCTURAL_TAGS = frozenset({"html", "head", "body"})

#: Tags that terminate the "preceding block" used for void-tag rel-infons.
_BLOCK_TAGS = frozenset(
    {"p", "div", "td", "th", "tr", "table", "ul", "ol", "li", "h1", "h2", "h3", "h4", "h5", "h6", "hr", "br", "body", "html"}
)


@dataclass(frozen=True, slots=True)
class Anchor:
    """One hyperlink: the anchor ``label`` text and the raw ``href`` string."""

    label: str
    href: str


@dataclass(frozen=True, slots=True)
class RelInfon:
    """One delimiter-scoped text segment (``delimiter`` is the tag name)."""

    delimiter: str
    text: str


@dataclass(frozen=True, slots=True)
class ParsedDocument:
    """The structural summary of one HTML document.

    Attributes:
        title: content of the first ``<title>`` element ("" when absent).
        text: whitespace-normalized visible text of the document.
        anchors: hyperlinks in document order.
        relinfons: delimiter-scoped segments in document order; segments for
            *every* delimiter tag present are collected so that RELINFON can
            be filtered per query without re-parsing.
        base_href: the first ``<base href=...>`` value, if any — relative
            hyperlinks resolve against it instead of the document URL
            (HTML 2.0 §5.2.2).
    """

    title: str
    text: str
    anchors: tuple[Anchor, ...]
    relinfons: tuple[RelInfon, ...]
    base_href: str | None = None


def normalize_space(text: str) -> str:
    """Collapse all whitespace runs to single spaces and strip the ends."""
    return " ".join(text.split())


def parse_html(html: str) -> ParsedDocument:
    """Parse ``html`` into a :class:`ParsedDocument` in one pass."""
    title_parts: list[str] = []
    text_parts: list[str] = []
    anchors: list[Anchor] = []
    relinfons: list[RelInfon] = []

    in_title = False
    invisible_depth = 0
    base_href: str | None = None
    # Stack of (tag, text-part-count-at-open) for open container delimiters;
    # the count marks where the container's inner text starts.
    container_stack: list[tuple[str, int]] = []
    # Text accumulated since the last block boundary (for void-tag infons).
    block_parts: list[str] = []
    current_anchor_href: str | None = None
    anchor_label_parts: list[str] = []

    for token in tokenize(html):
        if isinstance(token, Text):
            if in_title:
                title_parts.append(token.data)
            elif invisible_depth == 0:
                text_parts.append(token.data)
                block_parts.append(token.data)
                if current_anchor_href is not None:
                    anchor_label_parts.append(token.data)
            continue

        if isinstance(token, StartTag):
            name = token.name
            if name == "title":
                in_title = True
            elif name in _INVISIBLE_TAGS:
                invisible_depth += 1
            elif name == "a":
                href = token.attrs.get("href")
                if href is not None:
                    current_anchor_href = href
                    anchor_label_parts = []
            elif name == "base" and base_href is None:
                base_href = token.attrs.get("href")
            if name in VOID_TAGS:
                block = normalize_space("".join(block_parts))
                if block:
                    relinfons.append(RelInfon(name, block))
                block_parts = []
            elif not token.self_closing:
                container_stack.append((name, len(text_parts)))
                if name in _BLOCK_TAGS:
                    block_parts = []
            continue

        if isinstance(token, EndTag):
            name = token.name
            if name == "title":
                in_title = False
            elif name in _INVISIBLE_TAGS:
                invisible_depth = max(0, invisible_depth - 1)
            elif name == "a" and current_anchor_href is not None:
                anchors.append(
                    Anchor(normalize_space("".join(anchor_label_parts)), current_anchor_href)
                )
                current_anchor_href = None
                anchor_label_parts = []
            _close_container(name, container_stack, text_parts, relinfons)
            if name in _BLOCK_TAGS:
                block_parts = []
            continue
        # Comments carry no model content.

    return ParsedDocument(
        title=normalize_space("".join(title_parts)),
        text=normalize_space("".join(text_parts)),
        anchors=tuple(anchors),
        relinfons=tuple(relinfons),
        base_href=base_href,
    )


def _close_container(
    name: str,
    stack: list[tuple[str, int]],
    text_parts: list[str],
    relinfons: list[RelInfon],
) -> None:
    """Pop ``name`` off the container stack, emitting its rel-infon.

    Unbalanced end tags (no matching open) are ignored; intervening unclosed
    tags are implicitly closed without emitting segments, which matches the
    forgiving recovery of period browsers.
    """
    for idx in range(len(stack) - 1, -1, -1):
        if stack[idx][0] != name:
            continue
        __, start = stack[idx]
        if name not in _STRUCTURAL_TAGS:
            inner = normalize_space("".join(text_parts[start:]))
            if inner:
                relinfons.append(RelInfon(name, inner))
        del stack[idx:]
        return
