"""A small, forgiving HTML tokenizer.

The tokenizer targets the HTML 2.0 subset the paper works with ([6] in the
paper is RFC 1866): start tags with attributes, end tags, comments, and
character data.  It never raises on sloppy markup — unclosed quotes and bare
``<`` characters are treated as data, matching how 1999-era browsers (and
therefore 1999-era pages) behaved.  Entities ``&amp; &lt; &gt; &quot; &#...;``
are decoded in text and attribute values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

__all__ = ["StartTag", "EndTag", "Text", "Comment", "Token", "tokenize"]


@dataclass(frozen=True, slots=True)
class StartTag:
    """``<name attr="value" ...>``; ``self_closing`` covers ``<hr/>`` forms."""

    name: str
    attrs: dict[str, str] = field(default_factory=dict)
    self_closing: bool = False


@dataclass(frozen=True, slots=True)
class EndTag:
    """``</name>``."""

    name: str


@dataclass(frozen=True, slots=True)
class Text:
    """A run of character data with entities decoded."""

    data: str


@dataclass(frozen=True, slots=True)
class Comment:
    """``<!-- ... -->`` (also swallows ``<!DOCTYPE ...>`` declarations)."""

    data: str


Token = Union[StartTag, EndTag, Text, Comment]

_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'", "nbsp": " "}


def decode_entities(text: str) -> str:
    """Decode the small set of entities used by the generator and test pages."""
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1 or end - i > 10:
            out.append(ch)
            i += 1
            continue
        name = text[i + 1 : end]
        if name.startswith("#") and name[1:].isdigit():
            out.append(chr(int(name[1:])))
        elif name.lower() in _ENTITIES:
            out.append(_ENTITIES[name.lower()])
        else:
            out.append(text[i : end + 1])
        i = end + 1
    return "".join(out)


def tokenize(html: str) -> Iterator[Token]:
    """Yield :data:`Token` objects for ``html``.

    Tag and attribute names are lower-cased.  Malformed constructs degrade to
    :class:`Text` rather than raising.
    """
    i = 0
    n = len(html)
    text_start = 0
    while i < n:
        if html[i] != "<":
            i += 1
            continue
        # Flush pending character data.
        if i > text_start:
            yield Text(decode_entities(html[text_start:i]))
        if html.startswith("<!--", i):
            end = html.find("-->", i + 4)
            if end == -1:
                yield Text(html[i:])
                return
            yield Comment(html[i + 4 : end].strip())
            i = end + 3
        elif html.startswith("<!", i):
            end = html.find(">", i + 2)
            if end == -1:
                yield Text(html[i:])
                return
            yield Comment(html[i + 2 : end].strip())
            i = end + 1
        else:
            token, i_next = _read_tag(html, i)
            if token is None:
                # A bare '<' — treat it as text and move on.
                yield Text("<")
                i += 1
            else:
                yield token
                i = i_next
        text_start = i
    if text_start < n:
        yield Text(decode_entities(html[text_start:]))


def _read_tag(html: str, start: int) -> tuple[Token | None, int]:
    """Read one ``<...>`` tag starting at ``start``; ``(None, _)`` if malformed."""
    end = html.find(">", start + 1)
    if end == -1:
        return None, start
    body = html[start + 1 : end].strip()
    if not body:
        return None, start
    closing = body.startswith("/")
    if closing:
        name = body[1:].strip().lower()
        if not _is_tag_name(name):
            return None, start
        return EndTag(name), end + 1
    self_closing = body.endswith("/")
    if self_closing:
        body = body[:-1].rstrip()
    name, _, attr_text = _partition_name(body)
    if not _is_tag_name(name):
        return None, start
    return StartTag(name.lower(), _parse_attrs(attr_text), self_closing), end + 1


def _partition_name(body: str) -> tuple[str, str, str]:
    for idx, ch in enumerate(body):
        if ch.isspace():
            return body[:idx], " ", body[idx + 1 :]
    return body, "", ""


def _is_tag_name(name: str) -> bool:
    return bool(name) and name[0].isalpha() and all(c.isalnum() or c in "-_:" for c in name)


def _parse_attrs(text: str) -> dict[str, str]:
    """Parse ``key="value" key='v' key=v key`` attribute text."""
    attrs: dict[str, str] = {}
    i = 0
    n = len(text)
    while i < n:
        while i < n and text[i].isspace():
            i += 1
        if i >= n:
            break
        key_start = i
        while i < n and not text[i].isspace() and text[i] != "=":
            i += 1
        key = text[key_start:i].lower()
        while i < n and text[i].isspace():
            i += 1
        if i < n and text[i] == "=":
            i += 1
            while i < n and text[i].isspace():
                i += 1
            if i < n and text[i] in "\"'":
                quote = text[i]
                close = text.find(quote, i + 1)
                if close == -1:
                    value, i = text[i + 1 :], n
                else:
                    value, i = text[i + 1 : close], close + 1
            else:
                val_start = i
                while i < n and not text[i].isspace():
                    i += 1
                value = text[val_start:i]
            attrs[key] = decode_entities(value)
        elif key:
            attrs[key] = ""
    return attrs
