"""Document and link model: WEBDIS's three virtual relations.

Each web resource is modelled as tuple entries in the
``DOCUMENT(url, title, text, length)``, ``ANCHOR(label, base, href, ltype)``
and ``RELINFON(delimiter, url, text, length)`` virtual relations (paper
Section 2.2).  :class:`~repro.model.database.NodeDatabase` is the temporary
in-memory database a query-server constructs for a node, queries, and purges.
"""

from .database import DatabaseConstructor, NodeDatabase
from .relations import (
    ANCHOR_SCHEMA,
    DOCUMENT_SCHEMA,
    RELINFON_SCHEMA,
    AnchorTuple,
    DocumentTuple,
    LinkType,
    RelInfonTuple,
)

__all__ = [
    "ANCHOR_SCHEMA",
    "AnchorTuple",
    "DOCUMENT_SCHEMA",
    "DatabaseConstructor",
    "DocumentTuple",
    "LinkType",
    "NodeDatabase",
    "RELINFON_SCHEMA",
    "RelInfonTuple",
]
