"""Per-node temporary databases of virtual relations.

To process a node-query, a query-server "dynamically creates a temporary
in-memory database of the virtual relations associated with the document"
and purges it afterwards (paper Section 2.4).  The Database Constructor
makes "a single pass over the associated document" building the DOCUMENT,
ANCHOR and RELINFON tuples (paper Section 4.4).  Sites expecting repeated
queries may retain databases in a bounded cache (footnote 3).
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import SchemaError, UrlError
from ..html.parser import ParsedDocument, parse_html
from ..urlutils import Url, classify_link, parse_url
from .relations import (
    ANCHOR_SCHEMA,
    DOCUMENT_SCHEMA,
    RELINFON_SCHEMA,
    AnchorTuple,
    DocumentTuple,
    LinkType,
    RelInfonTuple,
)
from ..relational.table import Table

__all__ = ["NodeDatabase", "DatabaseConstructor"]


class NodeDatabase:
    """The three virtual relations for one node, ready for node-queries.

    Databases are read-only once built, so lookup structures the hot path
    needs repeatedly — the name→relation map and the per-:class:`LinkType`
    anchor buckets — are precomputed here instead of being rebuilt on every
    :meth:`relation` / :meth:`outgoing_links` call.
    """

    __slots__ = (
        "url", "document", "anchor", "relinfon", "_anchors",
        "_relations", "_links_by_type", "_forward_targets",
    )

    def __init__(
        self,
        url: Url,
        document: DocumentTuple,
        anchors: tuple[AnchorTuple, ...],
        relinfons: tuple[RelInfonTuple, ...],
        stats: "object | None" = None,
    ) -> None:
        self.url = url
        self._anchors = anchors
        self.document = Table(DOCUMENT_SCHEMA, [document.as_row()], stats=stats)
        self.anchor = Table(ANCHOR_SCHEMA, [a.as_row() for a in anchors], stats=stats)
        self.relinfon = Table(RELINFON_SCHEMA, [r.as_row() for r in relinfons], stats=stats)
        self._relations = {
            "document": self.document,
            "anchor": self.anchor,
            "relinfon": self.relinfon,
        }
        buckets: dict[LinkType, list[AnchorTuple]] = {ltype: [] for ltype in LinkType}
        for anchor in anchors:
            buckets[anchor.ltype].append(anchor)
        self._links_by_type = buckets
        self._forward_targets: dict[LinkType, tuple[Url, ...]] | None = None

    def relation(self, name: str) -> Table:
        """Look up a virtual relation by its lowercase name."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no virtual relation named {name!r}") from None

    def outgoing_links(self, ltype: LinkType) -> list[AnchorTuple]:
        """Anchors of the given link type; the forwarding step's input.

        Returns the precomputed bucket — callers must treat it as read-only.
        """
        return self._links_by_type[ltype]

    def forward_targets(self, ltype: LinkType) -> tuple[Url, ...]:
        """Fragment-stripped destinations of the given link type.

        The columnar layout's per-:class:`LinkType` anchor *selection*: the
        forwarding step only needs where each link leads, so the hrefs are
        materialized once per database (lazily, so row-only consumers never
        pay) instead of re-stripping fragments per fan-out probe.  Order
        matches :meth:`outgoing_links`.
        """
        cached = self._forward_targets
        if cached is None:
            cached = self._forward_targets = {
                bucket_type: tuple(a.href.without_fragment() for a in bucket)
                for bucket_type, bucket in self._links_by_type.items()
            }
        return cached[ltype]

    def tuple_count(self) -> int:
        """Total tuples across the three relations (a proxy for build cost)."""
        return len(self.document) + len(self.anchor) + len(self.relinfon)


class DatabaseConstructor:
    """Builds (and optionally caches) :class:`NodeDatabase` objects.

    Args:
        cache_size: number of node databases to retain (LRU).  ``0`` is the
            paper's default behaviour — construct, use, purge.
        storage: ``"memory"`` builds plain in-memory :class:`NodeDatabase`
            objects; ``"sqlite"`` builds them behind the same interface on
            an sqlite store (:mod:`repro.model.storage`) for corpora that
            should not live as Python tuples.
        stats: optional :class:`~repro.net.stats.TrafficStats` mirror for
            the hit/miss counters (``db_cache_hits`` / ``db_cache_misses``
            / ``parse_cache_hits``).
    """

    def __init__(
        self,
        cache_size: int = 0,
        storage: str = "memory",
        stats: "object | None" = None,
    ) -> None:
        if storage not in ("memory", "sqlite"):
            raise ValueError(f"unknown storage backend {storage!r}")
        self._cache_size = cache_size
        self._storage = storage
        self._stats = stats
        self._cache: OrderedDict[Url, NodeDatabase] = OrderedDict()
        #: Parsed documents, shared *across* LRU evictions: an evicted
        #: database that comes back only re-runs tuple construction, never
        #: HTML tokenization — each page is tokenized at most once per
        #: constructor lifetime (i.e. per process incarnation).
        self._parsed: dict[Url, tuple[str, ParsedDocument]] = {}
        self.builds = 0
        self.cache_hits = 0
        self.parse_hits = 0

    def _count(self, counter: str) -> None:
        if self._stats is not None:
            setattr(self._stats, counter, getattr(self._stats, counter) + 1)

    def construct(self, url: Url, html: str) -> NodeDatabase:
        """Parse ``html`` and build the node database for ``url``."""
        key = url.without_fragment()
        if self._cache_size:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.cache_hits += 1
                self._count("db_cache_hits")
                return cached
        self.builds += 1
        self._count("db_cache_misses")
        entry = self._parsed.get(key)
        if entry is not None and (entry[0] is html or entry[0] == html):
            parsed = entry[1]
            self.parse_hits += 1
            self._count("parse_cache_hits")
        else:
            parsed = parse_html(html)
            self._parsed[key] = (html, parsed)
        database = build_node_database(
            key, html, parsed=parsed, storage=self._storage, stats=self._stats
        )
        if self._cache_size:
            self._cache[key] = database
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return database

    def cache_info(self) -> dict[str, int | str]:
        """Snapshot of both constructor caches for introspection.

        ``builds`` counts actual constructions (= misses), ``cache_hits``
        databases served without rebuilding, and ``parse_hits`` the builds
        that skipped tokenization thanks to the parsed-document cache.
        """
        return {
            "storage": self._storage,
            "cache_size": self._cache_size,
            "cached_databases": len(self._cache),
            "parsed_documents": len(self._parsed),
            "builds": self.builds,
            "cache_hits": self.cache_hits,
            "parse_hits": self.parse_hits,
        }

    def purge(self) -> None:
        """Drop every cached database and parsed document."""
        self._cache.clear()
        self._parsed.clear()


def build_documents_table(
    pages: "list[tuple[Url, str]]", stats: "object | None" = None
) -> Table:
    """A DOCUMENT table spanning several pages (one row per page).

    This is the site-wide relation multi-document node-queries range over
    (paper §7.1 footnote 2): the extra document aliases join against every
    page of the current site, still without any inter-site communication.
    ``stats`` mirrors join-index reuse on this table — it lives for the
    server's whole incarnation, so sitewide joins are where the cached
    :meth:`~repro.relational.table.Table.index` pays off most.
    """
    table = Table(DOCUMENT_SCHEMA, stats=stats)
    for url, html in pages:
        parsed = parse_html(html)
        table.insert(
            DocumentTuple(
                url=url.without_fragment(),
                title=parsed.title,
                text=parsed.text,
                length=len(html),
            ).as_row()
        )
    return table


def build_node_database(
    url: Url,
    html: str,
    parsed: ParsedDocument | None = None,
    storage: str = "memory",
    stats: "object | None" = None,
) -> NodeDatabase:
    """Single-pass construction of the virtual relations for ``url``.

    ``parsed`` short-circuits tokenization when the caller already holds the
    parse result (the constructor's shared parsed-document cache).
    ``storage="sqlite"`` materializes the same relations behind the sqlite
    backend (:mod:`repro.model.storage`) instead of in-memory tables.
    ``stats`` threads the :class:`~repro.net.stats.TrafficStats` mirror down
    to the tables' join-index counters (``index_builds`` / ``index_hits``).
    """
    if parsed is None:
        parsed = parse_html(html)
    document = DocumentTuple(url=url, title=parsed.title, text=parsed.text, length=len(html))
    anchors = _anchor_tuples(url, parsed)
    relinfons = tuple(
        RelInfonTuple(delimiter=infon.delimiter, url=url, text=infon.text, length=len(infon.text))
        for infon in parsed.relinfons
    )
    if storage == "sqlite":
        from .storage import SqliteNodeDatabase

        return SqliteNodeDatabase(url, document, anchors, relinfons, stats=stats)
    return NodeDatabase(url, document, anchors, relinfons, stats=stats)


def _anchor_tuples(base: Url, parsed: ParsedDocument) -> tuple[AnchorTuple, ...]:
    # A <base href> redirects *resolution* of relative hrefs (HTML 2.0
    # §5.2.2); link classification still compares destinations against the
    # document's actual URL, since I/L/G is about where the link leads
    # relative to where the document lives.
    resolve_base = base
    if parsed.base_href:
        try:
            resolve_base = parse_url(parsed.base_href, base=base)
        except UrlError:
            pass
    tuples = []
    for anchor in parsed.anchors:
        try:
            href = parse_url(anchor.href, base=resolve_base)
        except UrlError:
            # Unresolvable hrefs (mailto:, malformed) carry no traversal value.
            continue
        ltype = LinkType.from_symbol(classify_link(base, href))
        tuples.append(AnchorTuple(label=anchor.label, base=base, href=href, ltype=ltype))
    return tuple(tuples)
