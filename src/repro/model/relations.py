"""Link types and virtual-relation tuple definitions.

The schemas here are the paper's, verbatim:

* ``DOCUMENT(url, title, text, length)`` — one entry per document;
* ``ANCHOR(label, base, href, ltype)`` — one entry per hyperlink;
* ``RELINFON(delimiter, url, text, length)`` — one entry per delimiter-scoped
  segment (the rel-infon extension the authors added to [14]'s model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..relational.schema import Schema
from ..urlutils import Url

__all__ = [
    "LinkType",
    "DocumentTuple",
    "AnchorTuple",
    "RelInfonTuple",
    "DOCUMENT_SCHEMA",
    "ANCHOR_SCHEMA",
    "RELINFON_SCHEMA",
]


class LinkType(enum.Enum):
    """The four link categories of paper Section 2.

    The values are the one-letter symbols used in PREs and in the
    ``ANCHOR.ltype`` attribute.
    """

    INTERIOR = "I"
    LOCAL = "L"
    GLOBAL = "G"
    NULL = "N"

    @classmethod
    def from_symbol(cls, symbol: str) -> "LinkType":
        """Map ``"I"/"L"/"G"/"N"`` (case-insensitive) to a member."""
        try:
            return cls(symbol.upper())
        except ValueError:
            raise ValueError(f"unknown link type symbol {symbol!r}") from None

    def __str__(self) -> str:
        return self.value


DOCUMENT_SCHEMA = Schema("document", ("url", "title", "text", "length"))
ANCHOR_SCHEMA = Schema("anchor", ("label", "base", "href", "ltype"))
RELINFON_SCHEMA = Schema("relinfon", ("delimiter", "url", "text", "length"))


@dataclass(frozen=True, slots=True)
class DocumentTuple:
    """One DOCUMENT entry.  ``length`` is the document's size in characters."""

    url: Url
    title: str
    text: str
    length: int

    def as_row(self) -> tuple[object, ...]:
        return (str(self.url), self.title, self.text, self.length)


@dataclass(frozen=True, slots=True)
class AnchorTuple:
    """One ANCHOR entry: hyperlink ``base -> href`` with ``ltype`` category."""

    label: str
    base: Url
    href: Url
    ltype: LinkType

    def as_row(self) -> tuple[object, ...]:
        return (self.label, str(self.base), str(self.href), self.ltype.value)


@dataclass(frozen=True, slots=True)
class RelInfonTuple:
    """One RELINFON entry for the document at ``url``."""

    delimiter: str
    url: Url
    text: str
    length: int

    def as_row(self) -> tuple[object, ...]:
        return (self.delimiter, str(self.url), self.text, self.length)
