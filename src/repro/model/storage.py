"""Sqlite-backed node databases behind the :class:`NodeDatabase` interface.

The paper's query-servers keep each node's virtual relations as a
temporary *in-memory* database (§2.4).  That is the right default for
web-page-sized relations, but nothing above the model layer actually
depends on the rows living as Python lists: compiled plans consume a
table through ``schema`` / ``row_list()`` / ``columns()``, and the
processing layer through ``relation()`` / ``outgoing_links()`` /
``forward_targets()`` / ``tuple_count()``.  This module implements that
same interface on an sqlite store (stdlib ``sqlite3``, in-memory by
default, file-backed on request) so site-scale corpora can live behind a
real storage engine — the idiom of duckdb/aiosqlite stores behind a
narrow query interface.

Rows round-trip exactly: the virtual relations hold only ``str`` and
``int`` values (see ``as_row()`` in :mod:`repro.model.relations`), which
sqlite maps onto TEXT/INTEGER without loss, so both executors produce
row-identical results on either backend (property-tested in
``tests/test_columnar_executor.py``).  Fetched relations are cached per
table until :meth:`SqliteTable.purge_cache`, keeping repeated plan
executions O(1) in sqlite round-trips while only ever materializing the
relations a query actually scans.
"""

from __future__ import annotations

import sqlite3
from typing import Iterator

from ..errors import SchemaError
from ..relational.schema import Schema
from ..relational.table import ColumnIndex
from ..urlutils import Url, parse_url
from .relations import (
    ANCHOR_SCHEMA,
    DOCUMENT_SCHEMA,
    RELINFON_SCHEMA,
    AnchorTuple,
    DocumentTuple,
    LinkType,
    RelInfonTuple,
)

__all__ = ["SqliteNodeDatabase", "SqliteTable"]


class SqliteTable:
    """A virtual relation stored in sqlite, drop-in for
    :class:`~repro.relational.table.Table` on the read path.

    Rows, the columnar transpose and per-column join indexes are fetched
    lazily (``ORDER BY rowid`` preserves insertion order) and cached;
    callers must treat them as read-only, exactly as with the in-memory
    table.
    """

    __slots__ = ("schema", "stats", "_conn", "_table", "_count", "_rows", "_columns", "_indexes")

    def __init__(
        self,
        schema: Schema,
        conn: sqlite3.Connection,
        table: str,
        count: int,
        stats: "object | None" = None,
    ) -> None:
        self.schema = schema
        self.stats = stats
        self._conn = conn
        self._table = table
        self._count = count
        self._rows: list[tuple[object, ...]] | None = None
        self._columns: tuple[list[object], ...] | None = None
        self._indexes: dict[int, ColumnIndex] = {}

    def row_list(self) -> list[tuple[object, ...]]:
        """All rows in insertion order (fetched once, then cached)."""
        rows = self._rows
        if rows is None:
            names = ", ".join(f'"{a}"' for a in self.schema.attributes)
            cursor = self._conn.execute(
                f'SELECT {names} FROM "{self._table}" ORDER BY rowid'
            )
            rows = self._rows = [tuple(row) for row in cursor]
        return rows

    def rows(self) -> Iterator[tuple[object, ...]]:
        """Iterate rows in insertion order."""
        return iter(self.row_list())

    def columns(self) -> tuple[list[object], ...]:
        """The columnar view, same contract as :meth:`Table.columns`."""
        cols = self._columns
        if cols is None:
            rows = self.row_list()
            cols = self._columns = tuple(
                [row[index] for row in rows] for index in range(self.schema.arity)
            )
        return cols

    def column(self, attribute: str) -> list[object]:
        """All values of ``attribute`` in insertion order."""
        pos = self.schema.position(attribute)
        return [row[pos] for row in self.row_list()]

    def index(self, position: int) -> ColumnIndex:
        """The cached :class:`ColumnIndex` for the column at ``position`` —
        same contract (and same ``index_builds`` / ``index_hits`` stats
        mirror) as :meth:`~repro.relational.table.Table.index`; sqlite
        tables are immutable after construction, so only
        :meth:`purge_cache` invalidates it."""
        index = self._indexes.get(position)
        stats = self.stats
        if index is None:
            index = self._indexes[position] = ColumnIndex(self.columns()[position])
            if stats is not None:
                stats.index_builds += 1
        elif stats is not None:
            stats.index_hits += 1
        return index

    def purge_cache(self) -> None:
        """Drop the fetched-row cache (rows stay in the store)."""
        self._rows = None
        self._columns = None
        self._indexes.clear()

    def __len__(self) -> int:
        return self._count

    def __repr__(self) -> str:
        return f"SqliteTable({self.schema.name!r}, {self._count} rows)"


class SqliteNodeDatabase:
    """One node's virtual relations behind an sqlite store.

    Construction mirrors :class:`~repro.model.database.NodeDatabase` —
    same tuples in, same interface out — but the rows live in sqlite and
    anchors are *reconstructed* from the store per link type on demand
    (then cached: there are only four link types, so the working set is
    bounded regardless of corpus size).
    """

    __slots__ = (
        "url", "document", "anchor", "relinfon",
        "_conn", "_relations", "_link_counts", "_links_by_type", "_forward_targets",
    )

    def __init__(
        self,
        url: Url,
        document: DocumentTuple,
        anchors: tuple[AnchorTuple, ...],
        relinfons: tuple[RelInfonTuple, ...],
        path: str = ":memory:",
        stats: "object | None" = None,
    ) -> None:
        self.url = url
        conn = self._conn = sqlite3.connect(path)
        conn.executescript(
            """
            CREATE TABLE IF NOT EXISTS document (url TEXT, title TEXT, text TEXT, length INTEGER);
            CREATE TABLE IF NOT EXISTS anchor (label TEXT, base TEXT, href TEXT, ltype TEXT);
            CREATE TABLE IF NOT EXISTS relinfon (delimiter TEXT, url TEXT, text TEXT, length INTEGER);
            CREATE INDEX IF NOT EXISTS anchor_ltype ON anchor (ltype);
            DELETE FROM document; DELETE FROM anchor; DELETE FROM relinfon;
            """
        )
        conn.execute("INSERT INTO document VALUES (?, ?, ?, ?)", document.as_row())
        conn.executemany(
            "INSERT INTO anchor VALUES (?, ?, ?, ?)", [a.as_row() for a in anchors]
        )
        conn.executemany(
            "INSERT INTO relinfon VALUES (?, ?, ?, ?)", [r.as_row() for r in relinfons]
        )
        conn.commit()
        self.document = SqliteTable(DOCUMENT_SCHEMA, conn, "document", 1, stats=stats)
        self.anchor = SqliteTable(ANCHOR_SCHEMA, conn, "anchor", len(anchors), stats=stats)
        self.relinfon = SqliteTable(
            RELINFON_SCHEMA, conn, "relinfon", len(relinfons), stats=stats
        )
        self._relations = {
            "document": self.document,
            "anchor": self.anchor,
            "relinfon": self.relinfon,
        }
        counts: dict[LinkType, int] = {ltype: 0 for ltype in LinkType}
        for anchor in anchors:
            counts[anchor.ltype] += 1
        self._link_counts = counts
        self._links_by_type: dict[LinkType, list[AnchorTuple]] = {}
        self._forward_targets: dict[LinkType, tuple[Url, ...]] = {}

    def relation(self, name: str) -> SqliteTable:
        """Look up a virtual relation by its lowercase name."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"no virtual relation named {name!r}") from None

    def outgoing_links(self, ltype: LinkType) -> list[AnchorTuple]:
        """Anchors of the given link type, rebuilt from the store on first
        use; callers must treat the list as read-only."""
        bucket = self._links_by_type.get(ltype)
        if bucket is None:
            cursor = self._conn.execute(
                "SELECT label, base, href FROM anchor WHERE ltype = ? ORDER BY rowid",
                (ltype.value,),
            )
            bucket = self._links_by_type[ltype] = [
                AnchorTuple(
                    label=label,
                    base=parse_url(base),
                    href=parse_url(href),
                    ltype=ltype,
                )
                for label, base, href in cursor
            ]
        return bucket

    def forward_targets(self, ltype: LinkType) -> tuple[Url, ...]:
        """Fragment-stripped destinations of the given link type (same
        contract as :meth:`NodeDatabase.forward_targets`)."""
        targets = self._forward_targets.get(ltype)
        if targets is None:
            targets = self._forward_targets[ltype] = tuple(
                anchor.href.without_fragment() for anchor in self.outgoing_links(ltype)
            )
        return targets

    def tuple_count(self) -> int:
        """Total tuples across the three relations (a proxy for build cost)."""
        return len(self.document) + len(self.anchor) + len(self.relinfon)

    def close(self) -> None:
        """Release the sqlite connection."""
        self._conn.close()
