"""Exception hierarchy for the WEBDIS reproduction.

Every error raised by the library derives from :class:`WebDisError` so that
applications can catch library failures with a single ``except`` clause while
still being able to discriminate parse errors, protocol errors, and
simulation errors when they need to.
"""

from __future__ import annotations


class WebDisError(Exception):
    """Base class for all errors raised by this library."""


class UrlError(WebDisError):
    """An URL could not be parsed or resolved."""


class HtmlParseError(WebDisError):
    """An HTML document is too malformed to tokenize."""


class PreSyntaxError(WebDisError):
    """A Path Regular Expression failed to parse."""


class PreSemanticsError(WebDisError):
    """A structurally valid PRE is semantically unusable (e.g. empty alternation)."""


class DisqlSyntaxError(WebDisError):
    """A DISQL query failed to lex or parse.

    Carries the offending position so interactive front-ends can point at it.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class DisqlSemanticsError(WebDisError):
    """A DISQL query parsed but is semantically invalid.

    Examples: a select list that references an undeclared table alias, a
    ``relinfon`` table without a delimiter, or a web-query with no start
    nodes.
    """


class SchemaError(WebDisError):
    """A relational operation referenced an unknown relation or attribute."""


class EvaluationError(WebDisError):
    """A node-query expression could not be evaluated against a tuple."""


class NetworkError(WebDisError):
    """Base class for simulated-network failures."""


class ConnectionRefusedError_(NetworkError):
    """The destination site has no listener on the requested port.

    Named with a trailing underscore to avoid shadowing the builtin
    ``ConnectionRefusedError`` while keeping the intent obvious.
    """


class ConnectionFailedError(NetworkError):
    """A transient, injected or simulated connection failure."""


class SimulationError(WebDisError):
    """The discrete-event simulator was used inconsistently."""


class ProtocolError(WebDisError):
    """A WEBDIS protocol invariant was violated (CHT/log-table misuse)."""


class QueryLifecycleError(WebDisError):
    """A client-side query object was used outside its legal lifecycle."""
