"""A breadth-first crawler over the simulated Web.

Building a search index is precisely the workload the paper's introduction
uses to motivate query shipping: "search engines ... have to import
millions of documents from various web-sites".  The crawler therefore
*accounts what it moves* — pages fetched and bytes transferred — so benches
can compare an index build against shipping the equivalent query.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..html.parser import parse_html
from ..urlutils import Url, parse_url
from ..web.web import Web
from .inverted import InvertedIndex

__all__ = ["CrawlResult", "crawl"]


@dataclass
class CrawlResult:
    """Everything one crawl produced and cost."""

    index: InvertedIndex
    pages_fetched: int = 0
    bytes_fetched: int = 0
    frontier_exhausted: bool = True
    visited: list[Url] = field(default_factory=list)


def crawl(
    web: Web,
    seeds: list[str],
    *,
    max_pages: int = 10_000,
    follow_global: bool = True,
) -> CrawlResult:
    """Breadth-first crawl from ``seeds``, indexing every fetched page."""
    result = CrawlResult(InvertedIndex())
    frontier: deque[Url] = deque()
    seen: set[Url] = set()
    for seed in seeds:
        url = parse_url(seed).without_fragment()
        if url not in seen:
            seen.add(url)
            frontier.append(url)

    while frontier:
        if result.pages_fetched >= max_pages:
            result.frontier_exhausted = False
            break
        url = frontier.popleft()
        html = web.html_for(url)
        if html is None:
            continue  # floating link; a crawler just skips it
        result.pages_fetched += 1
        result.bytes_fetched += len(html)
        result.visited.append(url)
        parsed = parse_html(html)
        result.index.add_document(url, parsed.title, parsed.text)
        for href, ltype in web.out_links(url):
            if ltype == "I" or (ltype == "G" and not follow_global):
                continue
            target = href.without_fragment()
            if target not in seen:
                seen.add(target)
                frontier.append(target)
    return result
