"""A TF-IDF inverted index with title boosting.

Small by design — the paper's search-engine discussion predates link
analysis, so ranking is classic TF-IDF with a multiplicative boost for
title terms.  Deterministic: ties break on the URL string.  Indexes
persist to a single JSON file (:meth:`InvertedIndex.save` /
:meth:`InvertedIndex.load`) so the expensive crawl can be amortized across
sessions — the "existing search-indices" of paper §7.1.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from ..urlutils import Url, parse_url
from .text import tokenize_terms

__all__ = ["IndexedDocument", "SearchHit", "InvertedIndex"]

_TITLE_BOOST = 3.0


@dataclass(frozen=True, slots=True)
class IndexedDocument:
    """What the index remembers about one document."""

    url: Url
    title: str
    length: int  # term count, for normalization


@dataclass(frozen=True, slots=True)
class SearchHit:
    """One ranked result."""

    url: Url
    score: float
    title: str


@dataclass
class InvertedIndex:
    """Term -> postings map with TF-IDF scoring."""

    _postings: dict[str, dict[Url, float]] = field(default_factory=dict)
    _documents: dict[Url, IndexedDocument] = field(default_factory=dict)

    def add_document(self, url: Url, title: str, text: str) -> None:
        """Index (or re-index) one document."""
        url = url.without_fragment()
        if url in self._documents:
            self._remove(url)
        title_terms = tokenize_terms(title)
        body_terms = tokenize_terms(text)
        weights: dict[str, float] = {}
        for term in body_terms:
            weights[term] = weights.get(term, 0.0) + 1.0
        for term in title_terms:
            weights[term] = weights.get(term, 0.0) + _TITLE_BOOST
        length = max(1, len(body_terms) + len(title_terms))
        for term, weight in weights.items():
            self._postings.setdefault(term, {})[url] = weight / length
        self._documents[url] = IndexedDocument(url, title, length)

    def _remove(self, url: Url) -> None:
        for postings in self._postings.values():
            postings.pop(url, None)
        self._documents.pop(url, None)

    @property
    def document_count(self) -> int:
        return len(self._documents)

    @property
    def vocabulary_size(self) -> int:
        return sum(1 for postings in self._postings.values() if postings)

    def documents(self) -> list[IndexedDocument]:
        return sorted(self._documents.values(), key=lambda d: str(d.url))

    def idf(self, term: str) -> float:
        """Smoothed inverse document frequency of ``term``."""
        matching = len(self._postings.get(term, {}))
        if not matching:
            return 0.0
        return math.log(1.0 + self.document_count / matching)

    def search(self, query: str, k: int = 10) -> list[SearchHit]:
        """Top-``k`` documents for ``query``, TF-IDF ranked."""
        terms = tokenize_terms(query)
        if not terms:
            return []
        scores: dict[Url, float] = {}
        for term in terms:
            idf = self.idf(term)
            if idf == 0.0:
                continue
            for url, tf in self._postings.get(term, {}).items():
                scores[url] = scores.get(url, 0.0) + tf * idf
        ranked = sorted(scores.items(), key=lambda item: (-item[1], str(item[0])))
        return [
            SearchHit(url, score, self._documents[url].title)
            for url, score in ranked[:k]
        ]

    # -- persistence -----------------------------------------------------------

    _FORMAT_VERSION = 1

    def save(self, path: str | Path) -> None:
        """Persist the index as one JSON file."""
        payload = {
            "version": self._FORMAT_VERSION,
            "documents": {
                str(doc.url): {"title": doc.title, "length": doc.length}
                for doc in self._documents.values()
            },
            "postings": {
                term: {str(url): tf for url, tf in postings.items()}
                for term, postings in self._postings.items()
                if postings
            },
        }
        Path(path).write_text(
            json.dumps(payload, separators=(",", ":"), sort_keys=True),
            encoding="utf-8",
        )

    @classmethod
    def load(cls, path: str | Path) -> "InvertedIndex":
        """Inverse of :meth:`save`."""
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        if payload.get("version") != cls._FORMAT_VERSION:
            raise ValueError(f"unsupported index format: {payload.get('version')!r}")
        index = cls()
        for url_text, record in payload["documents"].items():
            url = parse_url(url_text)
            index._documents[url] = IndexedDocument(
                url, record["title"], record["length"]
            )
        for term, postings in payload["postings"].items():
            index._postings[term] = {
                parse_url(url_text): tf for url_text, tf in postings.items()
            }
        return index
