"""Search-index substrate: crawler, inverted index, StartNode resolution.

Paper Section 1.1: *"The set of StartNodes are obtained from either the
user's domain knowledge or from existing search-indices (this process can
be automated and made invisible to the user)."* and Section 7.1: *"we are
exploring ways in which existing search-indices can be used to augment the
user's domain knowledge."*

This package provides that substrate:

* :mod:`repro.index.text` — tokenization (lower-casing, stopwords);
* :mod:`repro.index.inverted` — a TF-IDF inverted index with title boost;
* :mod:`repro.index.crawler` — a breadth-first crawler over the simulated
  Web that records how many documents/bytes an index build must move
  (the very cost WEBDIS queries avoid);
* :func:`resolve_start_nodes` — keyword → ranked StartNode URLs, the
  automated step the paper describes.
"""

from .crawler import CrawlResult, crawl
from .inverted import IndexedDocument, InvertedIndex, SearchHit
from .resolve import build_index_for_web, resolve_start_nodes
from .text import tokenize_terms

__all__ = [
    "CrawlResult",
    "IndexedDocument",
    "InvertedIndex",
    "SearchHit",
    "build_index_for_web",
    "crawl",
    "resolve_start_nodes",
    "tokenize_terms",
]
