"""Text analysis for indexing: tokenization and stopword removal."""

from __future__ import annotations

__all__ = ["STOPWORDS", "tokenize_terms"]

#: A compact English stopword list, period-appropriate.
STOPWORDS = frozenset(
    """a an and are as at be by for from has have in is it its of on or
    that the this to was were will with""".split()
)


def tokenize_terms(text: str) -> list[str]:
    """Lower-cased alphanumeric terms with stopwords removed.

    Hyphens and underscores split tokens (``web-site`` indexes as ``web``
    and ``site``), matching what a 1999-era engine would have done.
    """
    terms: list[str] = []
    current: list[str] = []
    for ch in text.lower():
        if ch.isalnum():
            current.append(ch)
        elif current:
            terms.append("".join(current))
            current = []
    if current:
        terms.append("".join(current))
    return [term for term in terms if term not in STOPWORDS]
