"""Automated StartNode resolution (paper Section 1.1).

Bridges the index to the engine: a keyword query against the inverted
index yields the ranked StartNode set a WEBDIS query should begin from —
"this process can be automated and made invisible to the user".
"""

from __future__ import annotations

from ..urlutils import Url
from ..web.web import Web
from .crawler import crawl
from .inverted import InvertedIndex

__all__ = ["build_index_for_web", "resolve_start_nodes"]


def build_index_for_web(web: Web, *, max_pages: int = 10_000) -> InvertedIndex:
    """Index the whole Web by crawling from every site's sorted first page.

    Convenience for setups where the index is assumed to pre-exist; the
    crawl cost is intentionally not charged anywhere (use
    :func:`repro.index.crawler.crawl` directly when the build cost is the
    thing being measured).
    """
    seeds = []
    for site_name in web.site_names:
        site = web.site(site_name)
        first_path = sorted(site.pages)[0]
        seeds.append(str(Url(site_name, first_path)))
    return crawl(web, seeds, max_pages=max_pages).index


def resolve_start_nodes(index: InvertedIndex, keywords: str, k: int = 3) -> list[str]:
    """The top-``k`` index hits for ``keywords``, as StartNode URL strings."""
    return [str(hit.url) for hit in index.search(keywords, k)]
