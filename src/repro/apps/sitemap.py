"""Site-map construction over WEBDIS.

Paper Section 1: "applications which build site maps for a particular
domain of web-servers would require all hyperlinks from those web-sites to
be extracted.  Instead of downloading all documents ... it would reduce
network traffic if processing was done at the web-servers themselves and
only the list of links sent back."

The map is built by shipping a single structural query::

    select a.base, a.href, a.ltype
    from document d such that "<start>" L*<depth> d,
         anchor a

to the domain and assembling the returned ``(base, href)`` edges.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import EngineConfig
from ..core.engine import WebDisEngine
from ..net.network import NetworkConfig
from ..web.web import Web

__all__ = ["SiteMap", "build_site_map", "site_map_disql"]


@dataclass
class SiteMap:
    """The assembled map: pages and classified hyperlink edges."""

    root: str
    #: (base, href, ltype) edges in discovery order, duplicates removed.
    edges: list[tuple[str, str, str]] = field(default_factory=list)
    bytes_on_wire: int = 0
    response_time: float | None = None

    @property
    def pages(self) -> list[str]:
        """All page URLs appearing in the map, sorted."""
        seen = {base for base, __, ___ in self.edges}
        seen.update(href for __, href, ___ in self.edges)
        return sorted(seen)

    def edges_from(self, base: str) -> list[tuple[str, str]]:
        return [(href, ltype) for b, href, ltype in self.edges if b == base]

    def render(self) -> str:
        """A textual adjacency listing."""
        lines = [f"Site map rooted at {self.root}"]
        by_base: dict[str, list[tuple[str, str]]] = {}
        for base, href, ltype in self.edges:
            by_base.setdefault(base, []).append((href, ltype))
        for base in sorted(by_base):
            lines.append(base)
            for href, ltype in by_base[base]:
                lines.append(f"  --{ltype}--> {href}")
        return "\n".join(lines)


def site_map_disql(start_url: str, depth: int, include_global: bool) -> str:
    """The DISQL query a site-map run ships."""
    pre = f"L*{depth}" if depth else "N"
    condition = (
        'a.ltype = "L" or a.ltype = "G"' if include_global else 'a.ltype = "L"'
    )
    return (
        "select a.base, a.href, a.ltype\n"
        f'from document d such that "{start_url}" {pre} d,\n'
        "     anchor a\n"
        f"where {condition}"
    )


def build_site_map(
    web: Web,
    start_url: str,
    *,
    depth: int = 8,
    include_global: bool = False,
    config: EngineConfig | None = None,
    net_config: NetworkConfig | None = None,
) -> SiteMap:
    """Build the site map of the domain reachable from ``start_url``.

    ``depth`` bounds the local-link radius; ``include_global`` additionally
    records (but does not traverse) global out-edges, which is how domain
    boundary pages show their exits.
    """
    engine = WebDisEngine(web, config=config, net_config=net_config)
    handle = engine.run_query(site_map_disql(start_url, depth, include_global))
    site_map = SiteMap(root=start_url)
    seen: set[tuple[str, str, str]] = set()
    for row in handle.rows("q1"):
        record = row.as_mapping()
        edge = (str(record["a.base"]), str(record["a.href"]), str(record["a.ltype"]))
        if edge not in seen:
            seen.add(edge)
            site_map.edges.append(edge)
    site_map.bytes_on_wire = engine.stats.bytes_sent
    site_map.response_time = handle.response_time()
    return site_map
