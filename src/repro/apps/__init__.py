"""Web-administration applications built on the WEBDIS public API.

The paper's introduction motivates query shipping with three application
families; each is implemented here on top of the distributed engine:

* :mod:`repro.apps.sitemap` — "site map" construction for a web domain
  (only link lists travel, not documents);
* :mod:`repro.apps.linkcheck` — detection of "floating links" (links
  pointing to non-existent documents), the web-site maintenance task of
  Section 1.2;
* :mod:`repro.apps.gather` — gathering similar information from several
  different sites (the search-engine-style workload of Section 1).
"""

from .gather import GatherResult, gather_segments
from .linkcheck import FloatingLink, LinkCheckReport, find_floating_links
from .sitemap import SiteMap, build_site_map

__all__ = [
    "FloatingLink",
    "GatherResult",
    "LinkCheckReport",
    "SiteMap",
    "build_site_map",
    "find_floating_links",
    "gather_segments",
]
