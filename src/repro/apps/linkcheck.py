"""Floating-link detection ("a commonly encountered problem in web-site
administration", paper Section 1.2).

The hyperlink inventory is gathered *distributedly* — the same structural
query the site-map application ships — and each collected target is then
verified with a lightweight existence probe.  In the original deployment
the probe was an HTTP HEAD request; here it consults the simulated Web
directly (the probe cost is not part of any of the paper's claims, so the
substitution is behaviour-neutral; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import EngineConfig
from ..core.engine import WebDisEngine
from ..errors import UrlError
from ..net.network import NetworkConfig
from ..urlutils import parse_url
from ..web.web import Web
from .sitemap import site_map_disql

__all__ = ["FloatingLink", "LinkCheckReport", "find_floating_links"]


@dataclass(frozen=True, slots=True)
class FloatingLink:
    """One dangling hyperlink: the page that carries it and its dead target."""

    base: str
    href: str
    ltype: str


@dataclass
class LinkCheckReport:
    """Outcome of one link-maintenance sweep."""

    root: str
    links_checked: int = 0
    floating: list[FloatingLink] = field(default_factory=list)
    bytes_on_wire: int = 0

    @property
    def ok(self) -> bool:
        return not self.floating

    def render(self) -> str:
        lines = [
            f"Link check from {self.root}: "
            f"{self.links_checked} link(s) checked, {len(self.floating)} floating"
        ]
        for link in self.floating:
            lines.append(f"  {link.base} --{link.ltype}--> {link.href}  [dangling]")
        return "\n".join(lines)


def find_floating_links(
    web: Web,
    start_url: str,
    *,
    depth: int = 8,
    include_global: bool = True,
    config: EngineConfig | None = None,
    net_config: NetworkConfig | None = None,
) -> LinkCheckReport:
    """Sweep the domain reachable from ``start_url`` for dangling links."""
    engine = WebDisEngine(web, config=config, net_config=net_config)
    handle = engine.run_query(site_map_disql(start_url, depth, include_global))
    report = LinkCheckReport(root=start_url)
    seen: set[tuple[str, str]] = set()
    for row in handle.rows("q1"):
        record = row.as_mapping()
        base, href, ltype = (
            str(record["a.base"]),
            str(record["a.href"]),
            str(record["a.ltype"]),
        )
        if (base, href) in seen:
            continue
        seen.add((base, href))
        report.links_checked += 1
        if not _resolves(web, href):
            report.floating.append(FloatingLink(base, href, ltype))
    report.bytes_on_wire = engine.stats.bytes_sent
    return report


def _resolves(web: Web, href: str) -> bool:
    try:
        url = parse_url(href)
    except UrlError:
        return False
    return web.resolves(url.without_fragment())
