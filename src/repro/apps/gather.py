"""Information gathering across sites (the paper's search-engine motivation).

"Several web applications are more naturally processed in a distributed
manner ... it would be easier if the processing of documents took place at
the web-sites themselves and only the results were sent back." (Section 1)

``gather_segments`` ships a content query to a set of start sites, follows
local and global links to a bounded radius, and collects every
delimiter-scoped segment matching a keyword — e.g. all bold "announcement"
snippets across a university's departments — without moving documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.config import EngineConfig
from ..core.engine import WebDisEngine
from ..net.network import NetworkConfig
from ..web.web import Web

__all__ = ["GatherResult", "gather_segments", "gather_disql"]


@dataclass
class GatherResult:
    """Collected ``(url, text)`` segments plus run economics."""

    keyword: str
    segments: list[tuple[str, str]] = field(default_factory=list)
    bytes_on_wire: int = 0
    messages: int = 0
    response_time: float | None = None

    def by_site(self) -> dict[str, list[str]]:
        grouped: dict[str, list[str]] = {}
        for url, text in self.segments:
            host = url.split("://", 1)[-1].split("/", 1)[0]
            grouped.setdefault(host, []).append(text)
        return grouped

    def render(self) -> str:
        lines = [f"Gathered {len(self.segments)} segment(s) matching {self.keyword!r}"]
        for url, text in self.segments:
            lines.append(f"  {url}: {text}")
        return "\n".join(lines)


def gather_disql(
    start_urls: Sequence[str], keyword: str, delimiter: str, radius: int
) -> str:
    """The DISQL query one gathering run ships."""
    starts = " | ".join(f'"{url}"' for url in start_urls)
    return (
        "select d.url, r.text\n"
        f"from document d such that {starts} (L|G)*{radius} d,\n"
        f'     relinfon r such that r.delimiter = "{delimiter}"\n'
        f'where r.text contains "{keyword}"'
    )


def gather_segments(
    web: Web,
    start_urls: Sequence[str],
    keyword: str,
    *,
    delimiter: str = "b",
    radius: int = 3,
    config: EngineConfig | None = None,
    net_config: NetworkConfig | None = None,
) -> GatherResult:
    """Gather keyword-matching segments from the webs around ``start_urls``."""
    if not start_urls:
        raise ValueError("gather_segments needs at least one start URL")
    engine = WebDisEngine(web, config=config, net_config=net_config)
    handle = engine.run_query(gather_disql(start_urls, keyword, delimiter, radius))
    result = GatherResult(keyword=keyword)
    seen: set[tuple[str, str]] = set()
    for row in handle.rows("q1"):
        record = row.as_mapping()
        pair = (str(record["d.url"]), str(record["r.text"]))
        if pair not in seen:
            seen.add(pair)
            result.segments.append(pair)
    result.bytes_on_wire = engine.stats.bytes_sent
    result.messages = engine.stats.messages_sent
    result.response_time = handle.response_time()
    return result
