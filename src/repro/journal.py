"""Protocol journal: record, persist, and audit a run's message traffic.

A :class:`ProtocolJournal` taps the simulated network and records every
successfully sent message, serialized through the wire codec
(:mod:`repro.wire`).  Uses:

* **debugging** — inspect exactly what travelled, in order, with virtual
  timestamps;
* **persistence** — dump to JSON-lines and reload later (messages decode
  back to full objects);
* **auditing** — :meth:`ProtocolJournal.audit_cht` re-derives the CHT
  balance for one query *purely from the recorded traffic* and checks the
  completion invariant offline, independently of the live client's
  bookkeeping.

Example::

    engine = WebDisEngine(web)
    journal = ProtocolJournal.attach(engine.network)
    handle = engine.run_query(disql)
    audit = journal.audit_cht(handle.qid)
    assert audit.balanced
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .core.messages import Disposition, ResultMessage
from .core.webquery import QueryId
from .net.network import Network
from .wire import WIRE_VERSION, decode_message, encode_message

__all__ = ["JournalEntry", "ChtAudit", "ProtocolJournal"]


@dataclass(frozen=True, slots=True)
class JournalEntry:
    """One recorded message."""

    time: float
    src: str
    dst: str
    port: int
    kind: str
    size: int
    message: object

    def as_json(self) -> str:
        record = {
            "t": self.time,
            "src": self.src,
            "dst": self.dst,
            "port": self.port,
            "kind": self.kind,
            "size": self.size,
            "wire": encode_message(self.message).decode("utf-8"),
        }
        return json.dumps(record, separators=(",", ":"), ensure_ascii=False)

    @classmethod
    def from_json(cls, line: str) -> "JournalEntry":
        record = json.loads(line)
        return cls(
            time=record["t"],
            src=record["src"],
            dst=record["dst"],
            port=record["port"],
            kind=record["kind"],
            size=record["size"],
            message=decode_message(record["wire"].encode("utf-8")),
        )


@dataclass
class ChtAudit:
    """Offline re-derivation of the CHT balance from recorded traffic.

    ``start_entries`` counts StartNode locations whose initial clone
    actually left the user-site (the locally seeded-and-retired entries of
    unreachable starts never travel, so they cancel out of the audit).
    """

    qid: QueryId
    additions: int = 0
    deletions: int = 0
    start_entries: int = 0
    result_rows: int = 0
    report_messages: int = 0
    dispositions: dict[str, int] = field(default_factory=dict)

    @property
    def balanced(self) -> bool:
        """The completion invariant, from traffic alone: every travelled
        clone location (initial or announced) was retired by exactly one
        report entry."""
        return self.deletions == self.additions + self.start_entries

    @property
    def outstanding(self) -> int:
        return max(0, self.additions + self.start_entries - self.deletions)


class ProtocolJournal:
    """Records every message a network sends."""

    def __init__(self) -> None:
        self.entries: list[JournalEntry] = []

    @classmethod
    def attach(cls, network: Network) -> "ProtocolJournal":
        journal = cls()
        network.set_tap(journal._record)
        return journal

    def _record(self, time: float, src: str, dst: str, port: int, payload) -> None:
        self.entries.append(
            JournalEntry(time, src, dst, port, payload.kind, payload.size_bytes(), payload)
        )

    def __len__(self) -> int:
        return len(self.entries)

    # -- persistence ------------------------------------------------------------

    def write_jsonl(self, path: str | Path) -> int:
        """Persist all entries; returns the count written."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps({"journal_version": WIRE_VERSION}) + "\n")
            for entry in self.entries:
                handle.write(entry.as_json() + "\n")
        return len(self.entries)

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "ProtocolJournal":
        journal = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            header = json.loads(handle.readline())
            if header.get("journal_version") != WIRE_VERSION:
                raise ValueError(f"unsupported journal version: {header}")
            for line in handle:
                line = line.strip()
                if line:
                    journal.entries.append(JournalEntry.from_json(line))
        return journal

    # -- analysis ------------------------------------------------------------------

    def by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.kind] = counts.get(entry.kind, 0) + 1
        return counts

    def total_bytes(self) -> int:
        return sum(entry.size for entry in self.entries)

    def audit_cht(self, qid: QueryId) -> ChtAudit:
        """Re-derive the CHT balance for ``qid`` from recorded reports.

        Valid for standard deployments.  (Under the hybrid engine the
        central helper also originates clones from the user host, which
        this traffic-only view cannot distinguish from initial dispatches.)
        """
        from .core.webquery import QueryClone

        audit = ChtAudit(qid)
        for entry in self.entries:
            message = entry.message
            if (
                isinstance(message, QueryClone)
                and message.query.qid == qid
                and entry.src == qid.host
            ):
                audit.start_entries += len(message.dest)
                continue
            if not isinstance(message, ResultMessage) or message.qid != qid:
                continue
            audit.report_messages += 1
            for report in message.reports:
                name = report.disposition.value
                audit.dispositions[name] = audit.dispositions.get(name, 0) + 1
                if report.disposition is Disposition.DATA_ONLY:
                    audit.result_rows += len(report.results)
                    continue
                audit.deletions += 1
                audit.additions += len(report.new_entries)
                audit.result_rows += len(report.results)
        return audit
