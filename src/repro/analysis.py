"""Run reports and paired comparisons.

Downstream experiments keep asking the same two questions: *what did this
run cost?* and *how does it compare to that other run?*  This module
packages the answers:

* :class:`RunReport` — one engine run's key metrics in a flat, printable
  record (works for the distributed engine, the data-shipping baseline and
  the hybrid — anything exposing ``stats`` plus a handle/result object);
* :func:`compare_runs` — a paired table with per-metric ratios, the shape
  every bench in ``benchmarks/`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = ["RunReport", "compare_runs", "format_comparison"]


@dataclass(frozen=True, slots=True)
class RunReport:
    """One run's economics."""

    name: str
    metrics: Mapping[str, float]

    _CORE_KEYS = (
        "messages",
        "bytes",
        "documents_shipped",
        "document_bytes_shipped",
        "documents_parsed",
        "node_queries_evaluated",
        "duplicates_dropped",
        "clones_forwarded",
    )

    @classmethod
    def from_run(cls, name: str, engine, handle) -> "RunReport":
        """Build a report from any engine + handle/result pair.

        ``engine`` needs ``stats`` (:class:`~repro.net.stats.TrafficStats`);
        ``handle`` needs ``response_time()`` and ``rows()``.
        """
        summary = engine.stats.summary()
        metrics: dict[str, float] = {
            key: float(summary[key]) for key in cls._CORE_KEYS if key in summary
        }
        metrics["result_rows"] = float(len(handle.rows()))
        response = handle.response_time()
        if response is not None:
            metrics["response_time"] = response
        first = handle.first_result_latency()
        if first is not None:
            metrics["first_result_latency"] = first
        peak_site, peak_load = engine.stats.max_site_load()
        metrics["peak_site_cpu"] = peak_load
        return cls(name, metrics)

    def render(self) -> str:
        width = max(len(k) for k in self.metrics)
        lines = [f"run: {self.name}"]
        for key in sorted(self.metrics):
            lines.append(f"  {key.ljust(width)}  {_fmt(self.metrics[key])}")
        return "\n".join(lines)


def compare_runs(a: RunReport, b: RunReport) -> list[tuple[str, float, float, float | None]]:
    """Per-metric rows ``(metric, a_value, b_value, b/a ratio)``.

    Metrics present in only one report are skipped — comparisons should be
    apples to apples.  The ratio is ``None`` when ``a`` is zero.
    """
    rows = []
    for key in sorted(set(a.metrics) & set(b.metrics)):
        left, right = a.metrics[key], b.metrics[key]
        ratio = (right / left) if left else None
        rows.append((key, left, right, ratio))
    return rows


def format_comparison(a: RunReport, b: RunReport) -> str:
    """A printable paired table."""
    rows = compare_runs(a, b)
    headers = ("metric", a.name, b.name, f"{b.name}/{a.name}")
    rendered = [
        (key, _fmt(left), _fmt(right), f"{ratio:.2f}x" if ratio is not None else "-")
        for key, left, right, ratio in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered else len(headers[i])
        for i in range(4)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e12:
        return str(int(value))
    return f"{value:.4f}"
