"""Self-contained HTML reports of a query run.

``render_run_report`` turns one finished run — the engine, its tracer, and
the query handle — into a single dependency-free HTML page: the DISQL/
formalism header, the Figure-8-style results tables, the traversal trace,
and the traffic statistics.  The page uses inline CSS only, so it can be
attached to tickets, diffed, or archived next to a
:class:`~repro.journal.ProtocolJournal` dump.

Example::

    engine = WebDisEngine(web, trace=True)
    handle = engine.run_query(disql)
    Path("run.html").write_text(render_run_report(engine, handle))
"""

from __future__ import annotations

from .core.client import QueryHandle
from .core.engine import WebDisEngine
from .disql.explain import explain_webquery

__all__ = ["render_run_report"]

_STYLE = """
body { font-family: sans-serif; margin: 2em; color: #222; }
h1, h2 { color: #1a3c6e; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #bbb; padding: 4px 10px; text-align: left;
         font-size: 13px; }
th { background: #eef2f8; }
pre { background: #f6f6f6; padding: 1em; overflow-x: auto; font-size: 12px; }
.answered { background: #e7f7e7; }
.failed, .dead-end { background: #fdeaea; }
.duplicate-dropped { background: #fdf6df; }
.meta { color: #555; font-size: 13px; }
""".strip()


def _escape(text: object) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _table(headers: list[str], rows: list[list[object]], row_classes=None) -> str:
    parts = ["<table>", "<tr>" + "".join(f"<th>{_escape(h)}</th>" for h in headers) + "</tr>"]
    for i, row in enumerate(rows):
        cls = f' class="{row_classes[i]}"' if row_classes and row_classes[i] else ""
        parts.append(
            f"<tr{cls}>" + "".join(f"<td>{_escape(cell)}</td>" for cell in row) + "</tr>"
        )
    parts.append("</table>")
    return "\n".join(parts)


def render_run_report(engine: WebDisEngine, handle: QueryHandle, title: str = "WEBDIS run report") -> str:
    """One run as a standalone HTML page."""
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{_escape(title)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{_escape(title)}</h1>",
        f"<p class='meta'>query {_escape(handle.qid)} — status "
        f"<b>{_escape(handle.status.value)}</b>"
        + (
            f", completed at t={handle.completion_time:.4f}s"
            if handle.completion_time is not None
            else ""
        )
        + "</p>",
        "<h2>Query</h2>",
        f"<pre>{_escape(explain_webquery(handle.query, narrate=True))}</pre>",
    ]

    parts.append("<h2>Results</h2>")
    labels = list(dict.fromkeys(label for label, __, ___ in handle.results))
    if not labels:
        parts.append("<p class='meta'>no results</p>")
    for label in labels:
        rows = handle.display_rows(label)
        if not rows:
            continue
        parts.append(f"<h3>{_escape(label)}</h3>")
        parts.append(
            _table(list(rows[0].header), [list(row.values) for row in rows])
        )

    if engine.tracer.enabled and engine.tracer.events:
        parts.append("<h2>Traversal</h2>")
        trace_rows = []
        classes = []
        for event in engine.tracer.events:
            trace_rows.append(
                [f"{event.time:.4f}", str(event.state), event.role, event.action,
                 event.node, event.detail]
            )
            classes.append(event.action if event.action in (
                "answered", "failed", "dead-end", "duplicate-dropped") else "")
        parts.append(
            _table(["t (sim s)", "state", "role", "action", "node", "detail"],
                   trace_rows, classes)
        )

    parts.append("<h2>Traffic</h2>")
    summary = engine.stats.summary()
    parts.append(
        _table(["metric", "value"], [[key, summary[key]] for key in sorted(summary)])
    )
    by_kind = engine.stats.messages_by_kind
    if by_kind:
        parts.append("<h3>Messages by kind</h3>")
        parts.append(
            _table(
                ["kind", "messages", "bytes"],
                [
                    [kind, by_kind[kind], engine.stats.bytes_by_kind[kind]]
                    for kind in sorted(by_kind)
                ],
            )
        )
    parts.append("</body></html>")
    return "\n".join(parts)
