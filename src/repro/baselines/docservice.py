"""An HTTP-like document-fetch service.

Centralized processing needs plain document retrieval: a small request, a
response carrying the full document bytes.  Every site can serve documents
(serving static files needs no WEBDIS participation), so
:class:`DocServer` instances are installed web-wide by the engines that
need them.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..net.network import Network
from ..net.simclock import SimClock
from ..net.stats import TrafficStats
from ..urlutils import Url
from ..web.web import Web

__all__ = ["DOC_PORT", "FetchRequest", "DocResponse", "DocServer", "install_doc_servers"]

#: The well-known port document servers listen on (think port 80).
DOC_PORT = 80


@dataclass(frozen=True, slots=True)
class FetchRequest:
    """``GET url`` — ``reply_to`` names the requester's (site, port)."""

    url: Url
    reply_site: str
    reply_port: int
    request_id: int

    @property
    def kind(self) -> str:
        return "fetch"

    def size_bytes(self) -> int:
        return len(str(self.url)) + len(self.reply_site) + 12


@dataclass(frozen=True, slots=True)
class DocResponse:
    """The fetched document (``html is None`` = 404, a floating link)."""

    url: Url
    html: str | None
    request_id: int

    @property
    def kind(self) -> str:
        return "document"

    def size_bytes(self) -> int:
        body = len(self.html) if self.html is not None else 0
        return len(str(self.url)) + body + 16


class DocServer:
    """Serves one site's documents over :data:`DOC_PORT`."""

    def __init__(
        self,
        site: str,
        web: Web,
        network: Network,
        clock: SimClock,
        stats: TrafficStats,
        service_time: float = 0.001,
    ) -> None:
        self.site = site
        self.web = web
        self.network = network
        self.clock = clock
        self.stats = stats
        self.service_time = service_time
        network.listen(site, DOC_PORT, self._on_request)

    def _on_request(self, src: str, payload: object) -> None:
        assert isinstance(payload, FetchRequest)
        html = self.web.html_for(payload.url)
        response = DocResponse(payload.url, html, payload.request_id)
        if html is not None:
            self.stats.documents_shipped += 1
            self.stats.document_bytes_shipped += len(html)
        self.stats.record_processing(self.site, self.service_time)
        self.clock.schedule(
            self.service_time,
            lambda: self.network.send(
                self.site, payload.reply_site, payload.reply_port, response
            ),
        )


def install_doc_servers(
    web: Web,
    network: Network,
    clock: SimClock,
    stats: TrafficStats,
) -> dict[str, DocServer]:
    """Run a :class:`DocServer` at every site of ``web``."""
    return {
        site: DocServer(site, web, network, clock, stats)
        for site in web.site_names
    }
