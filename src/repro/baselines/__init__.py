"""Comparison engines and design-alternative implementations.

The paper argues for query shipping *against* alternatives it does not
implement.  This package implements them so the claims become measurable:

* :mod:`repro.baselines.datashipping` — the centralized engine every prior
  web-query system used (documents downloaded to the user-site, evaluated
  locally): the paper's §1 foil, bench EXP-C1/EXP-C6;
* :mod:`repro.baselines.docservice` — the plain document-fetch substrate
  (an HTTP-like request/response service) that data shipping and the hybrid
  engine share;
* :mod:`repro.baselines.hybrid` — the §7.1 migration path: participating
  sites process queries, documents from non-participating sites are pulled
  to the user-site and processed centrally, bench EXP-C7.

The §2.6 *path-retrace* result-return alternative is implemented inside the
core server (``EngineConfig.direct_result_return=False``) because it changes
forwarding behaviour, not the engine topology; bench EXP-C2 compares it.
"""

from .datashipping import DataShippingEngine, DataShippingResult
from .docservice import DOC_PORT, DocResponse, DocServer, FetchRequest
from .hybrid import HybridEngine

__all__ = [
    "DOC_PORT",
    "DataShippingEngine",
    "DataShippingResult",
    "DocResponse",
    "DocServer",
    "FetchRequest",
    "HybridEngine",
]
