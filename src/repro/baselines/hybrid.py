"""The hybrid engine — the paper's Section 7.1 migration path.

"Queries related to documents on [non-participating] web-servers can be
handled in the traditional manner by retrieving all documents from the
remote site and then applying the query predicates locally at the
user-site.  Therefore, we can expect a gradual migration path ... from a
largely centralized to a fully distributed system."

Mechanics:

* participating sites run normal :class:`~repro.core.server.QueryServer`
  daemons;
* every site serves plain documents (:mod:`repro.baselines.docservice`);
* a :class:`CentralProcessor` at the user-site accepts clones whose
  destination sites refused the query connection, *downloads* their
  documents, processes them locally with the identical per-node logic, and
  resumes query-shipping for forwards that target participating sites.

Sweeping the participation fraction from 0 to 1 interpolates between the
data-shipping and query-shipping cost profiles (bench EXP-C7).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import replace
from typing import Iterable

from ..core.config import EngineConfig
from ..core.engine import DEFAULT_USER_SITE, WebDisEngine
from ..core.logtable import LogAction, NodeQueryLogTable
from ..core.messages import ChtEntry, CloneBundle, Disposition, NodeReport, ResultMessage
from ..core.plancache import PlanCache
from ..core.processing import process_node
from ..core.trace import Tracer
from ..core.webquery import QueryClone, QueryId
from ..model.database import DatabaseConstructor, build_documents_table
from ..net.network import HELPER_PORT, QUERY_PORT, Network, NetworkConfig, SendOutcome
from ..net.reliable import ReliableChannel
from ..net.simclock import SimClock
from ..net.stats import TrafficStats
from ..urlutils import Url
from ..web.web import Web
from .docservice import DOC_PORT, DocResponse, FetchRequest, install_doc_servers

__all__ = ["CentralProcessor", "HybridEngine"]

_CENTRAL_FETCH_PORT = 4501


class CentralProcessor:
    """Processes clones for non-participating sites at the user-site.

    Runs the same per-node logic as a query-server, except every document
    must first be *fetched* over the network — the centralized cost the
    paper wants to migrate away from.
    """

    def __init__(
        self,
        user_site: str,
        network: Network,
        clock: SimClock,
        config: EngineConfig,
        stats: TrafficStats,
        tracer: Tracer,
        participating: set[str],
        web: Web | None = None,
    ) -> None:
        self.site = user_site
        self.web = web
        self._site_documents: dict[str, object] = {}
        self.network = network
        self.clock = clock
        self.config = config
        self.stats = stats
        self.tracer = tracer
        self.participating = participating
        self.channel = ReliableChannel(
            network, clock, config.retry_policy, name=f"central:{user_site}"
        )
        self.constructor = DatabaseConstructor(
            config.db_cache_size, storage=config.storage_backend, stats=stats
        )
        self.log_table = NodeQueryLogTable(config.log_subsumption)
        self.plans = PlanCache(stats=stats)
        self._queue: deque[QueryClone] = deque()
        self._busy = False
        self._purged: set[QueryId] = set()
        self._request_ids = itertools.count(1)
        self._dispatch_serial = itertools.count(1)
        self._awaiting: dict[int, Url] = {}
        self._documents: dict[Url, str | None] = {}
        self._current: QueryClone | None = None
        network.listen(user_site, HELPER_PORT, self._on_clone)
        network.listen(user_site, _CENTRAL_FETCH_PORT, self._on_document)

    # -- clone intake ------------------------------------------------------------

    def _on_clone(self, src: str, payload: object) -> None:
        if isinstance(payload, CloneBundle):
            # A coalesced forward redirected here wholesale (frontier
            # batching + central fallback): unpack like a query-server.
            self._queue.extend(payload.clones)
            self._pump()
            return
        assert isinstance(payload, QueryClone)
        self._queue.append(payload)
        self._pump()

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        clone = self._queue.popleft()
        if clone.query.qid in self._purged:
            self._pump()
            return
        self._busy = True
        self._current = clone
        self._documents = {}
        self._awaiting = {}
        for node in clone.dest:
            request_id = next(self._request_ids)
            request = FetchRequest(node, self.site, _CENTRAL_FETCH_PORT, request_id)
            if self.network.send(self.site, node.host, DOC_PORT, request):
                self._awaiting[request_id] = node
            else:
                self._documents[node] = None
        self._maybe_process()

    def _on_document(self, src: str, payload: object) -> None:
        assert isinstance(payload, DocResponse)
        node = self._awaiting.pop(payload.request_id, None)
        if node is None:
            return
        self._documents[node] = payload.html
        self._maybe_process()

    # -- local processing -----------------------------------------------------------

    def _maybe_process(self) -> None:
        if self._current is None or self._awaiting:
            return
        clone = self._current
        reports, clones, service = self._process(clone)
        self.stats.record_processing(self.site, service)
        self.clock.schedule(service, lambda: self._complete(clone, reports, clones))

    def _process(self, clone: QueryClone):
        now = self.clock.now
        qid = clone.query.qid
        reports: list[NodeReport] = []
        forwards = []
        seen_forwards = set()
        service = 0.0

        for node in clone.dest:
            entry = ChtEntry(node, clone.state)
            rem = clone.rem
            disposition = Disposition.PROCESSED
            if self.config.log_table_enabled:
                observation = self.log_table.observe(node, qid, clone.state, now)
                if observation.action is LogAction.DROP:
                    self.stats.duplicates_dropped += 1
                    service += self.config.node_service_time
                    reports.append(NodeReport(entry, Disposition.DUPLICATE))
                    continue
                if observation.action is LogAction.REWRITE:
                    assert observation.rewritten_rem is not None
                    rem = observation.rewritten_rem
                    disposition = Disposition.REWRITTEN
                    self.stats.queries_rewritten += 1
            html = self._documents.get(node)
            if html is None:
                service += self.config.node_service_time
                reports.append(NodeReport(entry, Disposition.MISSING))
                continue
            database = self.constructor.construct(node, html)
            self.stats.documents_parsed += 1
            outcome = process_node(
                node, database, clone.query, clone.step_index, rem, self.config,
                site_documents=self._site_documents_for(clone.query, node.host),
                plan_for=self._plan_for(clone.query),
            )
            service += self.config.service_time(len(html), outcome.tuples_scanned)
            self.stats.node_queries_evaluated += len(outcome.evaluations)
            if self.tracer.enabled:
                for step_index, success in outcome.evaluations:
                    self.tracer.record(
                        now, str(node), self.site, clone.state, outcome.role,
                        "answered" if success else "failed",
                        detail=f"central:{clone.query.step_label(step_index)}",
                    )
            fresh = [fw for fw in outcome.forwards if fw not in seen_forwards]
            seen_forwards.update(fresh)
            forwards.extend(fresh)
            new_entries = tuple(
                ChtEntry(
                    fw.target,
                    QueryClone(clone.query, fw.step_index, fw.rem, (fw.target,)).state,
                )
                for fw in fresh
            )
            reports.append(NodeReport(entry, disposition, new_entries, tuple(outcome.results)))

        groups: dict[tuple, list[Url]] = {}
        for fw in forwards:
            key = (fw.target.host, fw.step_index, fw.rem)
            groups.setdefault(key, []).append(fw.target)
        clones = [
            QueryClone(clone.query, step_index, rem, tuple(dict.fromkeys(targets)))
            for (__, step_index, rem), targets in groups.items()
        ]
        # Echo the clone's dispatch identity and mint the children's, exactly
        # like a participating query-server would (see QueryServer).
        if clone.dispatch_id:
            child_of: dict[tuple[Url, object], str] = {}
            for index, child in enumerate(clones):
                stamped = child.with_identity(
                    f"c{next(self._dispatch_serial)}@{self.site}", clone.epoch
                )
                clones[index] = stamped
                for node in stamped.dest:
                    child_of[(node, stamped.state)] = stamped.dispatch_id
            reports = [
                replace(
                    report,
                    dispatch_id=clone.dispatch_id,
                    epoch=clone.epoch,
                    child_ids=tuple(
                        child_of.get((entry.node, entry.state), "")
                        for entry in report.new_entries
                    ),
                )
                for report in reports
            ]
        return reports, clones, service

    def _plan_for(self, query):
        """Step-index → compiled plan, or None under the interpreter ablation."""
        if not self.config.compiled_plans:
            return None
        qid = query.qid
        steps = query.steps
        cache = self.plans
        return lambda k: cache.plan_for(steps[k].query, qid)

    def _site_documents_for(self, query, site_name: str):
        """Site-spanning DOCUMENT table for §7.1 multi-document queries."""
        if self.web is None or not any(
            step.query.sitewide_aliases for step in query.steps
        ):
            return None
        table = self._site_documents.get(site_name)
        if table is None and self.web.has_site(site_name):
            site = self.web.site(site_name)
            pages = [
                (site.url_of(path), page.html)
                for path, page in sorted(site.pages.items())
            ]
            table = build_documents_table(pages)
            self._site_documents[site_name] = table
        return table

    def _complete(self, clone: QueryClone, reports, clones) -> None:
        qid = clone.query.qid

        def after_dispatch(outcome: SendOutcome) -> None:
            # REFUSED = passive termination; an exhausted transient outcome
            # means the user-site is unreachable.  Either way the central
            # helper stops working on this query.
            if not outcome.delivered:
                self._purged.add(qid)
                return
            for fclone in clones:
                self._forward(fclone)

        try:
            if reports:
                self.channel.send(
                    self.site, qid.host, qid.port,
                    ResultMessage(qid, tuple(reports)), after_dispatch,
                )
            else:
                for fclone in clones:
                    self._forward(fclone)
        finally:
            self._busy = False
            self._current = None
            self._pump()

    def _forward(self, fclone: QueryClone) -> None:
        qid = fclone.query.qid
        if fclone.site in self.participating:

            def after_forward(outcome: SendOutcome) -> None:
                if outcome.delivered:
                    self.stats.clones_forwarded += 1
                else:
                    self._retract(fclone)

            self.channel.send(self.site, fclone.site, QUERY_PORT, fclone, after_forward)
            return
        if self.network.send(self.site, self.site, HELPER_PORT, fclone):
            # Not participating: keep it central.
            self.stats.local_hops += 1
            return
        self._retract(fclone)

    def _retract(self, fclone: QueryClone) -> None:
        qid = fclone.query.qid
        retractions = tuple(
            NodeReport(
                ChtEntry(url, fclone.state), Disposition.UNREACHABLE,
                dispatch_id=fclone.dispatch_id, epoch=fclone.epoch,
            )
            for url in fclone.dest
        )
        self.channel.send(
            self.site, qid.host, qid.port, ResultMessage(qid, retractions, kind="cht")
        )


class HybridEngine(WebDisEngine):
    """A WEBDIS deployment in which only some sites participate (§7.1)."""

    def __init__(
        self,
        web: Web,
        participating_sites: Iterable[str],
        *,
        config: EngineConfig | None = None,
        net_config: NetworkConfig | None = None,
        user_site: str = DEFAULT_USER_SITE,
        user: str = "maya",
        trace: bool = False,
    ) -> None:
        from dataclasses import replace

        base = config if config is not None else EngineConfig()
        super().__init__(
            web,
            config=replace(base, central_fallback=True),
            net_config=net_config,
            user_site=user_site,
            user=user,
            participating_sites=participating_sites,
            trace=trace,
        )
        install_doc_servers(web, self.network, self.clock, self.stats)
        self.central = CentralProcessor(
            user_site,
            self.network,
            self.clock,
            self.config,
            self.stats,
            self.tracer,
            set(self.servers),
            web=web,
        )
