"""The centralized data-shipping baseline.

This is the architecture of every pre-WEBDIS web-query system ([14], [12],
[11] in the paper): the user-site downloads each candidate document, builds
its virtual relations *locally*, evaluates node-queries *locally*, and
decides from the local results which documents to download next.

To make the comparison about the *architecture* and nothing else, this
engine reuses the identical components: the same
:func:`~repro.core.processing.process_node` traversal semantics, the same
:class:`~repro.core.logtable.NodeQueryLogTable` duplicate suppression, and
the same CPU cost model — all charged to the single user site.  The network
carries :class:`FetchRequest`/:class:`DocResponse` pairs instead of clones,
so bytes scale with document volume (paper §1's criticism) rather than with
query+result volume.

``max_concurrent_fetches`` models HTTP pipelining; processing is strictly
sequential at the user site, which is what makes it the bottleneck
(EXP-C6).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

from ..core.config import EngineConfig
from ..core.logtable import LogAction, NodeQueryLogTable
from ..core.plancache import PlanCache
from ..core.processing import process_node
from ..core.trace import Tracer
from ..core.webquery import WebQuery
from ..disql.translate import compile_disql
from ..model.database import DatabaseConstructor, build_documents_table
from ..net.network import Network, NetworkConfig, SendOutcome
from ..net.reliable import ReliableChannel
from ..net.simclock import SimClock
from ..net.stats import TrafficStats
from ..pre.ast import Pre
from ..relational.query import ResultRow
from ..urlutils import Url
from ..web.web import Web
from .docservice import DOC_PORT, DocResponse, FetchRequest, install_doc_servers

__all__ = ["DataShippingEngine", "DataShippingResult", "JournalEntry"]

_RESULT_PORT = 9000


@dataclass
class DataShippingResult:
    """Results of one centralized run; mirrors the QueryHandle accessors."""

    query: WebQuery
    submit_time: float
    completion_time: float | None = None
    first_result_time: float | None = None
    results: list[tuple[str, ResultRow, float]] = field(default_factory=list)
    documents_fetched: int = 0

    def rows(self, label: str | None = None) -> list[ResultRow]:
        return [row for lbl, row, __ in self.results if label is None or lbl == label]

    def unique_rows(self, label: str | None = None) -> list[ResultRow]:
        seen: set[tuple[tuple[str, ...], tuple[object, ...]]] = set()
        unique = []
        for row in self.rows(label):
            key = (row.header, row.values)
            if key not in seen:
                seen.add(key)
                unique.append(row)
        return unique

    def response_time(self) -> float | None:
        if self.completion_time is None:
            return None
        return self.completion_time - self.submit_time

    def first_result_latency(self) -> float | None:
        if self.first_result_time is None:
            return None
        return self.first_result_time - self.submit_time


@dataclass(frozen=True, slots=True)
class JournalEntry:
    """Provenance of one processed node (``record_journal=True``).

    The DST oracle replays a fault-free centralized run and needs to know,
    for every node the traversal touched, which result rows that node
    produced and which nodes it forwarded to — the edges of the reference
    provenance graph used to decide whether a row missing from a PARTIAL
    distributed run is attributable to an abandoned dispatch.
    """

    node: str
    rows: tuple[tuple[str, tuple[str, ...], tuple[object, ...]], ...]
    forwards: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class _Work:
    """One pending node visit: evaluate step ``step_index`` after ``rem``."""

    url: Url
    step_index: int
    rem: Pre


class DataShippingEngine:
    """Centralized engine: all processing at the user site."""

    def __init__(
        self,
        web: Web,
        *,
        config: EngineConfig | None = None,
        net_config: NetworkConfig | None = None,
        user_site: str = "user.example",
        max_concurrent_fetches: int = 4,
        trace: bool = False,
        record_journal: bool = False,
    ) -> None:
        self.web = web
        self.config = config if config is not None else EngineConfig()
        self.clock = SimClock()
        self.stats = TrafficStats()
        self.tracer = Tracer(enabled=trace)
        self.network = Network(self.clock, self.stats, net_config)
        self.user_site = user_site
        self.max_concurrent_fetches = max_concurrent_fetches

        self.network.register_site(user_site)
        for site in web.site_names:
            self.network.register_site(site)
        install_doc_servers(web, self.network, self.clock, self.stats)
        self.network.listen(user_site, _RESULT_PORT, self._on_response)

        self.channel = ReliableChannel(
            self.network, self.clock, self.config.retry_policy,
            name=f"datashipping:{user_site}",
        )
        self.constructor = DatabaseConstructor(
            self.config.db_cache_size,
            storage=self.config.storage_backend,
            stats=self.stats,
        )
        self.log_table = NodeQueryLogTable(self.config.log_subsumption)
        self.plans = PlanCache(stats=self.stats)
        self._site_documents: dict[str, object] = {}
        self._request_ids = itertools.count(1)
        self._frontier: deque[_Work] = deque()
        self._in_flight: dict[int, _Work] = {}
        self._processing_backlog: deque[tuple[_Work, str | None]] = deque()
        self._busy = False
        self._result: DataShippingResult | None = None
        self._record_journal = record_journal
        #: Per-node provenance (:class:`JournalEntry`) when recording.
        self.journal: list[JournalEntry] = []

    # -- public API -----------------------------------------------------------

    def submit(self, query: WebQuery) -> DataShippingResult:
        """Start the centralized evaluation of ``query``."""
        if self._result is not None:
            raise RuntimeError("DataShippingEngine handles one query per instance")
        self._result = DataShippingResult(query, submit_time=self.clock.now)
        initial = query.steps[0].pre
        for url in query.start_urls:
            self._frontier.append(_Work(url.without_fragment(), 0, initial))
        self._issue_fetches()
        return self._result

    def submit_disql(self, text: str) -> DataShippingResult:
        return self.submit(compile_disql(text))

    def run(self, until: float | None = None) -> float:
        return self.clock.run(until)

    def run_query(self, disql_text: str) -> DataShippingResult:
        result = self.submit_disql(disql_text)
        self.run()
        return result

    # -- fetch pipeline ------------------------------------------------------

    def _issue_fetches(self) -> None:
        while self._frontier and len(self._in_flight) < self.max_concurrent_fetches:
            work = self._frontier.popleft()
            if not self._should_process(work):
                continue
            request_id = next(self._request_ids)
            request = FetchRequest(work.url, self.user_site, _RESULT_PORT, request_id)
            # Count the fetch in flight across any retries — otherwise a
            # pending retry would be invisible to _maybe_finish and the run
            # could be declared complete with work still outstanding.
            self._in_flight[request_id] = work

            def after_send(outcome: SendOutcome, rid: int = request_id) -> None:
                if not outcome.delivered:
                    # Unreachable site: skip, like a failed HTTP connect.
                    self._in_flight.pop(rid, None)
                    self._maybe_finish()

            self.channel.send(self.user_site, work.url.host, DOC_PORT, request, after_send)
        self._maybe_finish()

    def _should_process(self, work: _Work) -> bool:
        """Apply the same duplicate suppression the distributed engine uses."""
        assert self._result is not None
        qid = self._result.query.qid
        state = _state_of(self._result.query, work)
        observation = self.log_table.observe(work.url, qid, state, self.clock.now)
        if observation.action is LogAction.DROP:
            self.stats.duplicates_dropped += 1
            return False
        if observation.action is LogAction.REWRITE:
            assert observation.rewritten_rem is not None
            self.stats.queries_rewritten += 1
            self._frontier.appendleft(
                _Work(work.url, work.step_index, observation.rewritten_rem)
            )
            return False
        return True

    def _on_response(self, src: str, payload: object) -> None:
        assert isinstance(payload, DocResponse)
        work = self._in_flight.pop(payload.request_id, None)
        if work is None:
            return
        self._processing_backlog.append((work, payload.html))
        self._pump()
        self._issue_fetches()

    # -- sequential local processing (the client bottleneck) --------------------

    def _pump(self) -> None:
        if self._busy or not self._processing_backlog:
            return
        self._busy = True
        work, html = self._processing_backlog.popleft()
        service = self._process(work, html)
        self.stats.record_processing(self.user_site, service)
        self.clock.schedule(service, self._processing_done)

    def _processing_done(self) -> None:
        self._busy = False
        self._pump()
        self._issue_fetches()

    def _process(self, work: _Work, html: str | None) -> float:
        assert self._result is not None
        query = self._result.query
        if html is None:
            if self.tracer.enabled:
                self.tracer.record(
                    self.clock.now, str(work.url), self.user_site,
                    _state_of(query, work), "-", "missing",
                )
            return self.config.node_service_time
        self._result.documents_fetched += 1
        database = self.constructor.construct(work.url, html)
        self.stats.documents_parsed += 1
        outcome = process_node(
            work.url, database, query, work.step_index, work.rem, self.config,
            site_documents=self._site_documents_for(query, work.url.host),
            plan_for=self._plan_for(query),
        )
        self.stats.node_queries_evaluated += len(outcome.evaluations)
        now = self.clock.now
        for label, row in outcome.results:
            if self._result.first_result_time is None:
                self._result.first_result_time = now
            self._result.results.append((label, row, now))
        if outcome.dead_end:
            self.stats.dead_ends += 1
        if self.tracer.enabled:
            for step_index, success in outcome.evaluations:
                self.tracer.record(
                    now, str(work.url), self.user_site, _state_of(query, work),
                    outcome.role, "answered" if success else "failed",
                    detail=query.step_label(step_index),
                )
        for forward in outcome.forwards:
            self._frontier.append(_Work(forward.target, forward.step_index, forward.rem))
        if self._record_journal:
            self.journal.append(
                JournalEntry(
                    node=str(work.url),
                    rows=tuple(
                        (label, row.header, row.values)
                        for label, row in outcome.results
                    ),
                    forwards=tuple(
                        str(forward.target.without_fragment())
                        for forward in outcome.forwards
                    ),
                )
            )
        return self.config.service_time(len(html), outcome.tuples_scanned)

    def _plan_for(self, query: WebQuery):
        """Step-index → compiled plan, or None under the interpreter ablation."""
        if not self.config.compiled_plans:
            return None
        qid = query.qid
        steps = query.steps
        cache = self.plans
        return lambda k: cache.plan_for(steps[k].query, qid)

    def _site_documents_for(self, query: WebQuery, site_name: str):
        """Site-spanning DOCUMENT table for §7.1 multi-document queries.

        Built from the web ground truth (simulation convenience — a real
        centralized engine would have downloaded these pages anyway).
        """
        if not any(step.query.sitewide_aliases for step in query.steps):
            return None
        table = self._site_documents.get(site_name)
        if table is None and self.web.has_site(site_name):
            site = self.web.site(site_name)
            pages = [
                (site.url_of(path), page.html)
                for path, page in sorted(site.pages.items())
            ]
            table = build_documents_table(pages)
            self._site_documents[site_name] = table
        return table

    # -- completion -----------------------------------------------------------

    def _maybe_finish(self) -> None:
        if (
            self._result is not None
            and self._result.completion_time is None
            and not self._frontier
            and not self._in_flight
            and not self._processing_backlog
            and not self._busy
        ):
            self._result.completion_time = self.clock.now


def _state_of(query: WebQuery, work: _Work):
    from ..core.state import QueryState

    return QueryState(len(query.steps) - work.step_index, work.rem)
