"""Integration tests: the full engine on the paper's scenarios."""

from __future__ import annotations

import pytest

from repro import EngineConfig, NetworkConfig, QueryStatus, WebDisEngine
from repro.core.trace import PURE_ROUTER, SERVER_ROUTER, START_NODE
from repro.web.builders import WebBuilder
from repro.web.campus import (
    CAMPUS_QUERY_DISQL,
    EXPECTED_CONVENER_ROWS,
    EXPECTED_D0_URL,
)
from repro.web.figures import (
    EXPECTED_FIG1_DEAD_ENDS,
    EXPECTED_FIG1_DOUBLE_ACTOR,
    EXPECTED_FIG1_PURE_ROUTERS,
    EXPECTED_FIG1_SERVER_ROUTERS,
    EXPECTED_FIG5_DUPLICATE_DROPS,
    EXPECTED_FIG5_FOCUS_NODE,
    EXPECTED_FIG5_VISITS,
    FIG1_NODE_NAMES,
    FIGURE1_START_URL,
    FIGURE5_START_URL,
    figure_query_disql,
)


class TestCampusQuery:
    """The paper's sample execution (Section 5, Figures 7-8)."""

    @pytest.fixture(autouse=True)
    def _run(self, campus_web):
        self.engine = WebDisEngine(campus_web, trace=True)
        self.handle = self.engine.run_query(CAMPUS_QUERY_DISQL)

    def test_completes(self):
        assert self.handle.status is QueryStatus.COMPLETE

    def test_q1_finds_the_labs_page(self):
        rows = self.handle.unique_rows("q1")
        assert [r.values[0] for r in rows] == [EXPECTED_D0_URL]

    def test_q2_matches_figure8(self):
        got = {r.values for r in self.handle.unique_rows("q2")}
        assert got == set(EXPECTED_CONVENER_ROWS)

    def test_no_documents_shipped(self):
        assert self.engine.stats.documents_shipped == 0
        assert self.engine.stats.document_bytes_shipped == 0

    def test_csa_homepage_is_pure_router(self):
        routers = self.engine.tracer.nodes_with_role(PURE_ROUTER)
        assert "http://www.csa.iisc.ernet.in/" in routers

    def test_lab_homepages_evaluate_q2(self):
        answered = {
            e.node
            for e in self.engine.tracer.events
            if e.action in ("answered", "failed") and e.detail == "q2"
        }
        assert "http://dsl.serc.iisc.ernet.in/" in answered

    def test_display_table_renders(self):
        table = self.handle.display_table()
        assert "CONVENER Jayant Haritsa" in table
        assert table.startswith("Results of the query")

    def test_response_and_first_result_latency(self):
        assert self.handle.response_time() is not None
        assert 0 < self.handle.first_result_latency() <= self.handle.response_time()

    def test_cht_balanced_at_completion(self):
        cht = self.handle.cht
        cht.check_consistency()
        assert cht.imbalance() == 0
        assert cht.pending_entries() == []


class TestFigure1:
    @pytest.fixture(autouse=True)
    def _run(self, figure1_web):
        self.engine = WebDisEngine(figure1_web, trace=True)
        self.handle = self.engine.run_query(figure_query_disql(FIGURE1_START_URL))

    def _named(self, urls):
        return {FIG1_NODE_NAMES.get(u, u) for u in urls}

    def test_completes(self):
        assert self.handle.status is QueryStatus.COMPLETE

    def test_pure_routers(self):
        pure = self._named(self.engine.tracer.nodes_with_role(PURE_ROUTER))
        assert pure == set(EXPECTED_FIG1_PURE_ROUTERS) | {"S"}

    def test_server_routers(self):
        servers = self._named(self.engine.tracer.nodes_with_role(SERVER_ROUTER))
        assert servers == set(EXPECTED_FIG1_SERVER_ROUTERS)

    def test_node7_dead_end(self):
        dead = self._named(
            e.node for e in self.engine.tracer.events if e.action == "dead-end"
        )
        assert set(EXPECTED_FIG1_DEAD_ENDS) <= dead

    def test_node4_acts_twice(self):
        url = next(u for u, n in FIG1_NODE_NAMES.items() if n == EXPECTED_FIG1_DOUBLE_ACTOR)
        answers = [
            e for e in self.engine.tracer.events
            if e.node == url and e.action == "answered"
        ]
        assert [e.detail for e in answers] == ["q1", "q2"]

    def test_q1_answered_by_three_nodes(self):
        assert len(self.handle.unique_rows("q1")) == 3

    def test_q2_answered_by_node4_and_node8(self):
        urls = {r.values[0] for r in self.handle.unique_rows("q2")}
        assert urls == {"http://site-d.example/", "http://site-f.example/"}

    def test_node7_children_not_visited_with_q2(self):
        # node7 failed q1, so node8 must never receive a q2 clone "via node7";
        # node8 is only reached once (from node4).
        node8_visits = [
            e for e in self.engine.tracer.visits_to("http://site-f.example/")
            if e.action == "answered"
        ]
        assert len(node8_visits) == 1


class TestFigure5:
    @pytest.fixture(autouse=True)
    def _run(self, figure5_web):
        self.engine = WebDisEngine(figure5_web, trace=True)
        self.handle = self.engine.run_query(figure_query_disql(FIGURE5_START_URL))

    def test_completes(self):
        assert self.handle.status is QueryStatus.COMPLETE

    def test_node4_visited_five_times(self):
        arrivals = [
            e for e in self.engine.tracer.visits_to(EXPECTED_FIG5_FOCUS_NODE)
            if e.action in ("routed", "answered", "failed", "duplicate-dropped")
        ]
        assert len(arrivals) == EXPECTED_FIG5_VISITS

    def test_three_distinct_states(self):
        states = {
            str(e.state)
            for e in self.engine.tracer.visits_to(EXPECTED_FIG5_FOCUS_NODE)
            if e.action in ("routed", "answered", "duplicate-dropped")
        }
        assert states == {"(2, G|L)", "(2, N)", "(1, N)"}

    def test_two_duplicates_dropped(self):
        assert self.engine.stats.duplicates_dropped == EXPECTED_FIG5_DUPLICATE_DROPS

    def test_without_log_table_recomputes(self):
        engine = WebDisEngine(
            self.engine.web, config=EngineConfig(log_table_enabled=False), trace=True
        )
        handle = engine.run_query(figure_query_disql(FIGURE5_START_URL))
        assert handle.status is QueryStatus.COMPLETE
        q2_evals = [
            e for e in engine.tracer.visits_to(EXPECTED_FIG5_FOCUS_NODE)
            if e.action == "answered" and e.detail == "q2"
        ]
        assert len(q2_evals) == 3  # c, d and e all recomputed
        # The user sees duplicate rows; unique_rows() collapses them.
        assert len(handle.rows("q2")) > len(handle.unique_rows("q2"))

    def test_results_identical_with_and_without_log_table(self):
        engine = WebDisEngine(self.engine.web, config=EngineConfig(log_table_enabled=False))
        handle = engine.run_query(figure_query_disql(FIGURE5_START_URL))
        a = {r.values for r in handle.unique_rows()}
        b = {r.values for r in self.handle.unique_rows()}
        assert a == b


class TestStartNodes:
    def test_start_node_dispatch_traced(self, campus_web):
        engine = WebDisEngine(campus_web, trace=True)
        engine.run_query(CAMPUS_QUERY_DISQL)
        starts = engine.tracer.nodes_with_role(START_NODE)
        assert starts == ["http://www.csa.iisc.ernet.in/"]

    def test_unreachable_start_site_completes_empty(self, campus_web):
        engine = WebDisEngine(campus_web)
        handle = engine.submit_disql(
            'select d.url from document d such that "http://nowhere.example/" L d'
        )
        engine.run()
        assert handle.status is QueryStatus.COMPLETE
        assert handle.rows() == []

    def test_missing_start_page_completes_empty(self, campus_web):
        engine = WebDisEngine(campus_web)
        handle = engine.submit_disql(
            'select d.url from document d such that'
            ' "http://www.csa.iisc.ernet.in/NoSuchPage" L d'
        )
        engine.run()
        assert handle.status is QueryStatus.COMPLETE
        assert handle.rows() == []

    def test_multiple_start_nodes(self, campus_web):
        engine = WebDisEngine(campus_web)
        handle = engine.run_query(
            "select d.url from document d such that "
            '"http://dsl.serc.iisc.ernet.in/" | "http://www.iisc.ernet.in/" N|L*1 d'
        )
        assert handle.status is QueryStatus.COMPLETE
        urls = {r.values[0] for r in handle.unique_rows()}
        assert "http://dsl.serc.iisc.ernet.in/" in urls
        assert "http://www.iisc.ernet.in/" in urls


def _two_site_web():
    builder = WebBuilder()
    builder.site("a.example").page(
        "/", title="alpha topic", links=[("b", "http://b.example/")]
    )
    builder.site("b.example").page(
        "/", title="beta topic", links=[("a", "http://a.example/")]
    )
    return builder.build()


QUERY_AB = (
    'select d.url from document d such that "http://a.example/" (G*2) d\n'
    'where d.title contains "topic"'
)


class TestProtocolBehaviour:
    def test_cycle_terminates_via_log_table(self):
        engine = WebDisEngine(_two_site_web())
        handle = engine.run_query(
            'select d.url from document d such that "http://a.example/" G* d\n'
            'where d.title contains "topic"'
        )
        assert handle.status is QueryStatus.COMPLETE
        urls = {r.values[0] for r in handle.unique_rows()}
        assert urls == {"http://a.example/", "http://b.example/"}

    def test_transient_result_failure_purges_branch(self):
        engine = WebDisEngine(_two_site_web())
        # b.example's result dispatch to the user will fail once.
        engine.network.fail_next("b.example", "user.example")
        handle = engine.run_query(QUERY_AB)
        # The query can never be detected complete (CHT entry outstanding) —
        # but it must NOT be *wrongly* declared complete.
        assert handle.status is QueryStatus.RUNNING
        assert not handle.cht.all_deleted()
        assert engine.stats.failed_sends == 1

    def test_no_false_completion_under_failures(self):
        engine = WebDisEngine(_two_site_web())
        engine.network.fail_next("a.example", "user.example")
        handle = engine.run_query(QUERY_AB)
        assert handle.status is QueryStatus.RUNNING

    def test_unreachable_forward_retires_entries(self):
        builder = WebBuilder()
        builder.site("a.example").page(
            "/", title="root topic", links=[("ghost", "http://ghost.example/")]
        )
        web = builder.build()
        engine = WebDisEngine(web)
        # ghost.example hosts no pages and no server, yet completion is exact.
        handle = engine.run_query(QUERY_AB)
        assert handle.status is QueryStatus.COMPLETE

    def test_floating_link_to_existing_site(self):
        builder = WebBuilder()
        builder.site("a.example").page(
            "/", title="root topic", links=[("dead", "http://b.example/missing.html")]
        )
        builder.site("b.example").page("/", title="beta topic")
        engine = WebDisEngine(builder.build(), trace=True)
        handle = engine.run_query(QUERY_AB)
        assert handle.status is QueryStatus.COMPLETE
        assert "missing" in engine.tracer.actions()

    def test_cancellation_stops_results(self):
        engine = WebDisEngine(_two_site_web(), net_config=NetworkConfig(latency_base=0.5))
        handle = engine.submit_disql(QUERY_AB)
        engine.cancel(handle, at=0.6)
        engine.run()
        assert handle.status is QueryStatus.CANCELLED
        assert handle.cancel_time == pytest.approx(0.6)

    def test_cancellation_purges_servers(self):
        engine = WebDisEngine(_two_site_web(), net_config=NetworkConfig(latency_base=0.5))
        handle = engine.submit_disql(QUERY_AB)
        engine.cancel(handle, at=0.01)  # cancel before any server replies
        engine.run()
        # Every server that tried to reply found the socket closed: no
        # clones forwarded past the first hop, no chase messages needed.
        assert engine.stats.refused_sends >= 1
        assert handle.results == []

    def test_cancel_twice_raises(self, campus_web):
        from repro.errors import QueryLifecycleError

        engine = WebDisEngine(campus_web, net_config=NetworkConfig(latency_base=1.0))
        handle = engine.submit_disql(CAMPUS_QUERY_DISQL)
        engine.client.cancel(handle)
        with pytest.raises(QueryLifecycleError):
            engine.client.cancel(handle)

    def test_two_queries_same_engine_isolated(self, campus_web):
        engine = WebDisEngine(campus_web)
        h1 = engine.submit_disql(CAMPUS_QUERY_DISQL)
        h2 = engine.submit_disql(
            'select d.url from document d such that "http://www.iisc.ernet.in/" N d'
        )
        engine.run()
        assert h1.status is QueryStatus.COMPLETE
        assert h2.status is QueryStatus.COMPLETE
        assert h1.qid.number != h2.qid.number
        assert {r.values[0] for r in h2.unique_rows()} == {"http://www.iisc.ernet.in/"}


class TestConfigurationVariants:
    def test_strict_dead_end_loses_campus_answers(self, campus_web):
        engine = WebDisEngine(campus_web, config=EngineConfig(strict_dead_end=True))
        handle = engine.run_query(CAMPUS_QUERY_DISQL)
        assert handle.status is QueryStatus.COMPLETE
        # Under the literal Figure-4 rule the lab homepages fail q2 and kill
        # the L-continuations: only the www2 homepage (which matches q2
        # directly) survives.  This documents why lenient is the default.
        got = {r.values[0] for r in handle.unique_rows("q2")}
        assert got == {"http://www2.csa.iisc.ernet.in/~gang/lab"}

    def test_per_node_clones_more_messages(self, campus_web):
        batched = WebDisEngine(campus_web)
        batched.run_query(CAMPUS_QUERY_DISQL)
        unbatched = WebDisEngine(campus_web, config=EngineConfig(batch_per_site=False))
        unbatched.run_query(CAMPUS_QUERY_DISQL)
        assert (
            unbatched.stats.messages_by_kind["query"]
            >= batched.stats.messages_by_kind["query"]
        )

    def test_separate_cht_messages_doubles_result_traffic(self, campus_web):
        combined = WebDisEngine(campus_web)
        h1 = combined.run_query(CAMPUS_QUERY_DISQL)
        split = WebDisEngine(
            campus_web, config=EngineConfig(combine_results_and_cht=False)
        )
        h2 = split.run_query(CAMPUS_QUERY_DISQL)
        assert h2.status is QueryStatus.COMPLETE
        assert {r.values for r in h2.unique_rows("q2")} == {
            r.values for r in h1.unique_rows("q2")
        }
        split_count = (
            split.stats.messages_by_kind["cht"] + split.stats.messages_by_kind["result"]
        )
        assert split_count > combined.stats.messages_by_kind["result"]

    def test_retrace_mode_same_answers_more_messages(self, campus_web):
        direct = WebDisEngine(campus_web)
        h1 = direct.run_query(CAMPUS_QUERY_DISQL)
        retrace = WebDisEngine(
            campus_web, config=EngineConfig(direct_result_return=False)
        )
        h2 = retrace.run_query(CAMPUS_QUERY_DISQL)
        assert h2.status is QueryStatus.COMPLETE
        assert {r.values for r in h2.unique_rows("q2")} == {
            r.values for r in h1.unique_rows("q2")
        }
        assert retrace.stats.messages_by_kind["relay"] > 0
        assert retrace.stats.messages_sent > direct.stats.messages_sent
        assert h2.response_time() > h1.response_time()

    def test_db_cache_avoids_rebuilds(self, figure5_web):
        cached = WebDisEngine(figure5_web, config=EngineConfig(db_cache_size=16))
        cached.run_query(figure_query_disql(FIGURE5_START_URL))
        hits = sum(s.constructor.cache_hits for s in cached.servers.values())
        assert hits > 0

    def test_log_purge_causes_recomputation_not_wrong_answers(self, figure5_web):
        eager = WebDisEngine(
            figure5_web,
            config=EngineConfig(log_max_age=0.0001, log_purge_interval=0.0001),
        )
        handle = eager.run_query(figure_query_disql(FIGURE5_START_URL))
        assert handle.status is QueryStatus.COMPLETE
        baseline = WebDisEngine(figure5_web)
        expected = baseline.run_query(figure_query_disql(FIGURE5_START_URL))
        assert {r.values for r in handle.unique_rows()} == {
            r.values for r in expected.unique_rows()
        }
