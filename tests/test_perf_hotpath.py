"""Hot-path machinery: plan caching, invalidation, and free disabled tracing.

Covers the perf-layer invariants the benchmarks rely on:

* :class:`~repro.core.plancache.PlanCache` is a bounded LRU keyed by the
  node-query's structural hash — shared across qids, verified against the
  full structural key on every hit (collision safety) — and a crash clears
  it, so a stale plan is never served across server incarnations;
* engine results are bit-identical with ``compiled_plans`` on and off;
* a disabled tracer costs nothing on the hot path — zero ``record``
  calls, zero event allocations;
* the per-``rem`` fan-out memo and the hoisted forward-dedup set keep
  ``_emit_forwards`` linear in the link count.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig, WebDisEngine
from repro.core.plancache import PlanCache
from repro.core.processing import _fanout
from repro.core.trace import Tracer
from repro.core.webquery import QueryId
from repro.disql import compile_disql
from repro.model.relations import LinkType
from repro.pre.ast import Atom, alt, repeat
from repro.web.builders import WebBuilder

QUERY = (
    'select d.url, d.title\n'
    'from document d such that "http://root.example/" (L|G)*2 d\n'
    'where d.title contains "topic"'
)


def _web():
    builder = WebBuilder()
    builder.site("root.example").page(
        "/",
        title="root topic",
        links=[
            ("leaf a", "http://leafa.example/"),
            ("leaf b", "http://leafb.example/"),
            ("self", "/deep.html"),
        ],
    ).page("/deep.html", title="deep topic", links=[("up", "/")])
    builder.site("leafa.example").page("/", title="leaf a topic")
    builder.site("leafb.example").page("/", title="leaf b topic")
    return builder.build()


def _node_query():
    return compile_disql(QUERY).steps[0].query


def _variant_queries(count):
    """Structurally distinct node-queries (different contains-words)."""
    return [
        compile_disql(QUERY.replace('"topic"', f'"topic{n}"')).steps[0].query
        for n in range(count)
    ]


class TestPlanCache:
    def test_hit_returns_same_plan_object(self):
        cache = PlanCache()
        qid = QueryId("maya", "user.example", 4000, 1)
        query = _node_query()
        first = cache.plan_for(query, qid)
        second = cache.plan_for(query, qid)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_structural_equals_share_one_plan_across_qids(self):
        # The EXP-P4 rekeying: two tenants submitting the same node-query
        # structure get ONE compilation, counted as cross-query sharing.
        cache = PlanCache()
        query = _node_query()
        a = cache.plan_for(query, QueryId("maya", "user.example", 4000, 1))
        b = cache.plan_for(query, QueryId("noor", "user.example", 4000, 2))
        assert a is b
        assert len(cache) == 1
        assert cache.shared_hits == 1

    def test_distinct_structures_get_distinct_plans(self):
        cache = PlanCache()
        q1, q2 = _variant_queries(2)
        assert cache.plan_for(q1) is not cache.plan_for(q2)
        assert len(cache) == 2

    def test_lru_eviction_is_bounded(self):
        cache = PlanCache(max_size=2)
        queries = _variant_queries(3)
        plans = [cache.plan_for(query) for query in queries]
        assert len(cache) == 2
        assert queries[0] not in cache  # oldest evicted
        # Re-requesting the evicted structure recompiles: a new plan object.
        assert cache.plan_for(queries[0]) is not plans[0]

    def test_clear_forces_recompilation(self):
        cache = PlanCache()
        query = _node_query()
        before = cache.plan_for(query)
        cache.clear()
        assert len(cache) == 0
        assert cache.plan_for(query) is not before

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            PlanCache(max_size=0)

    def test_hash_collision_never_serves_the_wrong_plan(self):
        # Regression (satellite fix): force every digest to collide; the
        # full-key verification must still hand each structure its own
        # correct plan instead of the colliding entry's.
        cache = PlanCache(hash_fn=lambda query: "deadbeef")
        q1, q2 = _variant_queries(2)
        p1 = cache.plan_for(q1)
        p2 = cache.plan_for(q2)
        assert cache.collisions == 1
        assert p1 is not p2
        assert p1.query is q1 and p2.query is q2
        # The collision evicted q1's entry (same slot); a fresh q1 probe
        # collides again and recompiles — correct, never silently wrong.
        p1_again = cache.plan_for(q1)
        assert cache.collisions == 2
        assert p1_again.query is q1


class TestInvalidationAcrossIncarnations:
    def test_crash_clears_server_plans(self):
        engine = WebDisEngine(_web())
        engine.submit_disql(QUERY)
        engine.run()
        server = engine.server_for("root.example")
        assert len(server.plans) > 0
        pre_crash = {
            digest: plan for digest, (__, __, plan) in server.plans._plans.items()
        }
        engine.crash_server("root.example")
        assert len(server.plans) == 0
        engine.restart_server("root.example")
        # The reborn incarnation recompiles on first touch — the stale
        # plan objects are never served again.
        handle = engine.submit_disql(QUERY)
        engine.run()
        assert handle.results
        for digest, (__, __, plan) in server.plans._plans.items():
            assert pre_crash.get(digest) is not plan

    def test_engine_results_identical_with_and_without_compilation(self):
        runs = {}
        for compiled in (True, False):
            engine = WebDisEngine(
                _web(), config=EngineConfig(compiled_plans=compiled)
            )
            handle = engine.submit_disql(QUERY)
            done_at = engine.run()
            runs[compiled] = (
                handle.status,
                done_at,
                [(label, row.header, row.values) for label, row, __ in handle.results],
            )
        assert runs[True] == runs[False]
        assert runs[True][2]  # non-vacuous: the query does return rows

    def test_interpreter_ablation_leaves_plan_cache_untouched(self):
        engine = WebDisEngine(_web(), config=EngineConfig(compiled_plans=False))
        engine.submit_disql(QUERY)
        engine.run()
        assert all(
            len(server.plans) == 0 for server in engine.servers.values()
        )


class TestDisabledTracingIsFree:
    def test_zero_event_allocation_when_disabled(self, monkeypatch):
        calls = []
        original = Tracer.record

        def counting(self, *args, **kwargs):
            calls.append(args)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Tracer, "record", counting)
        engine = WebDisEngine(_web(), trace=False)
        handle = engine.submit_disql(QUERY)
        engine.run()
        assert handle.results  # the run did real work
        assert calls == []  # ...without ever reaching the tracer
        assert engine.tracer.events == []

    def test_enabled_tracing_still_records(self):
        engine = WebDisEngine(_web(), trace=True)
        engine.submit_disql(QUERY)
        engine.run()
        assert engine.tracer.events


class TestFanoutMemo:
    def test_fanout_matches_derivatives_and_is_cached(self):
        rem = repeat(alt([Atom(LinkType.LOCAL), Atom(LinkType.GLOBAL)]), 2)
        _fanout.cache_clear()
        first = _fanout(rem)
        assert _fanout(rem) is first
        assert _fanout.cache_info().hits >= 1
        kinds = {ltype for ltype, __ in first}
        assert kinds == {LinkType.LOCAL, LinkType.GLOBAL}
        # Order is deterministic (sorted by link-type value).
        assert [lt for lt, __ in first] == sorted(
            (lt for lt, __ in first), key=lambda lt: lt.value
        )
