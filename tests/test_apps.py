"""Tests for the application layer: site map, link check, gatherer."""

from __future__ import annotations

import pytest

from repro.apps import build_site_map, find_floating_links, gather_segments
from repro.web import SyntheticWebConfig, WebBuilder, build_synthetic_web
from repro.web.synthetic import synthetic_start_url


def _domain_web(with_dangling: bool = False):
    builder = WebBuilder()
    site = builder.site("docs.example")
    site.page(
        "/",
        title="Docs home",
        links=[("Guide", "/guide.html"), ("API", "/api.html")],
    )
    site.page(
        "/guide.html",
        title="Guide",
        links=[("Home", "/"), ("External", "http://other.example/")]
        + ([("Broken", "/gone.html")] if with_dangling else []),
    )
    site.page("/api.html", title="API", links=[("Guide", "/guide.html")])
    builder.site("other.example").page("/", title="Other")
    return builder.build()


class TestSiteMap:
    def test_collects_local_edges(self):
        site_map = build_site_map(_domain_web(), "http://docs.example/", depth=4)
        bases = {base for base, __, ___ in site_map.edges}
        assert "http://docs.example/" in bases
        assert all(ltype == "L" for __, ___, ltype in site_map.edges)

    def test_include_global_records_exits(self):
        site_map = build_site_map(
            _domain_web(), "http://docs.example/", depth=4, include_global=True
        )
        assert any(ltype == "G" for __, ___, ltype in site_map.edges)

    def test_pages_cover_domain(self):
        site_map = build_site_map(_domain_web(), "http://docs.example/", depth=4)
        assert "http://docs.example/guide.html" in site_map.pages

    def test_no_duplicate_edges(self):
        site_map = build_site_map(_domain_web(), "http://docs.example/", depth=6)
        assert len(site_map.edges) == len(set(site_map.edges))

    def test_render(self):
        site_map = build_site_map(_domain_web(), "http://docs.example/", depth=4)
        text = site_map.render()
        assert "--L-->" in text

    def test_economics_recorded(self):
        site_map = build_site_map(_domain_web(), "http://docs.example/", depth=4)
        assert site_map.bytes_on_wire > 0
        assert site_map.response_time is not None

    def test_depth_zero_maps_only_root(self):
        site_map = build_site_map(_domain_web(), "http://docs.example/", depth=0)
        assert {base for base, __, ___ in site_map.edges} == {"http://docs.example/"}


class TestLinkCheck:
    def test_clean_domain(self):
        report = find_floating_links(_domain_web(), "http://docs.example/", depth=4)
        assert report.ok
        assert report.links_checked > 0

    def test_detects_dangling(self):
        report = find_floating_links(
            _domain_web(with_dangling=True), "http://docs.example/", depth=4
        )
        assert not report.ok
        assert [(f.base, f.href) for f in report.floating] == [
            ("http://docs.example/guide.html", "http://docs.example/gone.html")
        ]

    def test_render_mentions_dangling(self):
        report = find_floating_links(
            _domain_web(with_dangling=True), "http://docs.example/", depth=4
        )
        assert "dangling" in report.render()

    def test_synthetic_floating_fraction(self):
        config = SyntheticWebConfig(
            sites=4, pages_per_site=4, floating_fraction=0.3, seed=13
        )
        web = build_synthetic_web(config)
        report = find_floating_links(
            web, synthetic_start_url(config), depth=5, include_global=True
        )
        assert report.floating  # some dangling links were planted

    def test_zero_floating_fraction_clean(self):
        config = SyntheticWebConfig(sites=4, pages_per_site=4, seed=13)
        web = build_synthetic_web(config)
        report = find_floating_links(
            web, synthetic_start_url(config), depth=5, include_global=True
        )
        assert report.ok


class TestGather:
    def _web(self):
        builder = WebBuilder()
        for name in ("alpha", "beta"):
            site = builder.site(f"{name}.example")
            site.page(
                "/",
                title=f"{name} home",
                emphasized=[("b", f"announcement from {name}")],
                links=[("news", "/news.html")],
            )
            site.page(
                "/news.html",
                title=f"{name} news",
                emphasized=[("b", f"announcement deep in {name}")],
            )
        return builder.build()

    def test_gathers_from_multiple_starts(self):
        result = gather_segments(
            self._web(),
            ["http://alpha.example/", "http://beta.example/"],
            "announcement",
            radius=2,
        )
        sites = set(result.by_site())
        assert sites == {"alpha.example", "beta.example"}
        assert len(result.segments) == 4

    def test_keyword_filters(self):
        result = gather_segments(
            self._web(), ["http://alpha.example/"], "nonexistent", radius=2
        )
        assert result.segments == []

    def test_requires_start_urls(self):
        with pytest.raises(ValueError):
            gather_segments(self._web(), [], "x")

    def test_render(self):
        result = gather_segments(
            self._web(), ["http://alpha.example/"], "announcement", radius=1
        )
        assert "announcement" in result.render()

    def test_economics(self):
        result = gather_segments(
            self._web(), ["http://alpha.example/"], "announcement", radius=2
        )
        assert result.messages > 0 and result.bytes_on_wire > 0
