"""Predicate pushdown: property-checked against the naive evaluator."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.html.generator import PageSpec, render_page
from repro.model.database import build_node_database
from repro.relational.expr import And, Attr, Compare, Contains, Literal, Not, Or
from repro.relational.query import (
    NodeQuery,
    TableDecl,
    evaluate_node_query,
    evaluate_node_query_naive,
)
from repro.urlutils import parse_url

URL = parse_url("http://a.example/page.html")


def _database():
    spec = PageSpec(
        title="alpha topic page",
        paragraphs=["some text body"],
        links=[
            ("one", "http://b.example/"),
            ("two", "/local.html"),
            ("three", "#frag"),
        ],
        emphasized=[("b", "bold detail"), ("i", "italic note")],
        ruled=["CONVENER someone"],
    )
    return build_node_database(URL, render_page(spec))


DATABASE = _database()

_ATTRS = [
    Attr("d", "title"),
    Attr("d", "url"),
    Attr("a", "ltype"),
    Attr("a", "href"),
    Attr("r", "delimiter"),
    Attr("r", "text"),
]
# All-string operands: predicate pushdown may legitimately reorder which
# conjunct raises first on type-broken comparisons, so the equivalence
# property quantifies over type-safe expressions only.
_LITERALS = [Literal(v) for v in ("G", "L", "b", "topic", "detail", "x")]


def _operands():
    return st.sampled_from(_ATTRS + _LITERALS)


def _comparisons():
    ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
    compares = st.builds(Compare, ops, _operands(), _operands())
    contains = st.builds(
        Contains,
        st.sampled_from(_ATTRS),
        st.sampled_from([Literal("topic"), Literal("G"), Literal("b"), Literal("zzz")]),
    )
    return st.one_of(compares, contains)


_exprs = st.recursive(
    _comparisons(),
    lambda children: st.one_of(
        st.builds(And, children, children),
        st.builds(Or, children, children),
        st.builds(Not, children),
    ),
    max_leaves=6,
)


def _query(where):
    return NodeQuery(
        select=(Attr("d", "url"), Attr("a", "href"), Attr("r", "delimiter")),
        tables=(
            TableDecl("document", "d"),
            TableDecl("anchor", "a"),
            TableDecl("relinfon", "r"),
        ),
        where=where,
    )


def _safe_eval(evaluator, query):
    """Comparisons over mixed types can legitimately raise; both evaluators
    must then raise identically."""
    from repro.errors import EvaluationError

    try:
        return [r.values for r in evaluator(query, DATABASE)]
    except EvaluationError:
        return "error"


@given(_exprs)
@settings(max_examples=300, deadline=None)
def test_pushdown_matches_naive(where):
    query = _query(where)
    assert _safe_eval(evaluate_node_query, query) == _safe_eval(
        evaluate_node_query_naive, query
    )


class TestPushdownBehaviour:
    def test_constant_false_prunes_everything(self):
        query = _query(Literal(False))
        assert evaluate_node_query(query, DATABASE) == []

    def test_single_alias_conjunct_prunes_early(self):
        # d-only predicate false: no anchor/relinfon rows ever scanned.
        query = _query(Contains(Attr("d", "title"), Literal("nonexistent")))
        assert evaluate_node_query(query, DATABASE) == []

    def test_cross_alias_conjunct_at_right_depth(self):
        where = And(
            Compare("=", Attr("a", "ltype"), Literal("G")),
            Compare("=", Attr("r", "delimiter"), Literal("b")),
        )
        rows = evaluate_node_query(_query(where), DATABASE)
        assert rows
        assert all(r.values[2] == "b" for r in rows)

    def test_row_order_preserved(self):
        query = _query(Literal(True))
        a = [r.values for r in evaluate_node_query(query, DATABASE)]
        b = [r.values for r in evaluate_node_query_naive(query, DATABASE)]
        assert a == b  # identical order, not just identical sets
