"""Tests for synthetic page rendering — rendered pages must round-trip
through the real parser with the intended structure."""

from __future__ import annotations

from repro.html.generator import PageSpec, render_page
from repro.html.parser import parse_html


class TestRenderParse:
    def test_title_round_trip(self):
        doc = parse_html(render_page(PageSpec(title="Hello World")))
        assert doc.title == "Hello World"

    def test_paragraphs_visible(self):
        doc = parse_html(render_page(PageSpec(title="t", paragraphs=["alpha beta"])))
        assert "alpha beta" in doc.text

    def test_links_round_trip(self):
        spec = PageSpec(title="t", links=[("Home", "/"), ("Other", "http://b.example/x")])
        doc = parse_html(render_page(spec))
        assert [(a.label, a.href) for a in doc.anchors] == [
            ("Home", "/"),
            ("Other", "http://b.example/x"),
        ]

    def test_emphasized_becomes_relinfon(self):
        doc = parse_html(render_page(PageSpec(title="t", emphasized=[("b", "notice")])))
        assert ("b", "notice") in [(r.delimiter, r.text) for r in doc.relinfons]

    def test_ruled_becomes_hr_relinfon(self):
        doc = parse_html(render_page(PageSpec(title="t", ruled=["CONVENER X"])))
        hr = [r.text for r in doc.relinfons if r.delimiter == "hr"]
        assert hr == ["CONVENER X"]

    def test_multiple_ruled_segments_separate(self):
        doc = parse_html(render_page(PageSpec(title="t", ruled=["one", "two"])))
        assert [r.text for r in doc.relinfons if r.delimiter == "hr"] == ["one", "two"]

    def test_escaping_special_characters(self):
        doc = parse_html(render_page(PageSpec(title="a < b & c")))
        assert doc.title == "a < b & c"

    def test_escaping_in_href(self):
        spec = PageSpec(title="t", links=[("x", 'a"b.html')])
        doc = parse_html(render_page(spec))
        assert doc.anchors[0].href == 'a"b.html'

    def test_padding_grows_document(self):
        small = render_page(PageSpec(title="t"))
        big = render_page(PageSpec(title="t", padding=200))
        assert len(big) > len(small) + 800

    def test_word_estimate_counts_components(self):
        spec = PageSpec(
            title="two words",
            paragraphs=["three word para"],
            links=[("one", "/x")],
            emphasized=[("b", "bold bit")],
            ruled=["ruled text"],
            padding=5,
        )
        assert spec.word_estimate() == 2 + 3 + 1 + 2 + 2 + 5
