"""Deeper protocol robustness: concurrency, interleaving, mixed features.

These tests exercise combinations the individual feature tests don't:
multi-threaded servers under the full protocol, cancellation in retrace
mode (the paper's termination criticism), many interleaved queries sharing
one deployment, and extensions composed together.
"""

from __future__ import annotations

import pytest

from repro import EngineConfig, NetworkConfig, QueryStatus, WebDisEngine
from repro.web import SyntheticWebConfig, build_synthetic_web
from repro.web.campus import CAMPUS_QUERY_DISQL, EXPECTED_CONVENER_ROWS, build_campus_web
from repro.web.synthetic import synthetic_start_url

CONFIG = SyntheticWebConfig(sites=8, pages_per_site=5, seed=111)
QUERY = (
    'select d.url from document d such that "{start}" (L|G)*3 d\n'
    'where d.title contains "topic"'
)


def _disql():
    return QUERY.format(start=synthetic_start_url(CONFIG))


class TestMultiThreadedServers:
    @pytest.mark.parametrize("threads", [2, 4])
    def test_same_answers_as_sequential(self, threads):
        web = build_synthetic_web(CONFIG)
        sequential = WebDisEngine(web).run_query(_disql())
        threaded_engine = WebDisEngine(web, config=EngineConfig(server_threads=threads))
        threaded = threaded_engine.run_query(_disql())
        assert threaded.status is QueryStatus.COMPLETE
        assert {r.values for r in threaded.unique_rows()} == {
            r.values for r in sequential.unique_rows()
        }

    def test_completion_exact_with_threads(self):
        engine = WebDisEngine(
            build_synthetic_web(CONFIG), config=EngineConfig(server_threads=4)
        )
        handle = engine.run_query(_disql())
        handle.cht.check_consistency()
        assert handle.cht.imbalance() == 0

    def test_threads_never_slower(self):
        web = build_synthetic_web(CONFIG)
        t1 = WebDisEngine(web).run_query(_disql()).response_time()
        t4_engine = WebDisEngine(web, config=EngineConfig(server_threads=4))
        t4 = t4_engine.run_query(_disql()).response_time()
        assert t4 <= t1 + 1e-9


class TestRetraceTermination:
    def test_cancel_under_retrace_leaves_orphans(self):
        """The §2.6 drawback, observable: under path retrace the processing
        server only knows its first backward hop succeeded, so cancellation
        does not reach it and clones keep being forwarded after cancel."""
        web = build_synthetic_web(CONFIG)
        net = NetworkConfig(latency_base=0.2)

        direct = WebDisEngine(web, net_config=net)
        h1 = direct.submit_disql(_disql())
        direct.cancel(h1, at=0.5)
        direct.run()
        direct_after = direct.stats.clones_forwarded

        retrace = WebDisEngine(
            web, net_config=net, config=EngineConfig(direct_result_return=False)
        )
        h2 = retrace.submit_disql(_disql())
        retrace.cancel(h2, at=0.5)
        retrace.run()
        # Retrace keeps forwarding: at least as many clones moved, and the
        # relay channel kept carrying dead results.
        assert retrace.stats.clones_forwarded >= direct_after
        assert retrace.stats.messages_by_kind["relay"] > 0
        # Both modes still quiesce (the web is finite) — no infinite chase.
        assert retrace.clock.pending() == 0


class TestInterleavedQueries:
    def test_ten_queries_share_one_deployment(self):
        engine = WebDisEngine(build_synthetic_web(CONFIG))
        handles = [engine.submit_disql(_disql()) for __ in range(10)]
        engine.run()
        assert all(h.status is QueryStatus.COMPLETE for h in handles)
        reference = {r.values for r in handles[0].unique_rows()}
        for handle in handles[1:]:
            assert {r.values for r in handle.unique_rows()} == reference

    def test_distinct_qids(self):
        engine = WebDisEngine(build_synthetic_web(CONFIG))
        handles = [engine.submit_disql(_disql()) for __ in range(3)]
        engine.run()
        qids = {str(h.qid) for h in handles}
        assert len(qids) == 3

    def test_log_tables_isolate_queries(self):
        """Two identical queries must both get full answers — the log table
        keys on the query id, so the second is not 'duplicate' of the first."""
        engine = WebDisEngine(build_synthetic_web(CONFIG))
        first = engine.submit_disql(_disql())
        engine.run()
        second = engine.submit_disql(_disql())
        engine.run()
        assert {r.values for r in first.unique_rows()} == {
            r.values for r in second.unique_rows()
        }

    def test_cancel_one_of_two(self):
        engine = WebDisEngine(
            build_synthetic_web(CONFIG), net_config=NetworkConfig(latency_base=0.1)
        )
        keep = engine.submit_disql(_disql())
        drop = engine.submit_disql(_disql())
        engine.cancel(drop, at=0.15)
        engine.run()
        assert keep.status is QueryStatus.COMPLETE
        assert drop.status is QueryStatus.CANCELLED
        assert len(keep.unique_rows()) > 0


class TestFeatureComposition:
    def test_campus_with_everything_enabled(self, campus_web):
        """All extensions on at once must still reproduce Figure 8."""
        engine = WebDisEngine(
            campus_web,
            config=EngineConfig(
                server_threads=4,
                db_cache_size=8,
                log_subsumption="language",
            ),
        )
        handle = engine.run_query(CAMPUS_QUERY_DISQL)
        assert handle.status is QueryStatus.COMPLETE
        assert {r.values for r in handle.unique_rows("q2")} == set(
            EXPECTED_CONVENER_ROWS
        )

    def test_fuzzy_plus_sitewide(self):
        from repro.web.builders import WebBuilder

        builder = WebBuilder()
        site = builder.site("lab.example")
        site.page(
            "/",
            title="lab projects",
            links=[("contact", "/contact.html")],
        )
        site.page("/contact.html", title="contackt page")  # typo'd title
        web = builder.build()
        engine = WebDisEngine(web)
        handle = engine.run_query(
            "select d.url, e.url\n"
            'from document d such that "http://lab.example/" N d,\n'
            "     document e such that sitewide\n"
            'where d.title contains "projects" and e.title contains~1 "contact"'
        )
        assert handle.status is QueryStatus.COMPLETE
        assert len(handle.unique_rows()) == 1
