"""Tests for the relational engine: schemas, tables, expressions, queries."""

from __future__ import annotations

import pytest

from repro.errors import DisqlSemanticsError, EvaluationError, SchemaError
from repro.html.generator import PageSpec, render_page
from repro.model.database import build_node_database
from repro.relational import (
    And,
    Attr,
    Compare,
    Contains,
    Literal,
    NodeQuery,
    Not,
    Or,
    Schema,
    Table,
    TableDecl,
    evaluate,
    evaluate_node_query,
)
from repro.relational.expr import TRUE, attrs_referenced, conjoin, conjuncts
from repro.urlutils import parse_url


class TestSchema:
    def test_position(self):
        schema = Schema("t", ("a", "b", "c"))
        assert schema.position("b") == 1

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            Schema("t", ("a",)).position("z")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema("t", ("a", "a"))

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema("t", ())

    def test_contains(self):
        assert "a" in Schema("t", ("a",))
        assert "z" not in Schema("t", ("a",))

    def test_equality_and_hash(self):
        assert Schema("t", ("a",)) == Schema("t", ("a",))
        assert hash(Schema("t", ("a",))) == hash(Schema("t", ("a",)))


class TestTable:
    SCHEMA = Schema("t", ("x", "y"))

    def test_insert_and_len(self):
        table = Table(self.SCHEMA, [(1, 2), (3, 4)])
        assert len(table) == 2

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            Table(self.SCHEMA).insert((1,))

    def test_column(self):
        table = Table(self.SCHEMA, [(1, "a"), (2, "b")])
        assert table.column("y") == ["a", "b"]

    def test_rows_in_insertion_order(self):
        table = Table(self.SCHEMA, [(2, 0), (1, 0)])
        assert [r[0] for r in table.rows()] == [2, 1]


BINDINGS = {"d": {"title": "Laboratories", "length": 120}, "a": {"ltype": "G"}}


class TestExpressions:
    def test_literal(self):
        assert evaluate(Literal(5), {}) == 5

    def test_attr(self):
        assert evaluate(Attr("d", "title"), BINDINGS) == "Laboratories"

    def test_unknown_alias(self):
        with pytest.raises(EvaluationError):
            evaluate(Attr("z", "title"), BINDINGS)

    def test_unknown_attribute(self):
        with pytest.raises(EvaluationError):
            evaluate(Attr("d", "nope"), BINDINGS)

    @pytest.mark.parametrize(
        "op,right,expected",
        [("=", "G", True), ("!=", "G", False), ("=", "L", False)],
    )
    def test_compare_strings(self, op, right, expected):
        expr = Compare(op, Attr("a", "ltype"), Literal(right))
        assert evaluate(expr, BINDINGS) is expected

    @pytest.mark.parametrize(
        "op,right,expected",
        [("<", 200, True), (">", 200, False), ("<=", 120, True), (">=", 121, False)],
    )
    def test_compare_numbers(self, op, right, expected):
        expr = Compare(op, Attr("d", "length"), Literal(right))
        assert evaluate(expr, BINDINGS) is expected

    def test_compare_number_with_numeric_string(self):
        expr = Compare(">", Attr("d", "length"), Literal("100"))
        assert evaluate(expr, BINDINGS) is True

    def test_invalid_operator_rejected_at_construction(self):
        with pytest.raises(EvaluationError):
            Compare("==", Literal(1), Literal(1))

    def test_contains_case_insensitive(self):
        expr = Contains(Attr("d", "title"), Literal("LAB"))
        assert evaluate(expr, BINDINGS) is True

    def test_contains_paper_example(self):
        # Figure 8: "CONVENER Jayant Haritsa" matches contains "convener".
        expr = Contains(Literal("CONVENER Jayant Haritsa"), Literal("convener"))
        assert evaluate(expr, {}) is True

    def test_contains_negative(self):
        expr = Contains(Attr("d", "title"), Literal("zzz"))
        assert evaluate(expr, BINDINGS) is False

    def test_contains_requires_strings(self):
        with pytest.raises(EvaluationError):
            evaluate(Contains(Attr("d", "length"), Literal("1")), BINDINGS)

    def test_and_or_not(self):
        t = Compare("=", Attr("a", "ltype"), Literal("G"))
        f = Compare("=", Attr("a", "ltype"), Literal("L"))
        assert evaluate(And(t, t), BINDINGS) is True
        assert evaluate(And(t, f), BINDINGS) is False
        assert evaluate(Or(f, t), BINDINGS) is True
        assert evaluate(Not(f), BINDINGS) is True

    def test_str_rendering(self):
        expr = And(Contains(Attr("r", "text"), Literal("x")), Literal(True))
        assert "contains" in str(expr)

    def test_attrs_referenced(self):
        expr = And(
            Compare("=", Attr("a", "x"), Attr("b", "y")),
            Not(Contains(Attr("c", "z"), Literal("s"))),
        )
        assert attrs_referenced(expr) == {Attr("a", "x"), Attr("b", "y"), Attr("c", "z")}

    def test_conjuncts_flatten(self):
        a, b, c = Literal(1), Literal(2), Literal(3)
        assert conjuncts(And(And(a, b), c)) == [a, b, c]

    def test_conjoin_empty_is_true(self):
        assert conjoin([]) == TRUE


def _campus_people_db():
    spec = PageSpec(
        title="Database Systems Lab People",
        ruled=["CONVENER Jayant Haritsa"],
        links=[("home", "/"), ("IISc", "http://www.iisc.ernet.in/")],
    )
    url = parse_url("http://dsl.serc.iisc.ernet.in/people")
    return build_node_database(url, render_page(spec))


class TestNodeQuery:
    def test_select_from_document(self):
        query = NodeQuery(
            select=(Attr("d", "url"), Attr("d", "title")),
            tables=(TableDecl("document", "d"),),
            label="q1",
        )
        rows = evaluate_node_query(query, _campus_people_db())
        assert len(rows) == 1
        assert rows[0].values[1] == "Database Systems Lab People"

    def test_where_filters(self):
        query = NodeQuery(
            select=(Attr("a", "href"),),
            tables=(TableDecl("anchor", "a"),),
            where=Compare("=", Attr("a", "ltype"), Literal("G")),
        )
        rows = evaluate_node_query(query, _campus_people_db())
        assert [r.values[0] for r in rows] == ["http://www.iisc.ernet.in/"]

    def test_cross_product_join(self):
        query = NodeQuery(
            select=(Attr("d", "url"), Attr("r", "text")),
            tables=(TableDecl("document", "d"), TableDecl("relinfon", "r")),
            where=And(
                Compare("=", Attr("r", "delimiter"), Literal("hr")),
                Contains(Attr("r", "text"), Literal("convener")),
            ),
        )
        rows = evaluate_node_query(query, _campus_people_db())
        assert len(rows) == 1
        assert rows[0].values[1] == "CONVENER Jayant Haritsa"

    def test_failed_query_returns_empty(self):
        query = NodeQuery(
            select=(Attr("d", "url"),),
            tables=(TableDecl("document", "d"),),
            where=Contains(Attr("d", "title"), Literal("no-such-word")),
        )
        assert evaluate_node_query(query, _campus_people_db()) == []

    def test_header_qualified_names(self):
        query = NodeQuery(
            select=(Attr("d", "url"),), tables=(TableDecl("document", "d"),)
        )
        assert query.header == ("d.url",)

    def test_result_row_mapping(self):
        query = NodeQuery(
            select=(Attr("d", "title"),), tables=(TableDecl("document", "d"),)
        )
        (row,) = evaluate_node_query(query, _campus_people_db())
        assert row.as_mapping() == {"d.title": "Database Systems Lab People"}

    def test_empty_select_rejected(self):
        with pytest.raises(DisqlSemanticsError):
            NodeQuery(select=(), tables=(TableDecl("document", "d"),))

    def test_no_tables_rejected(self):
        with pytest.raises(DisqlSemanticsError):
            NodeQuery(select=(Attr("d", "url"),), tables=())

    def test_duplicate_alias_rejected(self):
        with pytest.raises(DisqlSemanticsError):
            NodeQuery(
                select=(Attr("d", "url"),),
                tables=(TableDecl("document", "d"), TableDecl("anchor", "d")),
            )

    def test_undeclared_select_alias_rejected(self):
        with pytest.raises(DisqlSemanticsError):
            NodeQuery(select=(Attr("z", "url"),), tables=(TableDecl("document", "d"),))

    def test_undeclared_where_alias_rejected(self):
        with pytest.raises(DisqlSemanticsError):
            NodeQuery(
                select=(Attr("d", "url"),),
                tables=(TableDecl("document", "d"),),
                where=Compare("=", Attr("z", "x"), Literal(1)),
            )

    def test_unknown_relation_rejected(self):
        with pytest.raises(DisqlSemanticsError):
            TableDecl("bogus", "b")

    def test_str_round_readable(self):
        query = NodeQuery(
            select=(Attr("d", "url"),),
            tables=(TableDecl("document", "d"),),
            where=Contains(Attr("d", "title"), Literal("lab")),
        )
        text = str(query)
        assert text.startswith("select d.url from document d where")
