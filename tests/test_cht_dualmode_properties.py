"""CHT dual-mode property test: arbitrary interleavings stay consistent.

Hypothesis builds a population of accounting "instances" — legacy signed
pairs (in either order: addition-first or the out-of-order
retirement-first), stamped add/retire with duplicate reports in any
permutation, supersession chains and abandonments — then merges their
per-instance event sequences into one random interleaving.  After every
single operation the O(1) :meth:`check_consistency` must hold; at the end
the O(n) :meth:`audit` must pass, the table must report completion, no
stamped instance may have been effectively retired twice, and every
transient negative legacy count must have settled back to zero.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.cht import CurrentHostsTable, RetireResult
from repro.core.messages import ChtEntry
from repro.core.state import QueryState
from repro.pre import parse_pre
from repro.urlutils import parse_url

ENTRIES = [
    ChtEntry(parse_url(f"http://s{i}.example/"), QueryState(1, parse_pre("L")))
    for i in range(4)
]

#: Effective retirements — at most one per (dispatch_id, node) key, ever.
_EFFECTIVE = {RetireResult.RETIRED, RetireResult.EARLY}


@st.composite
def instance_plans(draw):
    """Per-instance event sequences whose internal order must be respected."""
    plans = []
    n = draw(st.integers(1, 7))
    for i in range(n):
        entry = draw(st.sampled_from(ENTRIES))
        kind = draw(
            st.sampled_from(
                ["legacy", "legacy-early", "stamped", "superseded", "abandoned"]
            )
        )
        did = f"d{i}@{entry.node.host}"
        if kind == "legacy":
            plans.append([("ladd", entry), ("ldel", entry)])
        elif kind == "legacy-early":
            # Retirement outruns the addition: transient negative count.
            plans.append([("ldel", entry), ("ladd", entry)])
        elif kind == "stamped":
            # One announcement plus 1-3 reports, in ANY order: whichever
            # report lands first is the retirement, the rest are duplicates;
            # a report before the announcement is an early retirement.
            events = [("add", did, entry)] + [
                ("ret", did, entry) for __ in range(draw(st.integers(1, 3)))
            ]
            plans.append(draw(st.permutations(events)))
        elif kind == "superseded":
            new_did = f"{did}'"
            plans.append(
                [
                    ("add", did, entry),
                    ("sup", did, new_did, entry),
                    ("ret", did, entry),  # late report for the old dispatch
                    ("ret", new_did, entry),
                ]
            )
        else:  # abandoned
            plans.append(
                [
                    ("add", did, entry),
                    ("aband", did, entry),
                    ("ret", did, entry),  # report after the write-off
                ]
            )
    return plans


@st.composite
def interleavings(draw):
    """A random merge of the instance plans, preserving per-plan order."""
    plans = [list(plan) for plan in draw(instance_plans())]
    merged = []
    while plans:
        index = draw(st.integers(0, len(plans) - 1))
        merged.append(plans[index].pop(0))
        if not plans[index]:
            del plans[index]
    return merged


def _apply(cht: CurrentHostsTable, event, time: float):
    op = event[0]
    if op == "ladd":
        cht.add(event[1], time)
    elif op == "ldel":
        cht.mark_deleted(event[1], time)
        return RetireResult.LEGACY, None
    elif op == "add":
        cht.add(event[2], time, dispatch_id=event[1])
    elif op == "ret":
        return cht.mark_deleted(event[2], time, dispatch_id=event[1]), (
            event[1],
            event[2].node,
        )
    elif op == "sup":
        assert cht.supersede(event[1], event[3].node, event[2], new_epoch=1, time=time)
    elif op == "aband":
        assert cht.abandon(event[1], event[2].node, "test write-off", time=time)
    return None, None


class TestInterleavings:
    @settings(max_examples=150, deadline=None)
    @given(events=interleavings())
    def test_any_interleaving_stays_consistent(self, events):
        cht = CurrentHostsTable()
        effective: dict[tuple, int] = {}
        for step, event in enumerate(events):
            result, key = _apply(cht, event, float(step))
            if result in _EFFECTIVE:
                effective[key] = effective.get(key, 0) + 1
            # The O(1) balance invariant holds after EVERY operation.
            cht.check_consistency()
        # Never double-retire: each stamped key resolved at most once.
        assert all(count == 1 for count in effective.values())
        # Quiescence: every instance resolved, every legacy count settled.
        cht.audit()
        assert cht.all_deleted()
        assert cht.imbalance() == 0
        assert cht.negative_legacy_entries() == []
        assert cht.pending_instances() == []

    @settings(max_examples=150, deadline=None)
    @given(events=interleavings())
    def test_duplicate_reports_are_absorbed_not_counted(self, events):
        cht = CurrentHostsTable()
        retire_attempts = 0
        effective = 0
        for step, event in enumerate(events):
            if event[0] == "ret":
                retire_attempts += 1
            result, __ = _apply(cht, event, float(step))
            if result in _EFFECTIVE:
                effective += 1
        # Every stamped retirement attempt is either the one effective
        # resolution of its instance or explicitly absorbed — none leak
        # into the deletion totals twice.
        absorbed = cht.duplicates_absorbed + cht.stale_absorbed
        assert retire_attempts == effective + absorbed


class TestNegativeLegacyAccessor:
    def test_transient_negative_is_visible_then_settles(self):
        cht = CurrentHostsTable()
        entry = ENTRIES[0]
        cht.mark_deleted(entry, 1.0)  # deletion outruns the addition
        assert cht.negative_legacy_entries() == [(entry, -1)]
        assert not cht.all_deleted()
        cht.check_consistency()  # balance still holds mid-flight
        cht.add(entry, 2.0)
        assert cht.negative_legacy_entries() == []
        assert cht.all_deleted()

    def test_settled_negative_is_reported(self):
        # The unfenced-recovery bug signature: two unstamped reports retire
        # an entry only one addition announced.
        cht = CurrentHostsTable()
        entry = ENTRIES[1]
        cht.add(entry, 0.0)
        cht.mark_deleted(entry, 1.0)
        cht.mark_deleted(entry, 2.0)
        assert cht.negative_legacy_entries() == [(entry, -1)]
        cht.check_consistency()  # the O(1) balance alone cannot see it
        assert not cht.all_deleted()
