"""Tests for language-preserving PRE simplification."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.pre import parse_pre, pre_size
from repro.pre.automaton import language_equivalent
from repro.pre.optimize import optimize_pre


class TestRules:
    @pytest.mark.parametrize(
        "source,expected",
        [
            ("N|L*", "L*"),            # ε subsumed by the star
            ("G|(G|L)", "G|L"),        # branch subsumed by sibling
            ("L*1|L*3", "L*3"),        # narrower bound subsumed
            ("(L*2)*3", "L*6"),        # nested bounds multiply
            ("(L*)*4", "L*"),          # unbounded absorbs
            ("(L*2)*", "L*"),
            ("(N|L)*3", "L*3"),        # ε-stripping inside repetition
            ("G.(N|L*)", "G.L*"),
            ("L|L", "L"),
            ("G", "G"),                # fixpoint on already-simple PREs
            ("N", "N"),
        ],
    )
    def test_simplifications(self, source, expected):
        assert optimize_pre(parse_pre(source)) == parse_pre(expected)

    def test_unrelated_branches_kept(self):
        pre = parse_pre("G.L|L.G")
        assert optimize_pre(pre) == pre

    def test_size_never_grows(self):
        for text in ("N|G.(L*4)", "G|(G|L)", "(L*2)*3", "G.(G|L)", "L*"):
            pre = parse_pre(text)
            assert pre_size(optimize_pre(pre)) <= pre_size(pre)

    def test_reverse_subsumption_order(self):
        # The wider branch arrives second: it must replace the narrower one.
        assert optimize_pre(parse_pre("L*1|L*")) == parse_pre("L*")


_pres = st.sampled_from(
    [
        parse_pre(t)
        for t in (
            "N", "G", "L", "I", "G|L", "N|G", "G.L", "L*2", "L*", "G.(L*1)",
            "N|G.L*2", "(G|L)*2", "L.L", "(L*2)*2", "(N|L)*3", "G|(G|L)",
            "L*1|L*4", "(L*)*2", "I.(N|G)", "(G.L)|(G.L)",
        )
    ]
)


@given(_pres)
@settings(max_examples=100, deadline=None)
def test_optimization_preserves_language(pre):
    assert language_equivalent(optimize_pre(pre), pre)


@given(_pres)
@settings(max_examples=100, deadline=None)
def test_optimization_idempotent(pre):
    once = optimize_pre(pre)
    assert optimize_pre(once) == once
