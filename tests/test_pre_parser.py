"""Tests for PRE concrete syntax."""

from __future__ import annotations

import pytest

from repro.errors import PreSemanticsError, PreSyntaxError
from repro.model.relations import LinkType
from repro.pre import Alt, Atom, Concat, Empty, Repeat, parse_pre
from repro.pre.ast import EMPTY, alt, concat, repeat

L = Atom(LinkType.LOCAL)
G = Atom(LinkType.GLOBAL)
I = Atom(LinkType.INTERIOR)


class TestAtoms:
    @pytest.mark.parametrize("symbol,expected", [("L", L), ("G", G), ("I", I)])
    def test_single_symbol(self, symbol, expected):
        assert parse_pre(symbol) == expected

    def test_case_insensitive(self):
        assert parse_pre("l") == L

    def test_null_is_empty(self):
        assert parse_pre("N") == EMPTY

    def test_null_atom_rejected_in_ast(self):
        with pytest.raises(PreSemanticsError):
            Atom(LinkType.NULL)


class TestOperators:
    def test_concat_dot(self):
        assert parse_pre("G.L") == Concat((G, L))

    def test_concat_middle_dot(self):
        assert parse_pre("G·L") == Concat((G, L))

    def test_concat_juxtaposition(self):
        assert parse_pre("GL") == Concat((G, L))

    def test_alternation(self):
        assert parse_pre("G|L") == Alt((G, L))

    def test_alternation_dedupes(self):
        assert parse_pre("G|G") == G

    def test_bounded_repeat(self):
        assert parse_pre("L*4") == Repeat(L, 4)

    def test_unbounded_repeat(self):
        assert parse_pre("L*") == Repeat(L, None)

    def test_repeat_binds_tighter_than_concat(self):
        assert parse_pre("G.L*2") == Concat((G, Repeat(L, 2)))

    def test_concat_binds_tighter_than_alt(self):
        assert parse_pre("N|G.L") == Alt((EMPTY, Concat((G, L))))

    def test_parentheses(self):
        assert parse_pre("G.(G|L)") == Concat((G, Alt((G, L))))

    def test_paper_example(self):
        pre = parse_pre("N | G.(L*4)")
        assert pre == Alt((EMPTY, Concat((G, Repeat(L, 4)))))

    def test_whitespace_insensitive(self):
        assert parse_pre(" G . ( G | L ) ") == parse_pre("G.(G|L)")

    def test_repeat_of_group(self):
        assert parse_pre("(G|L)*3") == Repeat(Alt((G, L)), 3)

    def test_nested_parens(self):
        assert parse_pre("((G))") == G


class TestErrors:
    @pytest.mark.parametrize(
        "text", ["", "  ", "X", "G.", "|G", "(G", "G)", "*", "L*0"]
    )
    def test_malformed(self, text):
        with pytest.raises(PreSyntaxError):
            parse_pre(text)

    def test_double_star_is_nested_repeat(self):
        # (G*)* is legal and denotes the same language as G*.
        assert parse_pre("G**") == Repeat(Repeat(G, None), None)

    def test_trailing_junk(self):
        with pytest.raises(PreSyntaxError):
            parse_pre("G L ;")


class TestSmartConstructors:
    def test_concat_unit(self):
        assert concat([EMPTY, G, EMPTY]) == G

    def test_concat_flattens(self):
        assert concat([Concat((G, L)), G]) == Concat((G, L, G))

    def test_concat_empty_sequence(self):
        assert concat([]) == EMPTY

    def test_alt_single(self):
        assert alt([G]) == G

    def test_repeat_zero_is_empty(self):
        assert repeat(G, 0) == EMPTY

    def test_repeat_of_empty_is_empty(self):
        assert repeat(EMPTY, 5) == EMPTY

    def test_rewrite_shape_not_collapsed(self):
        # A·A*(m-1) must stay distinct from A*m (Section 3.1.1 requirement).
        rewritten = concat([L, repeat(L, 1)])
        assert rewritten != repeat(L, 2)


class TestRendering:
    @pytest.mark.parametrize(
        "text", ["G", "N", "G.L", "G|L", "L*4", "L*", "G.(G|L)", "N|G.L*4", "(G|L)*2"]
    )
    def test_str_round_trips(self, text):
        pre = parse_pre(text)
        assert parse_pre(str(pre)) == pre
