"""Plain-English PRE descriptions and the CLI explain command."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.pre import parse_pre
from repro.pre.describe import describe_pre


class TestDescribePre:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("N", "the document itself"),
            ("G", "a global link"),
            ("L", "a local link"),
            ("I", "an interior link".replace("an ", "a ")),  # uniform article
            ("G.L", "a global link, then a local link"),
            ("G|L", "either a global link or a local link"),
            ("L*", "any number of local links"),
            ("L*1", "up to 1 local link"),
            ("L*4", "up to 4 local links"),
            ("G.(L*1)", "a global link, then up to 1 local link"),
        ],
    )
    def test_descriptions(self, text, expected):
        assert describe_pre(parse_pre(text)) == expected

    def test_paper_query_reads_naturally(self):
        pre = parse_pre("N|G.(L*4)")
        description = describe_pre(pre)
        assert "document itself" in description
        assert "global link" in description
        assert "up to 4 local links" in description

    def test_three_way_alternation(self):
        assert describe_pre(parse_pre("I|L|G")).startswith("one of:")

    def test_repeat_of_group(self):
        description = describe_pre(parse_pre("(G|L)*2"))
        assert description.startswith("up to 2 repetitions of (")


class TestCliExplain:
    def test_explain_inline(self, capsys):
        code = main(
            [
                "explain",
                "--disql",
                'select d.url from document d such that "http://a.example/" G.(L*1) d',
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert out.startswith("Q = http://a.example/")
        assert "traverse a global link, then up to 1 local link" in out

    def test_explain_from_file(self, tmp_path, capsys):
        path = tmp_path / "q.disql"
        path.write_text(
            'select d.url from document d such that "http://a.example/" L* d'
        )
        code = main(["explain", "--file", str(path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "any number of local links" in out

    def test_explain_invalid_query(self, capsys):
        code = main(["explain", "--disql", "select nonsense"])
        assert code == 2

    def test_explain_requires_source(self):
        with pytest.raises(SystemExit):
            main(["explain"])
