"""Multi-tenant robustness: fair scheduling, admission control, shedding.

The scheduler seam (``repro.core.scheduler``) replaces the §4.4 single
FIFO with per-query run-queues; these tests pin down the policy mechanics
(RR order, ceilings, victim choice), the transport-level admission path
(``SendOutcome.OVERLOADED`` — transient, retried with backoff, distinct
from the never-retried §2.8 REFUSED), graceful load shedding (saturated
server → victim query degrades to PARTIAL with per-node attribution),
crash queue-loss accounting, and the headline isolation property: N
interleaved queries each compute exactly what they compute solo.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import EngineConfig, QueryStatus, WebDisEngine
from repro.core.messages import Disposition
from repro.core.scheduler import FairScheduler, SequentialScheduler, make_scheduler
from repro.core.supervisor import QuerySupervisor, RecoveryPolicy
from repro.net import Network, SendOutcome, SimClock, TrafficStats
from repro.net.reliable import ReliableChannel, RetryPolicy
from repro.wire import decode_message, encode_message
from repro.testing.invariants import check_handle, check_queue_ceilings
from repro.web import SyntheticWebConfig, build_synthetic_web


def _rows(handle):
    return frozenset(
        (label, row.header, row.values) for label, row, __ in handle.results
    )


class _FakeQid:
    """Orderable stand-in for QueryId in scheduler unit tests."""

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other) -> bool:
        return isinstance(other, _FakeQid) and self.name == other.name


class _FakeClone:
    def __init__(self, qid, tag: int) -> None:
        self.query = type("Q", (), {"qid": qid})()
        self.tag = tag


def _clones(qid, count: int, start: int = 0):
    return [_FakeClone(qid, start + i) for i in range(count)]


# -- scheduler policy mechanics -----------------------------------------------


class TestFairScheduler:
    def test_round_robin_interleaves_queries(self):
        scheduler = FairScheduler(None, None)
        a, b = _FakeQid("a"), _FakeQid("b")
        for clone in _clones(a, 3) + _clones(b, 2):
            assert scheduler.push(clone)
        order = [scheduler.pop().query.qid for __ in range(5)]
        assert order == [a, b, a, b, a]
        assert scheduler.pop() is None
        assert scheduler.total == 0

    def test_single_query_degenerates_to_fifo(self):
        fair, fifo = FairScheduler(None, None), SequentialScheduler(None, None)
        q = _FakeQid("solo")
        for clone in _clones(q, 5):
            fair.push(clone)
            fifo.push(clone)
        assert [fair.pop().tag for __ in range(5)] == [
            fifo.pop().tag for __ in range(5)
        ]

    def test_per_query_ceiling_refuses_and_tracks_high_water(self):
        scheduler = FairScheduler(per_query_limit=2, server_limit=None)
        q = _FakeQid("q")
        pushed = [scheduler.push(clone) for clone in _clones(q, 4)]
        assert pushed == [True, True, False, False]
        assert scheduler.max_query_depth_seen == 2
        assert not scheduler.would_admit({q: 1})
        other = _FakeQid("other")
        assert scheduler.would_admit({other: 2})
        assert not scheduler.would_admit({other: 3})

    def test_server_ceiling_spans_queries(self):
        scheduler = FairScheduler(per_query_limit=None, server_limit=3)
        a, b = _FakeQid("a"), _FakeQid("b")
        assert all(scheduler.push(clone) for clone in _clones(a, 2))
        assert scheduler.push(_FakeClone(b, 0))
        assert not scheduler.push(_FakeClone(b, 1))
        assert not scheduler.would_admit({a: 1})

    def test_victim_is_deepest_queue(self):
        scheduler = FairScheduler(None, None)
        a, b = _FakeQid("a"), _FakeQid("b")
        for clone in _clones(a, 1) + _clones(b, 3):
            scheduler.push(clone)
        assert scheduler.victim() == b
        dropped = scheduler.drop_query(b)
        assert [clone.tag for clone in dropped] == [0, 1, 2]
        assert scheduler.depths() == {a: 1}
        # The ring no longer serves the dropped query.
        assert scheduler.pop().query.qid == a
        assert scheduler.pop() is None

    def test_take_same_query_respects_budget_and_ring(self):
        scheduler = FairScheduler(None, None)
        a, b = _FakeQid("a"), _FakeQid("b")
        for clone in _clones(a, 4) + _clones(b, 1):
            scheduler.push(clone)
        taken = scheduler.take_same_query(a, 2)
        assert [clone.tag for clone in taken] == [0, 1]
        assert scheduler.depth(a) == 2
        # Draining the rest removes the query from the ring entirely.
        assert len(scheduler.take_same_query(a, None)) == 2
        assert scheduler.pop().query.qid == b
        assert scheduler.pop() is None
        assert scheduler.take_same_query(a, 0) == []

    def test_drain_returns_everything_in_ring_order(self):
        scheduler = FairScheduler(None, None)
        a, b = _FakeQid("a"), _FakeQid("b")
        for clone in _clones(a, 2) + _clones(b, 1):
            scheduler.push(clone)
        drained = scheduler.drain()
        assert len(drained) == 3
        assert scheduler.total == 0 and scheduler.depths() == {}

    def test_make_scheduler_dispatch(self):
        assert isinstance(
            make_scheduler(EngineConfig(scheduler="fair")), FairScheduler
        )
        assert isinstance(
            make_scheduler(EngineConfig(scheduler="fifo")), SequentialScheduler
        )


class TestSequentialScheduler:
    def test_fifo_order_across_queries(self):
        scheduler = SequentialScheduler(None, None)
        a, b = _FakeQid("a"), _FakeQid("b")
        scheduler.push(_FakeClone(a, 0))
        scheduler.push(_FakeClone(b, 1))
        scheduler.push(_FakeClone(a, 2))
        assert [scheduler.pop().tag for __ in range(3)] == [0, 1, 2]

    def test_take_same_query_skips_other_tenants(self):
        scheduler = SequentialScheduler(None, None)
        a, b = _FakeQid("a"), _FakeQid("b")
        scheduler.push(_FakeClone(a, 0))
        scheduler.push(_FakeClone(b, 1))
        scheduler.push(_FakeClone(a, 2))
        assert [clone.tag for clone in scheduler.take_same_query(a, None)] == [0, 2]
        assert scheduler.pop().tag == 1


# -- OVERLOADED: transient admission refusal with backoff ----------------------


class _Blob:
    kind = "blob"

    def size_bytes(self) -> int:
        return 8


class TestOverloadedOutcome:
    def _net(self):
        clock = SimClock()
        network = Network(clock, TrafficStats())
        network.register_site("a.example")
        network.register_site("b.example")
        return clock, network

    def test_admission_probe_refusal_is_transient_not_refused(self):
        clock, network = self._net()
        network.listen("b.example", 80, lambda s, p: None)
        network.set_admission("b.example", 80, lambda src, payload: False)
        outcome = network.send("a.example", "b.example", 80, _Blob())
        assert outcome is SendOutcome.OVERLOADED
        assert outcome.transient
        assert outcome is not SendOutcome.REFUSED
        assert not outcome  # falsy, like every failure outcome
        assert network.stats.overloaded_sends == 1

    def test_reliable_channel_backs_off_and_recovers(self):
        clock, network = self._net()
        received = []
        network.listen("b.example", 80, lambda s, p: received.append(p))
        admitted = {"open": False}
        network.set_admission(
            "b.example", 80, lambda src, payload: admitted["open"]
        )
        channel = ReliableChannel(
            network, clock, RetryPolicy(max_attempts=3, jitter=0.0), name="test"
        )
        finals = []
        first = channel.send("a.example", "b.example", 80, _Blob(), finals.append)
        assert first is SendOutcome.OVERLOADED
        admitted["open"] = True  # pressure clears before the retry fires
        clock.run()
        assert finals == [SendOutcome.DELIVERED]
        assert received
        assert network.stats.sends_deferred == 1

    def test_clearing_the_probe_restores_admission(self):
        clock, network = self._net()
        network.listen("b.example", 80, lambda s, p: None)
        network.set_admission("b.example", 80, lambda src, payload: False)
        assert network.send("a.example", "b.example", 80, _Blob()) \
            is SendOutcome.OVERLOADED
        network.set_admission("b.example", 80, None)
        assert network.send("a.example", "b.example", 80, _Blob()) \
            is SendOutcome.DELIVERED

    def test_overloaded_disposition_round_trips_on_the_wire(self):
        from repro.core.messages import ChtEntry, NodeReport, ResultMessage
        from repro.core.state import QueryState
        from repro.pre.parser import parse_pre
        from repro.urlutils import Url
        from repro.core.webquery import QueryId

        entry = ChtEntry(Url("x.example", "/"), QueryState(0, parse_pre("L*1")))
        message = ResultMessage(
            QueryId("user.example", "user.example", 9000, 1),
            (NodeReport(entry, Disposition.OVERLOADED, dispatch_id="d-1"),),
            kind="cht",
        )
        assert decode_message(encode_message(message)) == message


# -- engine-level overload behaviour ------------------------------------------


def _dense_web():
    return build_synthetic_web(
        SyntheticWebConfig(
            sites=6, pages_per_site=20, local_out_degree=3,
            global_out_degree=2, padding_words=5, seed=917,
        )
    )


HOT_DISQL = (
    'select d.url from document d such that'
    ' "http://site000.example/" (L|G)*2 L* d\n'
    'where d.title contains "topic"'
)
SMALL_DISQL = (
    'select d.url, d.title from document d such that'
    ' "http://site001.example/" L d'
)


class TestLoadShedding:
    def test_saturated_server_sheds_to_partial_with_attribution(self):
        engine = WebDisEngine(
            _dense_web(),
            config=EngineConfig(
                pump_budget=2, server_queue_limit=3, shed_after=0.05,
                node_service_time=0.05,
            ),
            trace=True,
        )
        supervisor = QuerySupervisor(
            engine.client, RecoveryPolicy(quiet_timeout=5.0, deadline=120.0)
        )
        handle = engine.submit_disql(HOT_DISQL)
        supervisor.supervise(handle)
        engine.run()

        assert handle.status is QueryStatus.PARTIAL
        assert handle.partial_reason.startswith("overload-shed")
        assert handle.shed_nodes
        assert engine.stats.clones_shed > 0
        coverage = supervisor.coverage(handle)
        assert coverage.shed_nodes and not coverage.complete
        assert "shed" in coverage.summary()
        # The shed retractions retired their entries: the CHT still balances.
        assert handle.cht.imbalance() == 0
        assert not check_handle(handle, tracer=engine.tracer)

    def test_no_shedding_without_the_knobs(self):
        engine = WebDisEngine(_dense_web(), config=EngineConfig(pump_budget=2))
        handle = engine.run_query(HOT_DISQL)
        assert handle.status is QueryStatus.COMPLETE
        assert engine.stats.clones_shed == 0
        assert engine.stats.queries_shed == 0


class TestQueueIntrospection:
    def test_queue_depths_and_ceiling_audit(self):
        engine = WebDisEngine(
            _dense_web(),
            config=EngineConfig(pump_budget=4, per_query_queue_limit=50),
        )
        handle = engine.run_query(HOT_DISQL)
        assert handle.status is QueryStatus.COMPLETE
        servers = engine.servers.values()
        # Quiesced: every run-queue drained, but backlogs did build up.
        assert all(server.queue_depths() == {} for server in servers)
        assert max(server.peak_query_queue_depth for server in servers) > 1
        assert check_queue_ceilings(engine) == []

    def test_ceiling_audit_flags_breach(self):
        engine = WebDisEngine(
            _dense_web(), config=EngineConfig(per_query_queue_limit=1)
        )
        server = next(iter(engine.servers.values()))
        server._scheduler.max_query_depth_seen = 7  # simulated breach
        violations = check_queue_ceilings(engine)
        assert violations and violations[0].invariant == "queue-ceiling"


class TestCrashQueueLoss:
    def test_crash_counts_drained_clones(self):
        engine = WebDisEngine(
            _dense_web(), config=EngineConfig(pump_budget=2), trace=True
        )
        handle = engine.submit_disql(HOT_DISQL)
        # Step the clock until the flood builds a backlog somewhere, then
        # kill whichever server has the deepest queue.
        deadline, step = 5.0, 0.01
        site = server = None
        while engine.clock.now < deadline:
            engine.run(until=engine.clock.now + step)
            site, server = max(
                engine.servers.items(), key=lambda item: item[1].queue_depth
            )
            if server.queue_depth > 0:
                break
        queued = server.queue_depth
        assert queued > 0, "flood never built a backlog"
        engine.crash_server(site)
        assert engine.stats.clones_lost_in_crash == queued
        assert server.queue_depth == 0 and server.queue_depths() == {}
        del handle


class TestStarvationFreedom:
    def test_small_query_overtakes_hot_flood_under_fair(self):
        completions = {}
        for scheduler in ("fair", "fifo"):
            engine = WebDisEngine(
                _dense_web(),
                config=EngineConfig(scheduler=scheduler, pump_budget=2),
            )
            hot = engine.submit_disql(HOT_DISQL)
            small = engine.submit_disql(SMALL_DISQL)
            engine.run()
            assert hot.status is QueryStatus.COMPLETE
            assert small.status is QueryStatus.COMPLETE
            completions[scheduler] = (small.completion_time, hot.completion_time)
        small_fair, hot_fair = completions["fair"]
        small_fifo, __ = completions["fifo"]
        # The adversarial flood cannot starve the point query: it finishes
        # well before the flood does, and no later than under FIFO.
        assert small_fair < hot_fair
        assert small_fair <= small_fifo


# -- the isolation property ----------------------------------------------------

isolation_webs = st.builds(
    SyntheticWebConfig,
    sites=st.integers(2, 4),
    pages_per_site=st.integers(2, 5),
    local_out_degree=st.integers(1, 2),
    global_out_degree=st.integers(1, 2),
    topic_fraction=st.sampled_from([0.3, 0.7]),
    padding_words=st.just(5),
    seed=st.integers(0, 10_000),
)

isolation_pres = st.lists(
    st.sampled_from(["L*2", "G", "(L|G)*2", "L*", "G.L*1"]),
    min_size=2, max_size=4,
)


@given(isolation_webs, isolation_pres, st.sampled_from([None, 1, 3]))
@settings(max_examples=20, deadline=None)
def test_interleaved_queries_match_solo_runs(config, pres, pump_budget):
    """N tenants interleaved under the fair scheduler each produce exactly
    the rows they produce alone, and all complete — cross-query isolation."""
    web = build_synthetic_web(config)
    texts = [
        (
            "select d.url, d.title\n"
            f'from document d such that'
            f' "http://site{i % config.sites:03d}.example/" {pre} d'
        )
        for i, pre in enumerate(pres)
    ]
    engine_config = EngineConfig(scheduler="fair", pump_budget=pump_budget)

    solo_rows = []
    for text in texts:
        engine = WebDisEngine(web, config=engine_config)
        handle = engine.run_query(text)
        assert handle.status is QueryStatus.COMPLETE
        solo_rows.append(_rows(handle))

    engine = WebDisEngine(web, config=engine_config)
    handles = [engine.submit_disql(text) for text in texts]
    engine.run()
    for handle, expected in zip(handles, solo_rows):
        assert handle.status is QueryStatus.COMPLETE
        assert _rows(handle) == expected
