"""Node-failure injection and graceful degradation/recovery (§7.1)."""

from __future__ import annotations

import pytest

from repro import NetworkConfig, QueryStatus, SendOutcome, WebDisEngine
from repro.baselines import HybridEngine
from repro.errors import SimulationError
from repro.web.builders import WebBuilder


def _star_web():
    """A root linking to three leaf sites, each holding one answer."""
    builder = WebBuilder()
    builder.site("root.example").page(
        "/",
        title="root topic",
        links=[(f"leaf {i}", f"http://leaf{i}.example/") for i in range(3)],
    )
    for i in range(3):
        builder.site(f"leaf{i}.example").page(
            "/", title=f"leaf {i} topic", emphasized=[("b", f"answer {i}")]
        )
    return builder.build()


QUERY = (
    'select d.url, r.text\n'
    'from document d such that "http://root.example/" N|G d,\n'
    '     relinfon r such that r.delimiter = "b"\n'
    'where r.text contains "answer"'
)


class TestSiteDown:
    def test_down_site_refuses(self):
        engine = WebDisEngine(_star_web())
        engine.network.set_site_down("leaf0.example")
        assert not engine.network.is_site_up("leaf0.example")
        from repro.net.network import QUERY_PORT

        ok = engine.network.send("root.example", "leaf0.example", QUERY_PORT, _blob())
        assert not ok
        assert ok is SendOutcome.HOST_DOWN  # transient, unlike an active REFUSED

    def test_crash_unregistered_site_rejected(self):
        engine = WebDisEngine(_star_web())
        with pytest.raises(SimulationError):
            engine.network.set_site_down("nonexistent.example")

    def test_down_then_up(self):
        engine = WebDisEngine(_star_web())
        engine.network.set_site_down("leaf0.example")
        engine.network.set_site_up("leaf0.example")
        assert engine.network.is_site_up("leaf0.example")

    def test_in_flight_delivery_lost_on_crash(self):
        engine = WebDisEngine(_star_web(), net_config=NetworkConfig(latency_base=1.0))
        handle = engine.submit_disql(QUERY)
        # Root receives the query at ~t=1.0 and forwards immediately (the
        # connect to leaf1 succeeds); crash leaf1 at t=1.5 so the forwarded
        # clone is lost in flight (delivery would be at ~t=2.0).
        engine.clock.schedule(1.5, lambda: engine.network.set_site_down("leaf1.example"))
        engine.run()
        # The lost clone's CHT entry stays outstanding: no false completion.
        assert handle.status is QueryStatus.RUNNING
        assert handle.cht.imbalance() > 0


class TestGracefulDegradation:
    def test_query_completes_around_down_site(self):
        """A site that is down *before* forwarding degrades gracefully:
        the forwarder's retraction keeps completion exact, and the answers
        from healthy sites still arrive."""
        engine = WebDisEngine(_star_web(), trace=True)
        engine.network.set_site_down("leaf1.example")
        handle = engine.run_query(QUERY)
        assert handle.status is QueryStatus.COMPLETE
        answers = {r.values[1] for r in handle.unique_rows()}
        assert answers == {"answer 0", "answer 2"}
        assert "unreachable-site" in engine.tracer.actions()

    def test_all_leaves_down_still_completes(self):
        engine = WebDisEngine(_star_web())
        for i in range(3):
            engine.network.set_site_down(f"leaf{i}.example")
        handle = engine.run_query(QUERY)
        assert handle.status is QueryStatus.COMPLETE
        assert {r.values[1] for r in handle.unique_rows()} == set()

    def test_recovered_site_serves_next_query(self):
        engine = WebDisEngine(_star_web())
        engine.network.set_site_down("leaf1.example")
        first = engine.run_query(QUERY)
        assert len(first.unique_rows()) == 2  # two healthy leaves
        engine.network.set_site_up("leaf1.example")
        second = engine.run_query(QUERY)
        assert len(second.unique_rows()) == 3  # all three leaves again


class TestGracefulRecovery:
    def test_hybrid_recovers_full_answers(self):
        """With the hybrid central fallback, a crashed *query-server* whose
        documents are still web-served is processed centrally: the full
        answer set survives the failure (§7.1 graceful recovery)."""
        web = _star_web()
        hybrid = HybridEngine(web, web.site_names)
        # leaf1's query-server is gone, but its doc server stays up — model
        # this by closing the query port only.
        from repro.net.network import QUERY_PORT

        hybrid.network.close("leaf1.example", QUERY_PORT)
        handle = hybrid.run_query(QUERY)
        assert handle.status is QueryStatus.COMPLETE
        answers = {r.values[1] for r in handle.unique_rows() if r.values[1].startswith("answer")}
        assert answers == {"answer 0", "answer 1", "answer 2"}
        assert hybrid.stats.documents_shipped >= 1  # leaf1's page was fetched


def _blob():
    class _B:
        kind = "blob"

        def size_bytes(self):
            return 10

    return _B()
