"""The client-side stall watchdog (failure detector, not completion)."""

from __future__ import annotations

from repro import QueryStatus, WebDisEngine
from repro.web.campus import CAMPUS_QUERY_DISQL


class TestWatchdog:
    def test_healthy_query_never_stalls(self, campus_web):
        engine = WebDisEngine(campus_web)
        handle = engine.submit_disql(CAMPUS_QUERY_DISQL)
        engine.client.watch(handle, quiet_timeout=0.15)
        engine.run()
        assert handle.status is QueryStatus.COMPLETE
        assert not handle.stalled

    def test_stall_detected_after_lost_report(self, campus_web):
        engine = WebDisEngine(campus_web)
        # Lose one site's report: its CHT entries stay outstanding forever.
        engine.network.fail_next("dsl.serc.iisc.ernet.in", "user.example")
        handle = engine.submit_disql(CAMPUS_QUERY_DISQL)
        stalls: list[float] = []
        engine.client.watch(
            handle, quiet_timeout=2.0, on_stall=lambda h: stalls.append(h.stall_detected_at)
        )
        engine.run()
        assert handle.status is QueryStatus.RUNNING  # never falsely complete
        assert handle.stalled
        assert stalls and stalls[0] >= 2.0

    def test_progress_rearms_timer(self, campus_web):
        from repro import NetworkConfig

        engine = WebDisEngine(campus_web, net_config=NetworkConfig(latency_base=0.02))
        handle = engine.submit_disql(CAMPUS_QUERY_DISQL)
        # Reports keep arriving faster than the timeout until completion.
        engine.client.watch(handle, quiet_timeout=0.15)
        engine.run()
        assert handle.status is QueryStatus.COMPLETE
        assert not handle.stalled

    def test_cancel_disarms(self, campus_web):
        from repro import NetworkConfig

        engine = WebDisEngine(campus_web, net_config=NetworkConfig(latency_base=0.5))
        handle = engine.submit_disql(CAMPUS_QUERY_DISQL)
        engine.client.watch(handle, quiet_timeout=1.0)
        engine.cancel(handle, at=0.1)
        engine.run()
        assert handle.status is QueryStatus.CANCELLED
        assert not handle.stalled

    def test_on_stall_fires_exactly_once(self, campus_web):
        engine = WebDisEngine(campus_web)
        engine.network.fail_next("dsl.serc.iisc.ernet.in", "user.example")
        handle = engine.submit_disql(CAMPUS_QUERY_DISQL)
        fired: list[float] = []
        engine.client.watch(
            handle, quiet_timeout=2.0, on_stall=lambda h: fired.append(h.stall_detected_at)
        )
        # Run far past several timeout periods: the watchdog must not re-arm
        # after firing, so a persistently stalled query is flagged once.
        engine.run()
        engine.clock.schedule(10 * 2.0, lambda: None)
        engine.run()
        assert fired == [handle.stall_detected_at]

    def test_rearm_measures_quiet_time_from_last_progress(self, campus_web):
        """Progress re-arms the timer: the stall timestamp is at least one
        full quiet period after the *last* report, not after submission."""
        engine = WebDisEngine(campus_web)
        engine.network.fail_next("dsl.serc.iisc.ernet.in", "user.example")
        handle = engine.submit_disql(CAMPUS_QUERY_DISQL)
        engine.client.watch(handle, quiet_timeout=2.0)
        engine.run()
        assert handle.stalled
        assert handle.messages_received > 0  # there was progress before the stall
        assert handle.stall_detected_at >= handle.last_message_time + 2.0

    def test_completion_disarms(self, campus_web):
        engine = WebDisEngine(campus_web)
        handle = engine.submit_disql(CAMPUS_QUERY_DISQL)
        fired: list[float] = []
        engine.client.watch(
            handle, quiet_timeout=0.15, on_stall=lambda h: fired.append(h.stall_detected_at)
        )
        engine.run()
        assert handle.status is QueryStatus.COMPLETE
        # Let the quiet timer lapse well past completion: it must stay dead.
        engine.clock.schedule(1.0, lambda: None)
        engine.run()
        assert fired == []
        assert not handle.stalled

    def test_cancel_disarms_on_stall_callback(self, campus_web):
        from repro import NetworkConfig

        engine = WebDisEngine(campus_web, net_config=NetworkConfig(latency_base=0.5))
        handle = engine.submit_disql(CAMPUS_QUERY_DISQL)
        fired: list[float] = []
        engine.client.watch(
            handle, quiet_timeout=1.0, on_stall=lambda h: fired.append(h.stall_detected_at)
        )
        engine.cancel(handle, at=0.1)
        engine.run()
        engine.clock.schedule(5.0, lambda: None)
        engine.run()
        assert handle.status is QueryStatus.CANCELLED
        assert fired == []

    def test_stalled_query_can_be_cancelled_and_retried(self, campus_web):
        engine = WebDisEngine(campus_web)
        engine.network.fail_next("dsl.serc.iisc.ernet.in", "user.example")
        first = engine.submit_disql(CAMPUS_QUERY_DISQL)
        engine.client.watch(
            first, quiet_timeout=2.0,
            on_stall=lambda h: engine.client.cancel(h),
        )
        engine.run()
        assert first.status is QueryStatus.CANCELLED
        retry = engine.submit_disql(CAMPUS_QUERY_DISQL)
        engine.run()
        assert retry.status is QueryStatus.COMPLETE
        assert len(retry.unique_rows("q2")) == 3
