"""Property-based tests for the PRE algebra (hypothesis).

The derivative construction must agree with the denotational path language:
``accepts(p, s + rest) == accepts(advance(p, s), rest)``, nullability is
acceptance of the empty path, and the log-table subsumption decisions must
be sound with respect to actual path-set containment.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.model.relations import LinkType
from repro.pre import (
    LogComparison,
    accepts,
    advance,
    compare_for_log,
    enumerate_paths,
    first_symbols,
    nullable,
    parse_pre,
    rewrite_superset,
)
from repro.pre.ast import Atom, Never, Pre, alt, concat, repeat

SYMBOLS = (LinkType.INTERIOR, LinkType.LOCAL, LinkType.GLOBAL)


def _atoms() -> st.SearchStrategy[Pre]:
    from repro.pre.ast import EMPTY

    return st.sampled_from([Atom(s) for s in SYMBOLS] + [EMPTY])


def _pres(max_depth: int = 3) -> st.SearchStrategy[Pre]:
    return st.recursive(
        _atoms(),
        lambda children: st.one_of(
            st.lists(children, min_size=2, max_size=3).map(concat),
            st.lists(children, min_size=2, max_size=3).map(alt),
            st.tuples(children, st.one_of(st.integers(1, 4), st.none())).map(
                lambda pair: repeat(*pair)
            ),
        ),
        max_leaves=8,
    )


pres = _pres()
symbol_lists = st.lists(st.sampled_from(SYMBOLS), max_size=5)


@given(pres, st.sampled_from(SYMBOLS), symbol_lists)
@settings(max_examples=200, deadline=None)
def test_derivative_agrees_with_acceptance(pre, symbol, rest):
    assert accepts(pre, [symbol] + rest) == accepts(advance(pre, symbol), rest)


@given(pres)
@settings(max_examples=200, deadline=None)
def test_nullable_is_empty_path_acceptance(pre):
    assert nullable(pre) == accepts(pre, [])


@given(pres, st.sampled_from(SYMBOLS))
@settings(max_examples=200, deadline=None)
def test_first_symbols_sound_and_complete(pre, symbol):
    derivative = advance(pre, symbol)
    if symbol in first_symbols(pre):
        assert not isinstance(derivative, Never)
    else:
        assert isinstance(derivative, Never)


@given(pres)
@settings(max_examples=100, deadline=None)
def test_enumerated_paths_all_accepted(pre):
    for path in enumerate_paths(pre, 3):
        assert accepts(pre, path)


@given(pres, symbol_lists)
@settings(max_examples=200, deadline=None)
def test_accepted_paths_are_enumerated(pre, path):
    if len(path) <= 3 and accepts(pre, path):
        assert tuple(path) in enumerate_paths(pre, 3)


@given(st.sampled_from(SYMBOLS), st.integers(1, 4), st.integers(1, 4))
@settings(max_examples=100, deadline=None)
def test_subsumption_matches_containment(symbol, m, n):
    """``A*m·G`` vs ``A*n·G`` must be judged exactly by path containment."""
    body = symbol.value
    incoming = parse_pre(f"{body}*{m}.G")
    logged = parse_pre(f"{body}*{n}.G")
    verdict = compare_for_log(incoming, logged)
    incoming_paths = enumerate_paths(incoming, 5)
    logged_paths = enumerate_paths(logged, 5)
    if verdict is LogComparison.DUPLICATE:
        assert incoming_paths <= logged_paths
    elif verdict is LogComparison.SUPERSET:
        assert incoming_paths > logged_paths


@given(st.sampled_from(SYMBOLS), st.one_of(st.integers(2, 5), st.none()))
@settings(max_examples=60, deadline=None)
def test_rewrite_removes_exactly_zero_iteration_paths(symbol, bound):
    """``A·A*(m-1)·B`` drops exactly the zero-iteration paths, i.e. L(B).

    Those are the paths the previous (logged) visit already covered, so the
    rewritten clone explores only genuinely new ground.
    """
    suffix = f"*{bound}" if bound is not None else "*"
    original = parse_pre(f"{symbol.value}{suffix}.G")
    rewritten = rewrite_superset(original)
    depth = 4
    original_paths = enumerate_paths(original, depth)
    rewritten_paths = enumerate_paths(rewritten, depth)
    assert rewritten_paths < original_paths
    assert original_paths - rewritten_paths == enumerate_paths(parse_pre("G"), depth)


@given(pres)
@settings(max_examples=100, deadline=None)
def test_str_parse_round_trip(pre):
    """Rendered PREs re-parse to the same language (up to short paths)."""
    reparsed = parse_pre(str(pre))
    assert enumerate_paths(reparsed, 3) == enumerate_paths(pre, 3)
