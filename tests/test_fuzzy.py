"""Tests for approximate queries (contains~k, §7.1 future work)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import QueryStatus, WebDisEngine
from repro.disql import parse_disql
from repro.relational.expr import Attr, Contains, Literal, evaluate
from repro.relational.fuzzy import fuzzy_contains, within_edits
from repro.web.builders import WebBuilder
from repro.wire import expr_from_wire, expr_to_wire


class TestWithinEdits:
    @pytest.mark.parametrize(
        "a,b,k,expected",
        [
            ("convener", "convener", 0, True),
            ("convenor", "convener", 1, True),   # substitute
            ("convener", "conveneer", 1, True),  # insert
            ("convener", "convner", 1, True),    # delete
            ("convenor", "convener", 0, False),
            ("kitten", "sitting", 3, True),
            ("kitten", "sitting", 2, False),
            ("", "", 0, True),
            ("", "abc", 3, True),
            ("", "abc", 2, False),
        ],
    )
    def test_cases(self, a, b, k, expected):
        assert within_edits(a, b, k) is expected

    def test_negative_k(self):
        assert not within_edits("a", "a", -1)

    def test_symmetric(self):
        assert within_edits("haritsa", "harista", 2)
        assert within_edits("harista", "haritsa", 2)


class TestFuzzyContains:
    def test_exact_window(self):
        assert fuzzy_contains("the lab convener is here", "convener", 0)

    def test_typo_in_document(self):
        assert fuzzy_contains("the lab convenor is here", "convener", 1)

    def test_typo_in_query(self):
        assert fuzzy_contains("the lab convener is here", "convenor", 1)

    def test_not_matched_beyond_budget(self):
        assert not fuzzy_contains("the lab coordinator is here", "convener", 2)

    def test_multiword_needle(self):
        assert fuzzy_contains("prof jayant haritsa leads", "jayant harista", 2)

    def test_case_and_whitespace_insensitive(self):
        assert fuzzy_contains("CONVENER   Jayant", "convener jayant", 1)

    def test_empty_needle_matches(self):
        assert fuzzy_contains("anything", "", 1)

    def test_empty_haystack(self):
        assert not fuzzy_contains("", "convener", 1)
        assert fuzzy_contains("", "ab", 2)

    def test_zero_edits_is_substring(self):
        assert fuzzy_contains("xconvenerx", "convener", 0)


class TestExpressionIntegration:
    def test_evaluate_fuzzy(self):
        expr = Contains(Attr("r", "text"), Literal("convener"), 1)
        assert evaluate(expr, {"r": {"text": "CONVENOR Prof X"}}) is True
        assert evaluate(expr, {"r": {"text": "chair Prof X"}}) is False

    def test_negative_bound_rejected(self):
        from repro.errors import EvaluationError

        with pytest.raises(EvaluationError):
            Contains(Literal("a"), Literal("b"), -1)

    def test_str_rendering(self):
        expr = Contains(Attr("r", "text"), Literal("x"), 2)
        assert "contains~2" in str(expr)

    def test_wire_round_trip(self):
        expr = Contains(Attr("r", "text"), Literal("x"), 2)
        assert expr_from_wire(expr_to_wire(expr)) == expr

    def test_wire_default_zero(self):
        expr = Contains(Attr("r", "text"), Literal("x"))
        decoded = expr_from_wire(expr_to_wire(expr))
        assert decoded.max_edits == 0


class TestDisqlSyntax:
    def test_parse_fuzzy_contains(self):
        query = parse_disql(
            'select d.url from document d such that "http://x.example/" L d\n'
            'where d.title contains~1 "convener"'
        )
        where = query.subqueries[0].where
        assert isinstance(where, Contains) and where.max_edits == 1

    def test_plain_contains_unchanged(self):
        query = parse_disql(
            'select d.url from document d such that "http://x.example/" L d\n'
            'where d.title contains "x"'
        )
        assert query.subqueries[0].where.max_edits == 0

    def test_missing_bound_rejected(self):
        from repro.errors import DisqlSyntaxError

        with pytest.raises(DisqlSyntaxError):
            parse_disql(
                'select d.url from document d such that "http://x.example/" L d\n'
                'where d.title contains~ "x"'
            )

    def test_formatter_round_trip(self):
        from repro.disql import format_disql

        query = parse_disql(
            'select d.url from document d such that "http://x.example/" L d\n'
            'where d.title contains~2 "convener"'
        )
        assert parse_disql(format_disql(query)) == query


class TestEndToEndApproximate:
    def _web(self):
        builder = WebBuilder()
        builder.site("a.example").page(
            "/",
            title="people",
            ruled=["CONVENOR Prof. Misspelled"],  # note the O
            links=[("b", "http://b.example/")],
        )
        builder.site("b.example").page(
            "/", title="people", ruled=["CONVENER Prof. Exact"]
        )
        return builder.build()

    def _query(self, op: str) -> str:
        return (
            "select d.url, r.text\n"
            'from document d such that "http://a.example/" N|G d,\n'
            '     relinfon r such that r.delimiter = "hr"\n'
            f'where r.text {op} "convener"'
        )

    def test_exact_misses_typo(self):
        engine = WebDisEngine(self._web())
        handle = engine.run_query(self._query("contains"))
        assert handle.status is QueryStatus.COMPLETE
        assert len(handle.unique_rows()) == 1

    def test_fuzzy_finds_typo(self):
        engine = WebDisEngine(self._web())
        handle = engine.run_query(self._query("contains~1"))
        assert handle.status is QueryStatus.COMPLETE
        assert len(handle.unique_rows()) == 2


@settings(max_examples=100, deadline=None)
@given(st.text(max_size=12), st.text(max_size=12), st.integers(0, 3))
def test_within_edits_triangle_consistency(a, b, k):
    """If a matches within k, it must match within any k' >= k."""
    if within_edits(a, b, k):
        assert within_edits(a, b, k + 1)


@settings(max_examples=100, deadline=None)
@given(st.text(alphabet="ab ", max_size=20), st.text(alphabet="ab", min_size=1, max_size=6))
def test_fuzzy_generalizes_exact(haystack, needle):
    if needle.lower() in haystack.lower():
        assert fuzzy_contains(haystack, needle, 1)
