"""Tests for URL parsing, normalization and link classification."""

from __future__ import annotations

import pytest

from repro.errors import UrlError
from repro.urlutils import Url, classify_link, parse_url


class TestUrlType:
    def test_defaults(self):
        url = Url("example.com")
        assert url.path == "/"
        assert url.scheme == "http"
        assert url.fragment == ""

    def test_str_round_trip(self):
        url = Url("example.com", "/a/b.html", "sec")
        assert str(url) == "http://example.com/a/b.html#sec"
        assert parse_url(str(url)) == url

    def test_empty_host_rejected(self):
        with pytest.raises(UrlError):
            Url("")

    def test_relative_path_rejected(self):
        with pytest.raises(UrlError):
            Url("example.com", "a.html")

    def test_site_is_host(self):
        assert Url("Dsl.Example".lower(), "/x").site == "dsl.example"

    def test_without_fragment(self):
        url = Url("h.example", "/p", "frag")
        assert url.without_fragment() == Url("h.example", "/p")
        assert url.without_fragment().fragment == ""

    def test_without_fragment_identity_when_absent(self):
        url = Url("h.example", "/p")
        assert url.without_fragment() is url

    def test_with_fragment(self):
        assert Url("h.example", "/p").with_fragment("top").fragment == "top"

    def test_hashable(self):
        assert len({Url("a.example", "/x"), Url("a.example", "/x")}) == 1


class TestParseAbsolute:
    def test_full_url(self):
        url = parse_url("http://dsl.serc.iisc.ernet.in/people")
        assert url.host == "dsl.serc.iisc.ernet.in"
        assert url.path == "/people"

    def test_host_lowercased(self):
        assert parse_url("http://EXAMPLE.COM/X").host == "example.com"

    def test_path_case_preserved(self):
        assert parse_url("http://example.com/Labs").path == "/Labs"

    def test_scheme_preserved(self):
        assert parse_url("https://example.com/").scheme == "https"

    def test_bare_host(self):
        url = parse_url("http://example.com")
        assert url.path == "/"

    def test_schemeless_host_paper_style(self):
        url = parse_url("dsl.serc.iisc.ernet.in/people")
        assert url.host == "dsl.serc.iisc.ernet.in"
        assert url.path == "/people"

    def test_fragment(self):
        assert parse_url("http://a.example/x#frag").fragment == "frag"

    def test_empty_raises(self):
        with pytest.raises(UrlError):
            parse_url("   ")

    def test_empty_host_raises(self):
        with pytest.raises(UrlError):
            parse_url("http:///path")


class TestParseRelative:
    BASE = parse_url("http://a.example/dir/page.html")

    def test_host_relative(self):
        assert parse_url("/other", base=self.BASE) == Url("a.example", "/other")

    def test_document_relative(self):
        assert parse_url("sibling.html", base=self.BASE).path == "/dir/sibling.html"

    def test_dot_dot(self):
        assert parse_url("../up.html", base=self.BASE).path == "/up.html"

    def test_dot_dot_beyond_root_clamps(self):
        assert parse_url("../../../x.html", base=self.BASE).path == "/x.html"

    def test_fragment_only(self):
        url = parse_url("#sec", base=self.BASE)
        assert url.path == self.BASE.path
        assert url.fragment == "sec"

    def test_relative_without_base_raises(self):
        with pytest.raises(UrlError):
            parse_url("page.html")

    def test_fragment_without_base_raises(self):
        with pytest.raises(UrlError):
            parse_url("#x")

    def test_index_html_not_treated_as_host(self):
        url = parse_url("index.html", base=self.BASE)
        assert url.host == "a.example"

    def test_duplicate_slashes_normalized(self):
        assert parse_url("http://a.example//x//y.html").path == "/x/y.html"


class TestClassifyLink:
    BASE = parse_url("http://a.example/page.html")

    def test_global(self):
        assert classify_link(self.BASE, parse_url("http://b.example/")) == "G"

    def test_local(self):
        assert classify_link(self.BASE, Url("a.example", "/other.html")) == "L"

    def test_interior(self):
        assert classify_link(self.BASE, self.BASE.with_fragment("top")) == "I"

    def test_null(self):
        assert classify_link(self.BASE, self.BASE) == "N"

    def test_same_path_different_host_is_global(self):
        assert classify_link(self.BASE, Url("b.example", "/page.html")) == "G"
