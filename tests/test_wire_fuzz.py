"""Wire round-trip fuzz: stamped messages survive the codec bit-exactly.

Hypothesis generates ``ResultMessage``s whose reports carry the full
dispatch-identity stamping — ``(qid, dispatch_id, recovery_epoch)`` plus
``child_ids`` — including the edge cases the self-healing protocol relies
on: empty ``child_ids`` (leaf reports), unicode site names (the envelope
is UTF-8 JSON with ``ensure_ascii=False``), and epoch 0 (elided on the
wire, restored on decode).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.messages import ChtEntry, Disposition, NodeReport, ResultMessage
from repro.core.state import QueryState
from repro.core.webquery import QueryId
from repro.pre import parse_pre
from repro.relational.query import ResultRow
from repro.urlutils import parse_url
from repro.wire import decode_message, encode_message

HOSTS = st.sampled_from(
    [
        "s0.example",
        "csa.iisc.ernet.in",
        "sité-α.example",  # unicode site name
        "ドメイン.example",  # non-latin site name
        "a-b.example",
    ]
)

PRE_TEXTS = st.sampled_from(["N", "G", "L*1", "L*", "(L|G)*2", "G.(G|L)", "I.L.G"])

qids = st.builds(
    QueryId,
    user=st.sampled_from(["maya", "u", "ユーザ", "op-7"]),
    host=HOSTS,
    port=st.integers(1024, 65535),
    number=st.integers(0, 10**6),
)

states = st.builds(
    QueryState,
    num_q=st.integers(0, 5),
    rem=PRE_TEXTS.map(parse_pre),
)


@st.composite
def urls(draw):
    host = draw(HOSTS)
    path = draw(st.sampled_from(["/", "/p1.html", "/a/b.html", "/p2.html#sec1"]))
    return parse_url(f"http://{host}{path}")


entries = st.builds(ChtEntry, node=urls(), state=states)

rows = st.builds(
    ResultRow,
    header=st.tuples(st.sampled_from(["d.url", "d.title", "r.text"])),
    values=st.tuples(
        st.one_of(
            st.text(max_size=12),  # includes "", unicode, quotes
            st.integers(-1000, 1000),
        )
    ),
)


@st.composite
def dispatch_ids(draw):
    if draw(st.booleans()):
        return ""  # unstamped legacy report
    n = draw(st.integers(0, 99))
    host = draw(HOSTS)
    return f"u{n}@{host}"


@st.composite
def reports(draw):
    n_children = draw(st.integers(0, 3))
    new_entries = tuple(draw(entries) for _ in range(n_children))
    # child_ids runs parallel to new_entries — or is empty (legacy report).
    if n_children and draw(st.booleans()):
        child_ids = tuple(
            f"c{i}@{draw(HOSTS)}" for i in range(n_children)
        )
    else:
        child_ids = ()
    return NodeReport(
        entry=draw(entries),
        disposition=draw(st.sampled_from(list(Disposition))),
        new_entries=new_entries,
        results=tuple(
            (draw(st.sampled_from(["d", "d0", "r"])), draw(rows))
            for _ in range(draw(st.integers(0, 2)))
        ),
        dispatch_id=draw(dispatch_ids()),
        epoch=draw(st.sampled_from([0, 0, 1, 2, 7])),
        child_ids=child_ids,
    )


messages = st.builds(
    ResultMessage,
    qid=qids,
    reports=st.lists(reports(), min_size=0, max_size=3).map(tuple),
    kind=st.sampled_from(["result", "cht"]),
)


class TestStampedRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(messages)
    def test_decode_inverts_encode(self, message):
        assert decode_message(encode_message(message)) == message

    @settings(max_examples=200, deadline=None)
    @given(messages)
    def test_reencode_is_bit_exact(self, message):
        wire = encode_message(message)
        assert encode_message(decode_message(wire)) == wire

    @settings(max_examples=100, deadline=None)
    @given(messages)
    def test_stamping_survives(self, message):
        decoded = decode_message(encode_message(message))
        for sent, received in zip(message.reports, decoded.reports):
            assert received.dispatch_id == sent.dispatch_id
            assert received.epoch == sent.epoch
            assert received.child_ids == sent.child_ids
            assert len(received.child_ids) in (0, len(received.new_entries))


class TestEdgeCases:
    def test_empty_child_ids_stays_empty_tuple(self):
        entry = ChtEntry(parse_url("http://s0.example/"), QueryState(1, parse_pre("L")))
        report = NodeReport(entry=entry, disposition=Disposition.PROCESSED)
        message = ResultMessage(QueryId("maya", "user.example", 5001, 7), (report,))
        decoded = decode_message(encode_message(message))
        assert decoded.reports[0].child_ids == ()
        assert decoded.reports[0].dispatch_id == ""
        assert decoded.reports[0].epoch == 0

    def test_unicode_site_name_round_trips(self):
        entry = ChtEntry(
            parse_url("http://sité-α.example/p1.html"),
            QueryState(2, parse_pre("(L|G)*2")),
        )
        report = NodeReport(
            entry=entry,
            disposition=Disposition.PROCESSED,
            new_entries=(entry,),
            dispatch_id="u3@sité-α.example",
            epoch=1,
            child_ids=("c0@ドメイン.example",),
        )
        message = ResultMessage(QueryId("ユーザ", "sité-α.example", 5001, 7), (report,))
        assert decode_message(encode_message(message)) == message
