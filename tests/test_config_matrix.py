"""Invariant sweep: Figure 8 must survive every engine-configuration combo.

The paper's optimizations and our extensions are all supposed to change
*cost*, never *answers*.  This matrix runs the sample query under all
combinations of the behavioural toggles and asserts the exact Figure-8
result set and exact completion each time.
"""

from __future__ import annotations

import itertools

import pytest

from repro import EngineConfig, QueryStatus, WebDisEngine
from repro.web.campus import CAMPUS_QUERY_DISQL, EXPECTED_CONVENER_ROWS

_FLAG_AXES = {
    "log_table_enabled": (True, False),
    "batch_per_site": (True, False),
    "combine_results_and_cht": (True, False),
    "direct_result_return": (True, False),
    "frontier_batching": (True, False),
    "scheduler": ("fair", "fifo"),
}

_COMBOS = [
    dict(zip(_FLAG_AXES, values))
    for values in itertools.product(*_FLAG_AXES.values())
]


def _combo_id(combo: dict) -> str:
    parts = [k for k, v in combo.items() if v is False]
    parts += [v for v in combo.values() if isinstance(v, str)]
    return ",".join(parts) or "all-on"


@pytest.mark.parametrize("combo", _COMBOS, ids=_combo_id)
def test_figure8_invariant_under_flags(campus_web, combo):
    engine = WebDisEngine(campus_web, config=EngineConfig(**combo))
    handle = engine.run_query(CAMPUS_QUERY_DISQL)
    assert handle.status is QueryStatus.COMPLETE
    assert {r.values for r in handle.unique_rows("q2")} == set(EXPECTED_CONVENER_ROWS)
    handle.cht.check_consistency()
    assert handle.cht.imbalance() == 0


_EXTENSION_AXES = [
    EngineConfig(log_subsumption="language"),
    EngineConfig(server_threads=4),
    EngineConfig(db_cache_size=16),
    EngineConfig(log_subsumption="language", server_threads=4, db_cache_size=16),
    EngineConfig(log_max_age=0.001, log_purge_interval=0.001),
    EngineConfig(strict_dead_end=False, server_threads=2, batch_per_site=False),
    EngineConfig(frontier_batching=False, log_subsumption="language"),
    EngineConfig(frontier_batching=True, batch_per_site=False, server_threads=2),
    # Multi-tenancy knobs: bounded pump budgets chunk the frontier but must
    # not change answers; generous ceilings must never shed the campus query.
    EngineConfig(pump_budget=1),
    EngineConfig(scheduler="fifo", pump_budget=3),
    EngineConfig(pump_budget=2, per_query_queue_limit=64, server_queue_limit=128,
                 shed_after=30.0),
    EngineConfig(scheduler="fifo", pump_budget=4, per_query_queue_limit=64,
                 log_subsumption="language", server_threads=2),
]


@pytest.mark.parametrize("config", _EXTENSION_AXES, ids=range(len(_EXTENSION_AXES)))
def test_figure8_invariant_under_extensions(campus_web, config):
    engine = WebDisEngine(campus_web, config=config)
    handle = engine.run_query(CAMPUS_QUERY_DISQL)
    assert handle.status is QueryStatus.COMPLETE
    assert {r.values for r in handle.unique_rows("q2")} == set(EXPECTED_CONVENER_ROWS)


# Cross-query caching (EXP-P4) crossed against the knobs it interacts with
# on the hot path: the scheduler (interleaves tenants, so memo warm-up
# order varies), frontier batching (moves probes into the frontier pump)
# and compiled plans (plan sharing vs interpreter).  Two identical tenants
# run per combo so the memo genuinely engages — both must stay row-exact.
_CACHING_AXES = {
    "cross_query_caching": (True, False),
    "scheduler": ("fair", "fifo"),
    "frontier_batching": (True, False),
    "compiled_plans": (True, False),
}

_CACHING_COMBOS = [
    dict(zip(_CACHING_AXES, values))
    for values in itertools.product(*_CACHING_AXES.values())
]


@pytest.mark.parametrize("combo", _CACHING_COMBOS, ids=_combo_id)
def test_figure8_invariant_under_caching_axis(campus_web, combo):
    engine = WebDisEngine(campus_web, config=EngineConfig(**combo))
    first = engine.submit_disql(CAMPUS_QUERY_DISQL)
    second = engine.submit_disql(CAMPUS_QUERY_DISQL)
    engine.run()
    for handle in (first, second):
        assert handle.status is QueryStatus.COMPLETE
        assert {r.values for r in handle.unique_rows("q2")} == set(
            EXPECTED_CONVENER_ROWS
        )
        handle.cht.check_consistency()
        assert handle.cht.imbalance() == 0


# The executor seam (EXP-P5) crossed against the knobs that change *where*
# node-queries run: the cross-query memo (columnar results must serve row
# probes and vice versa), frontier batching (moves fan-out emission into
# the pump, whose columnar path reads precomputed forward targets) and the
# storage backend (both executors over both table materializations).  Two
# identical tenants per combo so the memo genuinely engages.
_EXECUTOR_AXES = {
    "executor": ("columnar", "row"),
    "cross_query_caching": (True, False),
    "frontier_batching": (True, False),
    "storage_backend": ("memory", "sqlite"),
}

_EXECUTOR_COMBOS = [
    dict(zip(_EXECUTOR_AXES, values))
    for values in itertools.product(*_EXECUTOR_AXES.values())
]


@pytest.mark.parametrize("combo", _EXECUTOR_COMBOS, ids=_combo_id)
def test_figure8_invariant_under_executor_axis(campus_web, combo):
    engine = WebDisEngine(campus_web, config=EngineConfig(**combo))
    first = engine.submit_disql(CAMPUS_QUERY_DISQL)
    second = engine.submit_disql(CAMPUS_QUERY_DISQL)
    engine.run()
    for handle in (first, second):
        assert handle.status is QueryStatus.COMPLETE
        assert {r.values for r in handle.unique_rows("q2")} == set(
            EXPECTED_CONVENER_ROWS
        )
        handle.cht.check_consistency()
        assert handle.cht.imbalance() == 0


# The EXP-P6 outer-level batching crossed with join depth: node-queries of
# 1, 2 and 3 aliases — the 3-alias one carries explicit equality joins on
# shared variables (a.base = d.url, r.url = a.base), i.e. the shapes the
# batch pipeline lowers to hash-index probes.  Every (executor, backend)
# cell must match the row/memory baseline's statuses and distinct rows
# exactly; the depth-1/2/3 queries between them cover leaf-only, one
# expansion level and two expansion levels of the pipeline.
_JOIN_DEPTH_QUERIES = {
    1: """
select d.url, d.title
from document d such that "http://www.csa.iisc.ernet.in/" L d
where d.text contains "lab"
""",
    2: """
select d.url, r.text
from document d such that "http://www.csa.iisc.ernet.in/" L.G.(L*1) d,
     relinfon r such that r.delimiter = "hr"
where r.text contains "convener"
""",
    3: """
select d.url, a.href, r.text
from document d such that "http://www.csa.iisc.ernet.in/" G.(L*1) d,
     anchor a such that a.base = d.url,
     relinfon r such that r.url = a.base
where a.href != a.base
""",
}

_JOIN_DEPTH_BASELINES: dict[int, tuple] = {}


def _join_depth_state(campus_web, depth, **config):
    engine = WebDisEngine(campus_web, config=EngineConfig(**config))
    handle = engine.run_query(_JOIN_DEPTH_QUERIES[depth])
    rows = frozenset(
        (label, row.header, row.values) for label, row, __ in handle.results
    )
    return (handle.status, rows)


@pytest.mark.parametrize("depth", sorted(_JOIN_DEPTH_QUERIES))
@pytest.mark.parametrize("backend", ("memory", "sqlite"))
@pytest.mark.parametrize("executor", ("columnar", "row"))
def test_join_depth_invariant_under_executor_and_storage(
    campus_web, executor, backend, depth
):
    baseline = _JOIN_DEPTH_BASELINES.get(depth)
    if baseline is None:
        baseline = _JOIN_DEPTH_BASELINES[depth] = _join_depth_state(
            campus_web, depth, executor="row", storage_backend="memory"
        )
    status, rows = baseline
    assert status is QueryStatus.COMPLETE
    assert rows  # every depth's query genuinely produces rows
    assert (
        _join_depth_state(
            campus_web, depth, executor=executor, storage_backend=backend
        )
        == baseline
    )
