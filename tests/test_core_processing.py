"""Unit tests for per-node ServerRouter/PureRouter processing (Figure 4)."""

from __future__ import annotations

from repro.core.config import EngineConfig
from repro.core.processing import process_node
from repro.core.trace import PURE_ROUTER, SERVER_ROUTER
from repro.core.webquery import QueryId, WebQuery, WebQueryStep
from repro.html.generator import PageSpec, render_page
from repro.model.database import build_node_database
from repro.pre import parse_pre
from repro.relational.expr import Attr, Contains, Literal
from repro.relational.query import NodeQuery, TableDecl
from repro.urlutils import Url, parse_url

QID = QueryId("u", "user.example", 5001, 1)
CONFIG = EngineConfig()
STRICT = EngineConfig(strict_dead_end=True)

URL = parse_url("http://a.example/page")


def _db(title: str, links=(), emphasized=()):
    spec = PageSpec(title=title, links=tuple(links), emphasized=tuple(emphasized))
    return build_node_database(URL, render_page(spec))


def _title_query(label: str, needle: str) -> NodeQuery:
    return NodeQuery(
        (Attr("d", "url"),),
        (TableDecl("document", "d"),),
        Contains(Attr("d", "title"), Literal(needle)),
        label,
    )


def _query(*steps) -> WebQuery:
    return WebQuery(QID, (Url("start.example", "/"),), tuple(steps))


TOPIC_Q = _title_query("q1", "topic")
DETAIL_Q = _title_query("q2", "detail")


class TestPureRouter:
    def test_non_nullable_pre_routes_only(self):
        query = _query(WebQueryStep(parse_pre("G.L"), TOPIC_Q))
        db = _db("topic page", links=[("x", "http://b.example/")])
        outcome = process_node(URL, db, query, 0, parse_pre("G.L"), CONFIG)
        assert outcome.role == PURE_ROUTER
        assert outcome.evaluations == []
        assert len(outcome.forwards) == 1
        forward = outcome.forwards[0]
        assert str(forward.target) == "http://b.example/"
        assert forward.rem == parse_pre("L")

    def test_no_matching_links_is_dead_end(self):
        query = _query(WebQueryStep(parse_pre("G"), TOPIC_Q))
        db = _db("t", links=[("x", "/local.html")])  # only local links
        outcome = process_node(URL, db, query, 0, parse_pre("G"), CONFIG)
        assert outcome.dead_end

    def test_forwards_deduplicated(self):
        query = _query(WebQueryStep(parse_pre("G"), TOPIC_Q))
        db = _db("t", links=[("x", "http://b.example/"), ("y", "http://b.example/")])
        outcome = process_node(URL, db, query, 0, parse_pre("G"), CONFIG)
        assert len(outcome.forwards) == 1

    def test_fragment_stripped_from_target(self):
        query = _query(WebQueryStep(parse_pre("G"), TOPIC_Q))
        db = _db("t", links=[("x", "http://b.example/p#sec")])
        outcome = process_node(URL, db, query, 0, parse_pre("G"), CONFIG)
        assert outcome.forwards[0].target == Url("b.example", "/p")


class TestServerRouter:
    def test_nullable_pre_evaluates(self):
        query = _query(WebQueryStep(parse_pre("N"), TOPIC_Q))
        db = _db("a topic page")
        outcome = process_node(URL, db, query, 0, parse_pre("N"), CONFIG)
        assert outcome.role == SERVER_ROUTER
        assert outcome.answered
        assert [label for label, __ in outcome.results] == ["q1"]

    def test_success_forwards_next_stage(self):
        query = _query(
            WebQueryStep(parse_pre("N"), TOPIC_Q),
            WebQueryStep(parse_pre("G"), DETAIL_Q),
        )
        db = _db("topic here", links=[("x", "http://b.example/")])
        outcome = process_node(URL, db, query, 0, parse_pre("N"), CONFIG)
        (forward,) = outcome.forwards
        assert forward.step_index == 1
        assert forward.rem == parse_pre("N")

    def test_failure_blocks_next_stage(self):
        query = _query(
            WebQueryStep(parse_pre("N"), TOPIC_Q),
            WebQueryStep(parse_pre("G"), DETAIL_Q),
        )
        db = _db("no match", links=[("x", "http://b.example/")])
        outcome = process_node(URL, db, query, 0, parse_pre("N"), CONFIG)
        assert outcome.failed
        assert outcome.forwards == []
        assert outcome.dead_end

    def test_failure_keeps_current_pre_continuations_lenient(self):
        # rem = L*1: nullable (evaluate q1 here) but also continuable via L.
        query = _query(WebQueryStep(parse_pre("L*1"), TOPIC_Q))
        db = _db("no match", links=[("x", "/deeper.html")])
        outcome = process_node(URL, db, query, 0, parse_pre("L*1"), CONFIG)
        assert outcome.failed
        (forward,) = outcome.forwards
        assert forward.step_index == 0  # still hunting for q1 matches

    def test_failure_kills_continuations_strict(self):
        query = _query(WebQueryStep(parse_pre("L*1"), TOPIC_Q))
        db = _db("no match", links=[("x", "/deeper.html")])
        outcome = process_node(URL, db, query, 0, parse_pre("L*1"), STRICT)
        assert outcome.forwards == []

    def test_success_also_continues_current_pre(self):
        # Both q1-forwarding (deeper L) and q2-forwarding must be emitted.
        query = _query(
            WebQueryStep(parse_pre("L*1"), TOPIC_Q),
            WebQueryStep(parse_pre("G"), DETAIL_Q),
        )
        db = _db("topic", links=[("a", "/deep.html"), ("b", "http://b.example/")])
        outcome = process_node(URL, db, query, 0, parse_pre("L*1"), CONFIG)
        steps = sorted((f.step_index, str(f.target)) for f in outcome.forwards)
        assert steps == [
            (0, "http://a.example/deep.html"),
            (1, "http://b.example/"),
        ]

    def test_chained_evaluation_same_node(self):
        # p2 nullable at the same node: both q1 and q2 run here ("acts twice").
        query = _query(
            WebQueryStep(parse_pre("N"), TOPIC_Q),
            WebQueryStep(parse_pre("N|G"), _title_query("q2", "topic")),
        )
        db = _db("topic page")
        outcome = process_node(URL, db, query, 0, parse_pre("N"), CONFIG)
        assert [k for k, __ in outcome.evaluations] == [0, 1]
        assert {label for label, __ in outcome.results} == {"q1", "q2"}

    def test_last_query_success_no_next_stage(self):
        query = _query(WebQueryStep(parse_pre("N"), TOPIC_Q))
        db = _db("topic", links=[("x", "http://b.example/")])
        outcome = process_node(URL, db, query, 0, parse_pre("N"), CONFIG)
        assert outcome.forwards == []  # rem is N; nothing left to do

    def test_tuples_scanned_positive_when_evaluating(self):
        query = _query(WebQueryStep(parse_pre("N"), TOPIC_Q))
        outcome = process_node(URL, _db("topic"), query, 0, parse_pre("N"), CONFIG)
        assert outcome.tuples_scanned > 0


class TestAlternationAndRepetition:
    def test_alternation_forwards_both_types(self):
        query = _query(WebQueryStep(parse_pre("G|L"), TOPIC_Q))
        db = _db("t", links=[("g", "http://b.example/"), ("l", "/x.html")])
        outcome = process_node(URL, db, query, 0, parse_pre("G|L"), CONFIG)
        assert len(outcome.forwards) == 2
        assert all(f.rem == parse_pre("N") for f in outcome.forwards)

    def test_bounded_repetition_counts_down(self):
        query = _query(WebQueryStep(parse_pre("L*3"), TOPIC_Q))
        db = _db("topic", links=[("l", "/next.html")])
        outcome = process_node(URL, db, query, 0, parse_pre("L*3"), CONFIG)
        (forward,) = outcome.forwards
        assert forward.rem == parse_pre("L*2")

    def test_unbounded_repetition_stable_state(self):
        query = _query(WebQueryStep(parse_pre("L*"), TOPIC_Q))
        db = _db("topic", links=[("l", "/next.html")])
        outcome = process_node(URL, db, query, 0, parse_pre("L*"), CONFIG)
        (forward,) = outcome.forwards
        assert forward.rem == parse_pre("L*")

    def test_interior_links_forward_to_self(self):
        query = _query(WebQueryStep(parse_pre("I.L"), TOPIC_Q))
        db = _db("t", links=[("top", "#top"), ("l", "/x.html")])
        outcome = process_node(URL, db, query, 0, parse_pre("I.L"), CONFIG)
        (forward,) = outcome.forwards
        assert forward.target == URL.without_fragment()
        assert forward.rem == parse_pre("L")
