"""Query-server crash/recovery and end-to-end reliability (§7.1 extension).

Three recovery paths keep completion exact when a server crashes mid-query:

* sender-side retries — the connect never succeeded, so the forwarder's
  :class:`~repro.net.reliable.ReliableChannel` keeps trying until the site
  restarts;
* client re-forwarding — the connect *did* succeed and the clone died
  inside the crash; the stall watchdog triggers
  :meth:`~repro.core.client.UserSiteClient.reforward_pending`;
* retraction — the site never comes back; the forwarder retires the
  entries once its retry budget is spent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import (
    EngineConfig,
    FaultPlan,
    NetworkConfig,
    QueryStatus,
    RetryPolicy,
    WebDisEngine,
)
from repro.net import Network, SimClock, TrafficStats
from repro.net.network import QUERY_PORT
from repro.web.builders import WebBuilder
from repro.web.campus import CAMPUS_QUERY_DISQL


def _star_web():
    builder = WebBuilder()
    builder.site("root.example").page(
        "/",
        title="root topic",
        links=[(f"leaf {i}", f"http://leaf{i}.example/") for i in range(3)],
    )
    for i in range(3):
        builder.site(f"leaf{i}.example").page(
            "/", title=f"leaf {i} topic", emphasized=[("b", f"answer {i}")]
        )
    return builder.build()


QUERY = (
    'select d.url, r.text\n'
    'from document d such that "http://root.example/" N|G d,\n'
    '     relinfon r such that r.delimiter = "b"\n'
    'where r.text contains "answer"'
)

RETRIES = RetryPolicy(max_attempts=8, base_delay=0.5, multiplier=2.0, jitter=0.0)


@dataclass(frozen=True)
class _Blob:
    size: int = 10
    kind: str = "blob"

    def size_bytes(self) -> int:
        return self.size


class TestInFlightLoss:
    def test_crash_between_connect_and_delivery_drops_payload(self):
        # Satellite: the Network._deliver drop path, at the network level.
        clock = SimClock()
        network = Network(clock, TrafficStats(), NetworkConfig(latency_base=1.0))
        network.register_site("a.example")
        network.register_site("b.example")
        received = []
        network.listen("b.example", 80, lambda s, p: received.append(p))
        assert network.send("a.example", "b.example", 80, _Blob())  # connect ok
        clock.schedule(0.5, lambda: network.crash_site("b.example"))
        clock.run()
        assert received == []  # lost in flight

        # After recovery (site up, listener re-bound) a resend goes through —
        # this is what protocol-level retries/re-forwards ride on.
        network.set_site_up("b.example")
        network.listen("b.example", 80, lambda s, p: received.append(p))
        assert network.send("a.example", "b.example", 80, _Blob())
        clock.run()
        assert len(received) == 1

    def test_reforward_recovers_clone_lost_in_crash(self):
        """Connect succeeded, clone lost inside the crash: no retry fires
        (the sender saw success), so the watchdog + reforward path is the
        one that resolves the orphaned CHT entry."""
        engine = WebDisEngine(_star_web(), net_config=NetworkConfig(latency_base=1.0))
        handle = engine.submit_disql(QUERY)
        # Root forwards at ~t=1.0 (connects succeed); deliveries land at
        # ~t=2.0.  Crash at 1.5 eats the clone in flight to leaf1.
        engine.crash_server("leaf1.example", at=1.5)
        engine.restart_server("leaf1.example", at=2.5)
        engine.client.watch(
            handle, quiet_timeout=3.0,
            on_stall=lambda h: engine.client.reforward_pending(h),
        )
        engine.run()
        assert handle.status is QueryStatus.COMPLETE
        assert handle.cht.imbalance() == 0
        assert {r.values[1] for r in handle.unique_rows()} == {
            "answer 0", "answer 1", "answer 2"
        }
        assert engine.stats.retried_sends == 0  # connect never failed


class TestCrashRecovery:
    def test_retry_bridges_crash_and_restart(self):
        """Crash *before* the forward: the connect fails HOST_DOWN and the
        forwarder's retries bridge the outage — no watchdog needed."""
        engine = WebDisEngine(
            _star_web(),
            config=EngineConfig(retry_policy=RETRIES),
            net_config=NetworkConfig(latency_base=1.0),
        )
        handle = engine.submit_disql(QUERY)
        engine.crash_server("leaf1.example", at=0.5)  # before root forwards
        engine.restart_server("leaf1.example", at=4.0)
        engine.run()
        assert handle.status is QueryStatus.COMPLETE
        assert handle.cht.imbalance() == 0
        assert {r.values[1] for r in handle.unique_rows()} == {
            "answer 0", "answer 1", "answer 2"
        }
        assert engine.stats.retried_sends >= 1
        assert engine.stats.retries_exhausted == 0

    def test_unrecovered_crash_retracts_after_exhaustion(self):
        """The site never restarts: the forwarder burns its retry budget,
        then falls back to the existing CHT-retraction path.  The query
        still completes exactly — with the dead site's answer missing."""
        engine = WebDisEngine(
            _star_web(),
            config=EngineConfig(
                retry_policy=RetryPolicy(max_attempts=3, base_delay=0.2, jitter=0.0)
            ),
            net_config=NetworkConfig(latency_base=1.0),
            trace=True,
        )
        handle = engine.submit_disql(QUERY)
        engine.crash_server("leaf1.example", at=0.5)
        engine.run()
        assert handle.status is QueryStatus.COMPLETE
        assert handle.cht.imbalance() == 0
        assert {r.values[1] for r in handle.unique_rows()} == {"answer 0", "answer 2"}
        assert engine.stats.retries_exhausted >= 1
        assert "unreachable-site" in engine.tracer.actions()

    def test_crash_via_fault_plan(self):
        engine = WebDisEngine(
            _star_web(),
            config=EngineConfig(retry_policy=RETRIES),
            net_config=NetworkConfig(latency_base=1.0),
        )
        engine.apply_faults(
            FaultPlan().crash("leaf2.example", at=0.5, restart_at=4.0)
        )
        handle = engine.submit_disql(QUERY)
        engine.run()
        assert handle.status is QueryStatus.COMPLETE
        assert len(handle.unique_rows()) == 3

    def test_crash_unknown_site_rejected(self):
        import pytest

        from repro.errors import SimulationError

        engine = WebDisEngine(_star_web())
        with pytest.raises(SimulationError):
            engine.crash_server("nonexistent.example")
        with pytest.raises(SimulationError):
            engine.restart_server("nonexistent.example")

    def test_restarted_server_state_is_blank(self):
        engine = WebDisEngine(_star_web())
        first = engine.run_query(QUERY)
        assert first.status is QueryStatus.COMPLETE
        server = engine.server_for("leaf1.example")
        assert server.log_table.entry_count() > 0
        engine.crash_server("leaf1.example")
        engine.restart_server("leaf1.example")
        assert server.log_table.entry_count() == 0
        assert server.queue_depth == 0
        assert engine.network.is_listening("leaf1.example", QUERY_PORT)
        # And it serves fresh queries again.
        second = engine.run_query(QUERY)
        assert second.status is QueryStatus.COMPLETE
        assert len(second.unique_rows()) == 3


class TestCancellationUnderRetries:
    def test_refused_dispatch_is_never_retried(self):
        """Acceptance: a cancelled query's REFUSED result dispatches must
        never consume retries — REFUSED *is* the termination signal — and
        every server the query reached must purge it."""
        engine = WebDisEngine(
            _star_web(),
            config=EngineConfig(retry_policy=RETRIES),
            net_config=NetworkConfig(latency_base=0.5),
            trace=True,
        )
        handle = engine.submit_disql(QUERY)
        engine.cancel(handle, at=0.6)  # root has the clone; no reply yet
        engine.run()
        assert handle.status is QueryStatus.CANCELLED
        assert engine.stats.refused_sends >= 1
        assert engine.stats.retried_sends == 0
        assert engine.stats.retries_exhausted == 0
        assert "purged" in engine.tracer.actions()


class TestChaos:
    def test_ten_percent_faults_with_retries_completes_exactly(self):
        """Acceptance: at a 10% transient fault rate, retries carry every
        query to exact CHT completion with the full answer set."""
        engine = WebDisEngine(
            _star_web(),
            config=EngineConfig(
                retry_policy=RetryPolicy(max_attempts=8, base_delay=0.05, seed=1)
            ),
        )
        engine.apply_faults(FaultPlan(seed=1).drop(0.10))
        handle = engine.submit_disql(QUERY)
        engine.run()
        assert handle.status is QueryStatus.COMPLETE
        assert handle.cht.imbalance() == 0
        assert {r.values[1] for r in handle.unique_rows()} == {
            "answer 0", "answer 1", "answer 2"
        }
        assert engine.stats.retries_exhausted == 0

    def test_chaos_campus_query_with_retries(self):
        engine = WebDisEngine(
            _build_campus(),
            config=EngineConfig(
                retry_policy=RetryPolicy(max_attempts=8, base_delay=0.05, seed=2)
            ),
        )
        engine.apply_faults(FaultPlan(seed=2).drop(0.10))
        handle = engine.submit_disql(CAMPUS_QUERY_DISQL)
        engine.run()
        assert handle.status is QueryStatus.COMPLETE
        assert handle.cht.imbalance() == 0
        assert len(handle.unique_rows("q2")) == 3
        assert engine.stats.failed_sends >= 1  # the plan actually bit
        assert engine.stats.retried_sends >= 1


def _build_campus():
    from repro.web import build_campus_web

    return build_campus_web()
