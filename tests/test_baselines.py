"""Tests for the data-shipping baseline and the hybrid engine."""

from __future__ import annotations

import pytest

from repro import EngineConfig, QueryStatus, WebDisEngine
from repro.baselines import DataShippingEngine, HybridEngine
from repro.web import SyntheticWebConfig, build_synthetic_web
from repro.web.campus import CAMPUS_QUERY_DISQL, EXPECTED_CONVENER_ROWS
from repro.web.synthetic import synthetic_start_url

SWEEP_CONFIG = SyntheticWebConfig(sites=6, pages_per_site=4, seed=77)
SWEEP_QUERY = (
    'select d.url from document d such that "http://site000.example/" (L|G)*3 d\n'
    'where d.title contains "topic"'
)


class TestDataShipping:
    def test_campus_answers_match_distributed(self, campus_web):
        ds = DataShippingEngine(campus_web)
        result = ds.run_query(CAMPUS_QUERY_DISQL)
        assert {r.values for r in result.unique_rows("q2")} == set(EXPECTED_CONVENER_ROWS)

    def test_documents_travel(self, campus_web):
        ds = DataShippingEngine(campus_web)
        result = ds.run_query(CAMPUS_QUERY_DISQL)
        assert result.documents_fetched > 0
        assert ds.stats.documents_shipped == result.documents_fetched
        assert ds.stats.document_bytes_shipped > 0

    def test_query_shipping_ships_no_documents(self, campus_web):
        qs = WebDisEngine(campus_web)
        qs.run_query(CAMPUS_QUERY_DISQL)
        assert qs.stats.documents_shipped == 0

    def test_data_shipping_sends_more_bytes(self, campus_web):
        ds = DataShippingEngine(campus_web)
        ds.run_query(CAMPUS_QUERY_DISQL)
        qs = WebDisEngine(campus_web)
        qs.run_query(CAMPUS_QUERY_DISQL)
        assert ds.stats.bytes_sent > qs.stats.bytes_sent

    def test_all_processing_at_user_site(self, campus_web):
        ds = DataShippingEngine(campus_web)
        ds.run_query(CAMPUS_QUERY_DISQL)
        # Document serving is trivial; node-query CPU is all at the client.
        site, __ = ds.stats.max_site_load()
        assert site == "user.example"

    def test_equivalence_on_synthetic_web(self):
        web = build_synthetic_web(SWEEP_CONFIG)
        ds = DataShippingEngine(web).run_query(SWEEP_QUERY)
        qs = WebDisEngine(web).run_query(SWEEP_QUERY)
        assert {r.values for r in ds.unique_rows()} == {
            r.values for r in qs.unique_rows()
        }

    def test_duplicate_suppression_applies(self):
        web = build_synthetic_web(SWEEP_CONFIG)
        ds = DataShippingEngine(web)
        ds.run_query(SWEEP_QUERY)
        # The cyclic synthetic web forces revisits; the shared log table
        # machinery must suppress them exactly as in the distributed engine.
        assert ds.stats.duplicates_dropped > 0

    def test_completion_time_set(self, campus_web):
        result = DataShippingEngine(campus_web).run_query(CAMPUS_QUERY_DISQL)
        assert result.response_time() is not None
        assert result.first_result_latency() <= result.response_time()

    def test_single_query_per_instance(self, campus_web):
        ds = DataShippingEngine(campus_web)
        ds.run_query(CAMPUS_QUERY_DISQL)
        with pytest.raises(RuntimeError):
            ds.submit_disql(CAMPUS_QUERY_DISQL)

    def test_missing_start_page_completes(self, campus_web):
        ds = DataShippingEngine(campus_web)
        result = ds.run_query(
            'select d.url from document d such that "http://www.csa.iisc.ernet.in/zzz" L d'
        )
        assert result.response_time() is not None
        assert result.rows() == []

    def test_fetch_pipelining_bounded(self, campus_web):
        ds = DataShippingEngine(campus_web, max_concurrent_fetches=1)
        result = ds.run_query(CAMPUS_QUERY_DISQL)
        assert {r.values for r in result.unique_rows("q2")} == set(EXPECTED_CONVENER_ROWS)


class TestHybrid:
    def test_full_participation_equals_query_shipping(self, campus_web):
        hybrid = HybridEngine(campus_web, campus_web.site_names)
        handle = hybrid.run_query(CAMPUS_QUERY_DISQL)
        assert handle.status is QueryStatus.COMPLETE
        assert hybrid.stats.documents_shipped == 0
        assert {r.values for r in handle.unique_rows("q2")} == set(EXPECTED_CONVENER_ROWS)

    def test_zero_participation_fully_central(self, campus_web):
        hybrid = HybridEngine(campus_web, [])
        handle = hybrid.run_query(CAMPUS_QUERY_DISQL)
        assert handle.status is QueryStatus.COMPLETE
        assert {r.values for r in handle.unique_rows("q2")} == set(EXPECTED_CONVENER_ROWS)
        assert hybrid.stats.documents_shipped > 0

    def test_partial_participation_intermediate_traffic(self, campus_web):
        full = HybridEngine(campus_web, campus_web.site_names)
        full.run_query(CAMPUS_QUERY_DISQL)
        partial = HybridEngine(
            campus_web, ["www.csa.iisc.ernet.in", "dsl.serc.iisc.ernet.in"]
        )
        partial.run_query(CAMPUS_QUERY_DISQL)
        none = HybridEngine(campus_web, [])
        none.run_query(CAMPUS_QUERY_DISQL)
        assert (
            full.stats.document_bytes_shipped
            < partial.stats.document_bytes_shipped
            <= none.stats.document_bytes_shipped
        )

    @pytest.mark.parametrize("participating", [0, 2, 4, 6])
    def test_answers_invariant_across_participation(self, participating):
        web = build_synthetic_web(SWEEP_CONFIG)
        sites = web.site_names[:participating]
        hybrid = HybridEngine(web, sites)
        handle = hybrid.run_query(SWEEP_QUERY)
        assert handle.status is QueryStatus.COMPLETE
        reference = WebDisEngine(web).run_query(SWEEP_QUERY)
        assert {r.values for r in handle.unique_rows()} == {
            r.values for r in reference.unique_rows()
        }

    def test_central_processor_load_at_user_site(self, campus_web):
        hybrid = HybridEngine(campus_web, [])
        hybrid.run_query(CAMPUS_QUERY_DISQL)
        assert hybrid.stats.processing_by_site["user.example"] > 0
