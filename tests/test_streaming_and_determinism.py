"""Result streaming hooks and end-to-end determinism."""

from __future__ import annotations

from repro import QueryStatus, WebDisEngine
from repro.web import SyntheticWebConfig, build_campus_web, build_synthetic_web
from repro.web.campus import CAMPUS_QUERY_DISQL
from repro.web.synthetic import synthetic_start_url


class TestStreamingHooks:
    def test_on_result_fires_per_row(self, campus_web):
        engine = WebDisEngine(campus_web)
        seen: list[tuple[str, float]] = []
        handle = engine.submit_disql(
            CAMPUS_QUERY_DISQL,
            on_result=lambda label, row, t: seen.append((label, t)),
        )
        engine.run()
        assert len(seen) == len(handle.results)
        assert seen  # rows actually streamed

    def test_rows_stream_before_completion(self, campus_web):
        engine = WebDisEngine(campus_web)
        times: list[float] = []
        handle = engine.submit_disql(
            CAMPUS_QUERY_DISQL, on_result=lambda label, row, t: times.append(t)
        )
        engine.run()
        assert min(times) < handle.completion_time

    def test_on_complete_fires_once_at_completion(self, campus_web):
        engine = WebDisEngine(campus_web)
        events: list[str] = []
        handle = engine.submit_disql(
            CAMPUS_QUERY_DISQL,
            on_complete=lambda h: events.append(h.status.value),
        )
        engine.run()
        assert events == ["complete"]
        assert handle.status is QueryStatus.COMPLETE

    def test_no_complete_callback_on_cancel(self, campus_web):
        from repro import NetworkConfig

        engine = WebDisEngine(campus_web, net_config=NetworkConfig(latency_base=0.5))
        events: list[str] = []
        handle = engine.submit_disql(
            CAMPUS_QUERY_DISQL, on_complete=lambda h: events.append("done")
        )
        engine.cancel(handle, at=0.1)
        engine.run()
        assert events == []


CONFIG = SyntheticWebConfig(sites=6, pages_per_site=5, seed=202)
QUERY = (
    'select d.url from document d such that "{start}" (L|G)*3 d\n'
    'where d.title contains "topic"'
)


def _run():
    engine = WebDisEngine(build_synthetic_web(CONFIG))
    handle = engine.run_query(QUERY.format(start=synthetic_start_url(CONFIG)))
    return engine, handle


class TestDeterminism:
    """Identical runs must be bit-identical: same results, stats, timings."""

    def test_results_identical(self):
        __, h1 = _run()
        __, h2 = _run()
        assert [(l, r.values) for l, r, __ in h1.results] == [
            (l, r.values) for l, r, __ in h2.results
        ]

    def test_timings_identical(self):
        __, h1 = _run()
        __, h2 = _run()
        assert h1.completion_time == h2.completion_time
        assert h1.first_result_time == h2.first_result_time

    def test_stats_identical(self):
        e1, __ = _run()
        e2, __ = _run()
        assert e1.stats.summary() == e2.stats.summary()
        assert e1.stats.messages_by_site == e2.stats.messages_by_site

    def test_trace_identical(self):
        def traced():
            engine = WebDisEngine(build_synthetic_web(CONFIG), trace=True)
            engine.run_query(QUERY.format(start=synthetic_start_url(CONFIG)))
            return [str(e) for e in engine.tracer.events]

        assert traced() == traced()
