"""Tests for DISQL -> web-query translation (select splitting, chaining)."""

from __future__ import annotations

import pytest

from repro.disql import compile_disql, format_disql, parse_disql, translate
from repro.errors import DisqlSemanticsError
from repro.pre import parse_pre
from repro.relational.expr import Attr

from tests.test_disql_parser import EXAMPLE_1, EXAMPLE_2


class TestExample1Translation:
    def test_single_step(self):
        query = compile_disql(EXAMPLE_1)
        assert query.num_steps == 1

    def test_start_urls(self):
        query = compile_disql(EXAMPLE_1)
        assert [str(u) for u in query.start_urls] == ["http://dsl.serc.iisc.ernet.in/"]

    def test_pre(self):
        query = compile_disql(EXAMPLE_1)
        assert query.steps[0].pre == parse_pre("L*")

    def test_node_query_contents(self):
        node_query = compile_disql(EXAMPLE_1).steps[0].query
        assert node_query.select == (Attr("a", "base"), Attr("a", "href"))
        assert [t.relation for t in node_query.tables] == ["document", "anchor"]
        assert "a.ltype" in str(node_query.where)


class TestExample2Translation:
    def test_two_steps(self):
        assert compile_disql(EXAMPLE_2).num_steps == 2

    def test_formalism_matches_paper(self):
        # Q = http://csa.iisc.ernet.in  L  q1  G.(L*1)  q2
        query = compile_disql(EXAMPLE_2)
        assert query.steps[0].pre == parse_pre("L")
        assert query.steps[1].pre == parse_pre("G.(L*1)")

    def test_select_split_per_step(self):
        query = compile_disql(EXAMPLE_2)
        assert query.steps[0].query.select == (Attr("d0", "url"),)
        assert query.steps[1].query.select == (Attr("d1", "url"), Attr("r", "text"))

    def test_such_that_condition_folded_into_where(self):
        q2 = compile_disql(EXAMPLE_2).steps[1].query
        text = str(q2.where)
        assert "r.delimiter" in text and "convener" in text

    def test_labels(self):
        query = compile_disql(EXAMPLE_2)
        assert [s.query.label for s in query.steps] == ["q1", "q2"]

    def test_select_header_preserves_user_order(self):
        query = compile_disql(EXAMPLE_2)
        assert query.select_header == ("d0.url", "d1.url", "r.text")


class TestSemanticErrors:
    def test_subquery_without_path(self):
        text = (
            "select d.url, a.href\n"
            'from document d such that "http://x.example" L d\n'
            'where d.title contains "x"\n'
            "     anchor a"
        )
        with pytest.raises(DisqlSemanticsError):
            compile_disql(text)

    def test_broken_chain(self):
        text = (
            "select d0.url, d1.url\n"
            'from document d0 such that "http://x.example" L d0,\n'
            "     document d1 such that nosuch G d1"
        )
        with pytest.raises(DisqlSemanticsError):
            compile_disql(text)

    def test_start_urls_only_in_first_step(self):
        text = (
            "select d0.url, d1.url\n"
            'from document d0 such that "http://x.example" L d0,\n'
            '     document d1 such that "http://y.example" G d1'
        )
        with pytest.raises(DisqlSemanticsError):
            compile_disql(text)

    def test_alias_source_in_first_step(self):
        text = "select d.url from document d such that z L d"
        with pytest.raises(DisqlSemanticsError):
            compile_disql(text)

    def test_duplicate_alias_across_steps(self):
        text = (
            "select d.url\n"
            'from document d such that "http://x.example" L d,\n'
            "     document d such that d G d"
        )
        with pytest.raises(DisqlSemanticsError):
            compile_disql(text)

    def test_where_crossing_subquery_boundary(self):
        text = (
            "select d0.url, d1.url\n"
            'from document d0 such that "http://x.example" L d0,\n'
            "     document d1 such that d0 G d1\n"
            'where d0.title contains "x"'
        )
        with pytest.raises(DisqlSemanticsError):
            compile_disql(text)

    def test_select_of_undeclared_alias(self):
        text = 'select z.url from document d such that "http://x.example" L d'
        with pytest.raises(DisqlSemanticsError):
            compile_disql(text)

    def test_path_on_anchor_rejected(self):
        text = 'select a.href from anchor a such that "http://x.example" L a'
        with pytest.raises(DisqlSemanticsError):
            compile_disql(text)


class TestDefaultSelect:
    def test_step_with_no_selected_attrs_projects_url(self):
        # The user only selects from step 2; step 1 still needs a success test.
        text = (
            "select d1.url\n"
            'from document d0 such that "http://x.example" L d0\n'
            'where d0.title contains "lab"\n'
            "     document d1 such that d0 G d1"
        )
        query = compile_disql(text)
        assert query.steps[0].query.select == (Attr("d0", "url"),)


class TestFormatterRoundTrip:
    @pytest.mark.parametrize("text", [EXAMPLE_1, EXAMPLE_2])
    def test_round_trip(self, text):
        parsed = parse_disql(text)
        rendered = format_disql(parsed)
        assert parse_disql(rendered) == parsed

    def test_render_contains_clauses(self):
        rendered = format_disql(parse_disql(EXAMPLE_2))
        assert rendered.startswith("select d0.url, d1.url, r.text")
        assert "such that" in rendered and "where" in rendered
