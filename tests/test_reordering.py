"""End-to-end message reordering: the CHT must stay exact.

Reports to the user travel on independent connections, so a slow link can
deliver a *child's* report (which retires an entry) before the *parent's*
report (which announced it).  The signed-multiset CHT absorbs this
(`repro/core/cht.py` has the balance argument); these tests force the
scenario with per-link latency overrides and verify completion stays exact
— neither premature nor missed.
"""

from __future__ import annotations

import pytest

from repro import NetworkConfig, QueryStatus, WebDisEngine
from repro.web.builders import WebBuilder

USER = "user.example"


def _chain_web():
    """root -> mid -> leaf, one answer at each hop."""
    builder = WebBuilder()
    builder.site("root.example").page(
        "/", title="root topic", links=[("mid", "http://mid.example/")]
    )
    builder.site("mid.example").page(
        "/", title="mid topic", links=[("leaf", "http://leaf.example/")]
    )
    builder.site("leaf.example").page("/", title="leaf topic")
    return builder.build()


QUERY = (
    'select d.url from document d such that "http://root.example/" N|G|G.G d\n'
    'where d.title contains "topic"'
)


def _run(overrides):
    engine = WebDisEngine(
        _chain_web(),
        net_config=NetworkConfig(latency_base=0.05, latency_overrides=overrides),
    )
    handle = engine.run_query(QUERY)
    return engine, handle


class TestReordering:
    def test_baseline_in_order(self):
        engine, handle = _run(None)
        assert handle.status is QueryStatus.COMPLETE
        assert len(handle.unique_rows()) == 3

    @pytest.mark.parametrize(
        "slow_site", ["root.example", "mid.example"]
    )
    def test_slow_parent_report_still_completes(self, slow_site):
        """The parent's report (announcing children) arrives LAST."""
        overrides = {(slow_site, USER): 5.0}
        engine, handle = _run(overrides)
        assert handle.status is QueryStatus.COMPLETE
        assert len(handle.unique_rows()) == 3
        handle.cht.check_consistency()
        assert handle.cht.imbalance() == 0

    def test_deletion_really_arrives_before_addition(self):
        """Confirm the scenario actually reorders: slowing mid's report (the
        one announcing the leaf entry) lets the leaf's own report beat it to
        the user, driving the leaf's CHT count negative transiently —
        visible in the audit history."""
        overrides = {("mid.example", USER): 5.0}
        engine, handle = _run(overrides)
        history = handle.cht.history()
        # Find the leaf entry: its deletion must precede its addition.
        events = [
            (record.deleted, record.time)
            for record in history
            if "leaf.example" in str(record.entry.node)
        ]
        assert len(events) == 2
        (first_deleted, t1), (second_deleted, t2) = events
        assert first_deleted and not second_deleted  # delete recorded first
        assert t1 <= t2
        assert handle.status is QueryStatus.COMPLETE

    def test_no_premature_completion_mid_reorder(self):
        """At no point during the reordered run may all_deleted() hold while
        clones are still active — completion fires exactly once, at the end."""
        overrides = {("root.example", USER): 5.0}
        engine = WebDisEngine(
            _chain_web(),
            net_config=NetworkConfig(latency_base=0.05, latency_overrides=overrides),
        )
        completions: list[float] = []
        handle = engine.submit_disql(
            QUERY, on_complete=lambda h: completions.append(engine.clock.now)
        )
        engine.run()
        assert completions == [handle.completion_time]
        # Completion must wait for the slow root report (>= 5 s latency).
        assert handle.completion_time > 5.0

    def test_wan_lan_asymmetry_changes_timing_only(self):
        symmetric_engine, symmetric = _run(None)
        overrides = {("leaf.example", USER): 1.0, ("mid.example", USER): 0.5}
        skewed_engine, skewed = _run(overrides)
        assert {r.values for r in skewed.unique_rows()} == {
            r.values for r in symmetric.unique_rows()
        }
        assert skewed.response_time() > symmetric.response_time()
