"""Compiled plans: property-checked against the naive evaluator.

The compiler (:mod:`repro.relational.compile`) must be *semantically
invisible*.  Two oracles, two property families:

* against :func:`evaluate_node_query_naive` (the untouched semantic
  oracle): identical rows in identical order.  Like the pushdown suite,
  this family quantifies over *type-safe* expressions only — pushdown may
  legitimately reorder which conjunct of an ``And`` raises first, so
  error behaviour is not comparable against the naive evaluator.
* against :func:`evaluate_node_query` (the pushdown interpreter): exact
  equivalence over a *hostile* grammar too — mixed-type comparisons and
  missing attributes must produce the same rows or raise the same error
  class, because compiled plans use the interpreter's own filter
  placement (``_plan_filters``) and its lazy error semantics.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.errors import EvaluationError
from repro.html.generator import PageSpec, render_page
from repro.model.database import build_documents_table, build_node_database
from repro.relational.compile import compile_node_query
from repro.relational.expr import And, Attr, Compare, Contains, Literal, Not, Or
from repro.relational.query import (
    NodeQuery,
    TableDecl,
    evaluate_node_query,
    evaluate_node_query_naive,
)
from repro.urlutils import parse_url

URL = parse_url("http://a.example/page.html")
SIBLING = parse_url("http://a.example/other.html")


def _page(title: str, links, emphasized):
    return render_page(
        PageSpec(
            title=title,
            paragraphs=["some text body"],
            links=links,
            emphasized=emphasized,
            ruled=["CONVENER someone"],
        )
    )


DATABASE = build_node_database(
    URL,
    _page(
        "alpha topic page",
        links=[
            ("one", "http://b.example/"),
            ("two", "/local.html"),
            ("three", "#frag"),
        ],
        emphasized=[("b", "bold detail"), ("i", "italic note")],
    ),
)

SITE_DOCUMENTS = build_documents_table(
    [
        (URL, _page("alpha topic page", [("one", "/other.html")], [("b", "x")])),
        (SIBLING, _page("beta archive page", [("back", "/page.html")], [("i", "y")])),
    ]
)

_ATTRS = [
    Attr("d", "title"),
    Attr("d", "url"),
    Attr("a", "ltype"),
    Attr("a", "href"),
    Attr("a", "label"),
    Attr("r", "delimiter"),
    Attr("r", "text"),
]
# All-string operands: safe to compare against the naive evaluator
# (see module doc — pushdown reorders which conjunct raises first).
_SAFE_LITERALS = [Literal(v) for v in ("G", "L", "b", "topic", "detail", "x")]

# Mixed-type literals on purpose: the compiled comparison path must keep
# the interpreter's number-vs-numeric-string coercion and raise the same
# EvaluationError on genuinely uncomparable operands.
_HOSTILE_LITERALS = _SAFE_LITERALS + [Literal(5), Literal("5")]

# A deliberately bogus attribute: the interpreter defers missing-attribute
# errors to evaluation time (short-circuits may skip them), and the
# compiled closures must defer identically.
_BROKEN = Attr("d", "no_such_attribute")


def _comparisons(operands, attrs):
    ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
    compares = st.builds(Compare, ops, st.sampled_from(operands), st.sampled_from(operands))
    contains = st.builds(
        Contains,
        st.sampled_from(attrs),
        st.sampled_from(
            [Literal("topic"), Literal("G"), Literal("b"), Literal("zzz")]
        ),
    )
    return st.one_of(compares, contains)


def _expr_strategy(operands, attrs):
    return st.recursive(
        _comparisons(operands, attrs),
        lambda children: st.one_of(
            st.builds(And, children, children),
            st.builds(Or, children, children),
            st.builds(Not, children),
        ),
        max_leaves=6,
    )


_safe_exprs = _expr_strategy(_ATTRS + _SAFE_LITERALS, _ATTRS)
_hostile_exprs = _expr_strategy(
    _ATTRS + _HOSTILE_LITERALS + [_BROKEN], _ATTRS + [_BROKEN]
)

_selects = st.lists(
    st.sampled_from(_ATTRS), min_size=1, max_size=3, unique_by=lambda a: (a.alias, a.name)
)


def _query(select, where, *, sitewide=()):
    return NodeQuery(
        select=tuple(select),
        tables=(
            TableDecl("document", "d"),
            TableDecl("anchor", "a"),
            TableDecl("relinfon", "r"),
        ),
        where=where,
        sitewide_aliases=tuple(sitewide),
    )


def _outcome(run):
    """Rows-in-order, or the error class: both sides must match exactly."""
    try:
        return [(row.header, row.values) for row in run()]
    except EvaluationError:
        return "evaluation-error"
    except KeyError:
        return "key-error"


@given(_selects, _safe_exprs)
@settings(max_examples=300, deadline=None)
def test_compiled_matches_naive(select, where):
    query = _query(select, where)
    plan = compile_node_query(query)
    assert _outcome(lambda: plan.execute(DATABASE)) == _outcome(
        lambda: evaluate_node_query_naive(query, DATABASE)
    )


@given(_selects, _safe_exprs)
@settings(max_examples=150, deadline=None)
def test_compiled_matches_naive_sitewide(select, where):
    query = _query(select, where, sitewide=("d",))
    plan = compile_node_query(query)
    assert _outcome(lambda: plan.execute(DATABASE, SITE_DOCUMENTS)) == _outcome(
        lambda: evaluate_node_query_naive(query, DATABASE, SITE_DOCUMENTS)
    )


@given(_selects, _hostile_exprs)
@settings(max_examples=300, deadline=None)
def test_compiled_matches_pushdown_interpreter_exactly(select, where):
    """Hostile grammar: same rows or the same error class as the interpreter."""
    query = _query(select, where)
    plan = compile_node_query(query)
    assert _outcome(lambda: plan.execute(DATABASE)) == _outcome(
        lambda: evaluate_node_query(query, DATABASE)
    )


@given(_hostile_exprs)
@settings(max_examples=100, deadline=None)
def test_compiled_plan_is_reusable(where):
    """One compiled plan, many executions: no state leaks between runs."""
    query = _query([Attr("d", "url")], where)
    plan = compile_node_query(query)
    first = _outcome(lambda: plan.execute(DATABASE))
    second = _outcome(lambda: plan.execute(DATABASE))
    assert first == second
