"""The seeded, composable FaultPlan DSL."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro import FaultPlan, SendOutcome, WebDisEngine
from repro.errors import SimulationError
from repro.net import Network, SimClock, TrafficStats
from repro.net.faults import DropRule, PartitionRule
from repro.net.network import QUERY_PORT
from repro.web.builders import WebBuilder


@dataclass(frozen=True)
class _Blob:
    size: int = 10
    kind: str = "blob"

    def size_bytes(self) -> int:
        return self.size


def _net(*sites):
    clock = SimClock()
    network = Network(clock, TrafficStats())
    for site in sites or ("a.example", "b.example"):
        network.register_site(site)
        network.listen(site, 80, lambda s, p: None)
    return clock, network


def _pair_web():
    builder = WebBuilder()
    builder.site("a.example").page("/", title="a")
    builder.site("b.example").page("/", title="b")
    return builder.build()


class TestRules:
    def test_drop_rule_filters(self):
        rule = DropRule(1.0, src="a", dst="b", port=80, start=1.0, end=2.0)
        assert rule.matches("a", "b", 80, 1.5)
        assert not rule.matches("x", "b", 80, 1.5)  # wrong src
        assert not rule.matches("a", "x", 80, 1.5)  # wrong dst
        assert not rule.matches("a", "b", 81, 1.5)  # wrong port
        assert not rule.matches("a", "b", 80, 0.5)  # before window
        assert not rule.matches("a", "b", 80, 2.0)  # end is exclusive

    def test_drop_rule_wildcards(self):
        rule = DropRule(1.0)
        assert rule.matches("anything", "anywhere", 9999, 1e9)

    def test_partition_rule_severs_both_directions(self):
        rule = PartitionRule(frozenset({"a"}), frozenset({"b"}), start=0.0, end=5.0)
        assert rule.severs("a", "b", 1.0)
        assert rule.severs("b", "a", 1.0)
        assert not rule.severs("a", "c", 1.0)  # edge not crossing the cut
        assert not rule.severs("a", "b", 5.0)  # window over

    def test_validation(self):
        with pytest.raises(SimulationError):
            FaultPlan().drop(1.5)
        with pytest.raises(SimulationError):
            FaultPlan().crash("a.example", at=2.0, restart_at=1.0)

    def test_crash_rules_need_an_engine(self):
        __, network = _net()
        plan = FaultPlan().crash("a.example", at=1.0)
        with pytest.raises(SimulationError):
            plan.install(network)


class TestInstalledInjector:
    def test_certain_drop_faults_matching_sends(self):
        clock, network = _net()
        FaultPlan().drop(1.0, src="a.example", dst="b.example").install(network)
        assert network.send("a.example", "b.example", 80, _Blob()) is SendOutcome.FAULT
        # The reverse edge does not match the rule.
        assert network.send("b.example", "a.example", 80, _Blob()) is SendOutcome.DELIVERED

    def test_flaky_window(self):
        clock, network = _net()
        FaultPlan().flaky("a.example", "b.example", start=1.0, end=2.0).install(network)
        assert network.send("a.example", "b.example", 80, _Blob()) is SendOutcome.DELIVERED
        clock.schedule_at(1.5, lambda: None)
        clock.run()
        assert network.send("a.example", "b.example", 80, _Blob()) is SendOutcome.FAULT
        clock.schedule_at(3.0, lambda: None)
        clock.run()
        assert network.send("a.example", "b.example", 80, _Blob()) is SendOutcome.DELIVERED

    def test_partition_blocks_both_directions(self):
        clock, network = _net("a.example", "b.example", "c.example")
        FaultPlan().partition(["a.example"], ["b.example"], end=10.0).install(network)
        assert network.send("a.example", "b.example", 80, _Blob()) is SendOutcome.FAULT
        assert network.send("b.example", "a.example", 80, _Blob()) is SendOutcome.FAULT
        # c is on neither side: unaffected.
        assert network.send("a.example", "c.example", 80, _Blob()) is SendOutcome.DELIVERED

    def test_seeded_drops_replay_identically(self):
        def outcomes(seed):
            clock, network = _net()
            FaultPlan(seed=seed).drop(0.5).install(network)
            return [
                network.send("a.example", "b.example", 80, _Blob()) for __ in range(32)
            ]

        first, second = outcomes(3), outcomes(3)
        assert first == second
        assert SendOutcome.FAULT in first and SendOutcome.DELIVERED in first
        assert outcomes(3) != outcomes(4)

    def test_probability_zero_never_drops(self):
        clock, network = _net()
        FaultPlan().drop(0.0).install(network)
        for __ in range(16):
            assert network.send("a.example", "b.example", 80, _Blob())


class TestCrashSchedule:
    def test_crash_and_restart_applied_through_engine(self):
        engine = WebDisEngine(_pair_web())
        plan = FaultPlan().crash("a.example", at=1.0, restart_at=2.0)
        engine.apply_faults(plan)
        observed = {}

        def probe(label):
            observed[label] = (
                engine.network.is_site_up("a.example"),
                engine.network.is_listening("a.example", QUERY_PORT),
            )

        engine.clock.schedule_at(1.5, lambda: probe("down"))
        engine.clock.schedule_at(2.5, lambda: probe("up"))
        engine.run()
        assert observed["down"] == (False, False)
        assert observed["up"] == (True, True)


class TestDescribe:
    def test_describe_lists_every_rule(self):
        plan = (
            FaultPlan(seed=9)
            .drop(0.1, dst="b.example", port=80)
            .flaky("a.example", "b.example", start=1.0, end=2.0)
            .partition(["a.example"], ["b.example"], start=0.0, end=5.0)
            .crash("a.example", at=1.0, restart_at=2.0)
        )
        text = plan.describe()
        assert "seed=9" in text
        assert "drop p=0.1" in text
        assert "partition" in text
        assert "crash a.example at 1.0" in text
        assert "restart at 2.0" in text
