"""The asyncio transport: real sockets behind the simulator's seam.

Everything here runs against ``127.0.0.1`` TCP — the same protocol objects
the simulator drives, but framed over real connections with delivery acks.
Covers outcome classification off the simulator (REFUSED vs HOST_DOWN from
actual connect errors), the :class:`ReliableChannel` retry properties on a
deferred backend (the satellite requirement: same semantics on *both*
transports), wire-level chaos through the in-path proxy, and end-to-end
engine runs including the sim-vs-socket equivalence check and crash
recovery with real listener teardowns.

No pytest-asyncio in the container: each test drives its own loop via
``asyncio.run``.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.baselines.docservice import FetchRequest
from repro.core.aio_engine import AsyncioWebDisEngine
from repro.core.client import QueryStatus
from repro.core.engine import WebDisEngine, build_engine
from repro.core.config import EngineConfig
from repro.core.supervisor import QuerySupervisor, RecoveryPolicy
from repro.errors import SimulationError
from repro.net import (
    FIRST_RESULT_PORT,
    HELPER_PORT,
    QUERY_PORT,
    Network,
    NetworkConfig,
    SendOutcome,
    SimClock,
    TrafficStats,
    refusal_outcome,
)
from repro.net.aio import AsyncioTransport, StaticPortMap
from repro.net.chaos import ChaosProxy, ChaosRules
from repro.net.faults import FaultPlan
from repro.net.reliable import ReliableChannel, RetryPolicy
from repro.testing.invariants import check_run
from repro.urlutils import parse_url
from repro.web.builders import WebBuilder


def _payload(request_id: int = 1) -> FetchRequest:
    return FetchRequest(
        url=parse_url("http://a.example/doc"),
        reply_site="user.example",
        reply_port=FIRST_RESULT_PORT,
        request_id=request_id,
    )


async def _transport(*sites: str, **kwargs) -> AsyncioTransport:
    transport = AsyncioTransport(**kwargs)
    for site in sites:
        transport.register_site(site)
    return transport


async def _send(transport: AsyncioTransport, *args) -> SendOutcome:
    """Send and await the settled outcome (inline or deferred)."""
    loop = asyncio.get_running_loop()
    fut: asyncio.Future = loop.create_future()
    first = transport.send(*args, on_outcome=fut.set_result)
    if first is not SendOutcome.IN_FLIGHT:
        return first
    return await asyncio.wait_for(fut, 10.0)


class TestRefusalClassification:
    def test_daemon_ports_mean_host_down(self):
        assert refusal_outcome(QUERY_PORT) is SendOutcome.HOST_DOWN
        assert refusal_outcome(HELPER_PORT) is SendOutcome.HOST_DOWN

    def test_result_ports_mean_refused(self):
        assert refusal_outcome(FIRST_RESULT_PORT) is SendOutcome.REFUSED
        assert refusal_outcome(FIRST_RESULT_PORT + 37) is SendOutcome.REFUSED


class TestStaticPortMap:
    def test_same_mapping_in_every_process(self):
        sites = ["b.example", "a.example", "user.example"]
        one = StaticPortMap(sites, first_base=21000)
        # A cooperating process builds its own instance from the same list
        # (different order — the map sorts) and must agree byte-for-byte.
        two = StaticPortMap(sorted(sites), first_base=21000)
        for site in sites:
            for port in (QUERY_PORT, HELPER_PORT, FIRST_RESULT_PORT + 3):
                assert one.lookup(site, port) == two.lookup(site, port)

    def test_ranges_do_not_overlap(self):
        ports = StaticPortMap(["a", "b"], first_base=21000)
        assert ports.lookup("a", QUERY_PORT) == 21000
        assert ports.lookup("b", QUERY_PORT) == 21000 + StaticPortMap.SPAN

    def test_unknown_site_or_out_of_range_port(self):
        ports = StaticPortMap(["a"], first_base=21000)
        assert ports.lookup("ghost", QUERY_PORT) is None
        assert ports.lookup("a", QUERY_PORT - 1) is None
        assert ports.lookup("a", QUERY_PORT + StaticPortMap.SPAN) is None


class TestTrafficStatsOwnership:
    def test_cross_thread_write_rejected(self):
        stats = TrafficStats()
        stats.bind_owner()
        stats.messages_sent += 1  # owner thread: fine
        errors: list[BaseException] = []

        def intrude():
            try:
                stats.messages_sent += 1
            except BaseException as exc:  # noqa: BLE001 - asserting the type below
                errors.append(exc)

        thread = threading.Thread(target=intrude)
        thread.start()
        thread.join()
        assert len(errors) == 1 and isinstance(errors[0], RuntimeError)

    def test_unbind_restores_free_writes(self):
        stats = TrafficStats()
        stats.bind_owner()
        stats.unbind_owner()
        done = threading.Event()

        def write():
            stats.messages_sent += 1
            done.set()

        thread = threading.Thread(target=write)
        thread.start()
        thread.join()
        assert done.is_set() and stats.messages_sent == 1


class TestAsyncioTransportSends:
    def test_delivered_means_processed(self):
        async def main():
            transport = await _transport("a.example", "b.example")
            try:
                seen = []
                transport.listen(
                    "b.example", QUERY_PORT, lambda src, msg: seen.append((src, msg))
                )
                outcome = await _send(
                    transport, "a.example", "b.example", QUERY_PORT, _payload()
                )
                assert outcome is SendOutcome.DELIVERED
                # The ack is written after the listener ran: processed, not
                # merely buffered somewhere in the kernel.
                assert seen == [("a.example", _payload())]
                assert transport.stats.messages_sent == 1
            finally:
                await transport.aclose()

        asyncio.run(main())

    def test_unknown_destination_settles_inline(self):
        async def main():
            transport = await _transport("a.example")
            try:
                outcome = transport.send(
                    "a.example", "ghost.example", QUERY_PORT, _payload()
                )
                assert outcome is SendOutcome.HOST_DOWN
                assert transport.stats.unknown_host_sends == 1
            finally:
                await transport.aclose()

        asyncio.run(main())

    def test_unregistered_source_raises(self):
        async def main():
            transport = await _transport("a.example")
            try:
                with pytest.raises(SimulationError, match="unregistered"):
                    transport.send("ghost.example", "a.example", QUERY_PORT, _payload())
            finally:
                await transport.aclose()

        asyncio.run(main())

    def test_closed_result_port_is_genuinely_refused(self):
        # The §2.8 termination signal: the port-map entry survives close(),
        # so a send hits a real ECONNREFUSED and classifies as REFUSED.
        async def main():
            transport = await _transport("a.example", "b.example")
            try:
                transport.listen("b.example", FIRST_RESULT_PORT, lambda s, m: None)
                transport.close("b.example", FIRST_RESULT_PORT)
                outcome = await _send(
                    transport, "a.example", "b.example", FIRST_RESULT_PORT, _payload()
                )
                assert outcome is SendOutcome.REFUSED
                assert transport.stats.refused_sends == 1
            finally:
                await transport.aclose()

        asyncio.run(main())

    def test_never_listening_daemon_port_is_host_down(self):
        async def main():
            transport = await _transport("a.example", "b.example")
            try:
                outcome = await _send(
                    transport, "a.example", "b.example", QUERY_PORT, _payload()
                )
                assert outcome is SendOutcome.HOST_DOWN
            finally:
                await transport.aclose()

        asyncio.run(main())

    def test_crash_site_tears_down_for_real(self):
        async def main():
            transport = await _transport("a.example", "b.example")
            try:
                transport.listen("b.example", QUERY_PORT, lambda s, m: None)
                transport.crash_site("b.example")
                assert not transport.is_listening("b.example", QUERY_PORT)
                outcome = await _send(
                    transport, "a.example", "b.example", QUERY_PORT, _payload()
                )
                assert outcome is SendOutcome.HOST_DOWN
                # Re-listen = recovery: the very next send goes through.
                transport.listen("b.example", QUERY_PORT, lambda s, m: None)
                outcome = await _send(
                    transport, "a.example", "b.example", QUERY_PORT, _payload()
                )
                assert outcome is SendOutcome.DELIVERED
            finally:
                await transport.aclose()

        asyncio.run(main())

    def test_oversized_payload_rejected_before_the_wire(self):
        async def main():
            transport = await _transport(
                "a.example", "b.example",
                config=NetworkConfig(max_frame_bytes=64),
            )
            try:
                transport.listen("b.example", QUERY_PORT, lambda s, m: None)
                outcome = await _send(
                    transport, "a.example", "b.example", QUERY_PORT, _payload()
                )
                assert outcome is SendOutcome.FAULT
                assert transport.stats.frames_rejected == 1
            finally:
                await transport.aclose()

        asyncio.run(main())


class _RecordingClock:
    """Clock wrapper that records every retry delay it is asked to schedule."""

    def __init__(self, inner):
        self.inner = inner
        self.delays: list[float] = []

    @property
    def now(self):
        return self.inner.now

    def schedule(self, delay, callback):
        self.delays.append(round(delay, 9))
        self.inner.schedule(delay, callback)

    def schedule_at(self, time, callback):
        self.inner.schedule_at(time, callback)


POLICY = RetryPolicy(
    max_attempts=3, base_delay=0.02, multiplier=2.0, max_delay=0.1,
    jitter=0.5, seed=42,
)


class TestReliableChannelOnAsyncio:
    """DESIGN.md §4.6 retry semantics must hold identically off the simulator."""

    async def _final(self, channel, *args) -> SendOutcome:
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        channel.send(*args, on_final=fut.set_result)
        return await asyncio.wait_for(fut, 10.0)

    def test_refused_never_retried(self):
        async def main():
            transport = await _transport("a.example", "b.example")
            try:
                channel = ReliableChannel(transport, transport.clock, POLICY, name="t")
                outcome = await self._final(
                    channel, "a.example", "b.example", FIRST_RESULT_PORT, _payload()
                )
                assert outcome is SendOutcome.REFUSED
                assert transport.stats.retried_sends == 0
                assert channel.pending_sends() == 0
            finally:
                await transport.aclose()

        asyncio.run(main())

    def test_exhaustion_is_terminal(self):
        async def main():
            transport = await _transport("a.example", "b.example")
            try:
                channel = ReliableChannel(transport, transport.clock, POLICY, name="t")
                outcome = await self._final(
                    channel, "a.example", "b.example", QUERY_PORT, _payload()
                )
                assert outcome is SendOutcome.HOST_DOWN
                assert transport.stats.retried_sends == POLICY.max_attempts - 1
                assert transport.stats.retries_exhausted == 1
                assert channel.pending_sends() == 0
            finally:
                await transport.aclose()

        asyncio.run(main())

    def test_retry_recovers_after_restart(self):
        async def main():
            transport = await _transport("a.example", "b.example")
            try:
                generous = RetryPolicy(
                    max_attempts=6, base_delay=0.05, multiplier=1.5,
                    max_delay=0.3, jitter=0.0, seed=1,
                )
                channel = ReliableChannel(transport, transport.clock, generous, name="t")
                loop = asyncio.get_running_loop()
                fut: asyncio.Future = loop.create_future()
                channel.send(
                    "a.example", "b.example", QUERY_PORT, _payload(),
                    on_final=fut.set_result,
                )
                # The site comes up while retries are in flight.
                await asyncio.sleep(0.08)
                transport.listen("b.example", QUERY_PORT, lambda s, m: None)
                assert await asyncio.wait_for(fut, 10.0) is SendOutcome.DELIVERED
                assert transport.stats.retried_sends >= 1
            finally:
                await transport.aclose()

        asyncio.run(main())

    def test_seeded_backoff_identical_on_both_transports(self):
        """Same policy seed + channel name ⇒ the same backoff schedule,
        whether the transport is the simulator or real sockets."""
        # Simulator: the destination is down, every attempt is HOST_DOWN.
        sim_clock = SimClock()
        sim_net = Network(sim_clock, TrafficStats())
        sim_net.register_site("a.example")
        sim_net.register_site("b.example")
        sim_net.set_site_down("b.example")
        recording_sim = _RecordingClock(sim_clock)
        sim_channel = ReliableChannel(sim_net, recording_sim, POLICY, name="t")
        sim_channel.send("a.example", "b.example", QUERY_PORT, _payload())
        sim_clock.run()

        # Asyncio: the daemon port is never bound — also HOST_DOWN each try.
        async def main() -> list[float]:
            transport = await _transport("a.example", "b.example")
            try:
                recording = _RecordingClock(transport.clock)
                channel = ReliableChannel(transport, recording, POLICY, name="t")
                loop = asyncio.get_running_loop()
                fut: asyncio.Future = loop.create_future()
                channel.send(
                    "a.example", "b.example", QUERY_PORT, _payload(),
                    on_final=fut.set_result,
                )
                await asyncio.wait_for(fut, 10.0)
                return recording.delays
            finally:
                await transport.aclose()

        aio_delays = asyncio.run(main())
        assert recording_sim.delays == aio_delays
        assert len(aio_delays) == POLICY.max_attempts - 1


class TestChaosRules:
    def test_guaranteed_drop_window(self):
        plan = FaultPlan(seed=9).drop(1.0, start=1.0, end=2.0)
        rules = ChaosRules.from_plan(plan)
        assert rules.verdict("a", "b", QUERY_PORT, 0.5) is None
        assert rules.verdict("a", "b", QUERY_PORT, 1.5) in ("swallow", "reset")
        assert rules.verdict("a", "b", QUERY_PORT, 2.5) is None

    def test_partition_severs_by_envelope_source(self):
        plan = FaultPlan(seed=9).partition(["a"], ["b"], start=0.0, end=5.0)
        rules = ChaosRules.from_plan(plan)
        assert rules.verdict("a", "b", QUERY_PORT, 1.0) in ("swallow", "reset")
        assert rules.verdict("c", "b", QUERY_PORT, 1.0) is None

    def test_time_scale_maps_plan_windows_to_wall_clock(self):
        plan = (
            FaultPlan(seed=9)
            .drop(1.0, start=1.0, end=2.0)
            .crash("x", at=2.0, restart_at=3.0)
        )
        rules = ChaosRules.from_plan(plan, time_scale=0.5)
        # Wall 0.75s = plan 1.5s: inside the window.
        assert rules.verdict("a", "b", QUERY_PORT, 0.75) is not None
        assert rules.verdict("a", "b", QUERY_PORT, 1.25) is None
        assert rules.crash_schedule() == (("x", 1.0, 1.5),)

    def test_seeded_verdicts_reproducible(self):
        plan = FaultPlan(seed=7).drop(0.5, end=10.0)
        draws = [
            tuple(
                ChaosRules.from_plan(plan).verdict("a", "b", QUERY_PORT, 1.0)
                for __ in range(32)
            )
            for __ in range(2)
        ]
        assert draws[0] == draws[1]


class TestChaosProxyWire:
    def test_swallowed_frame_times_out_then_heals(self):
        """A frame the proxy eats never acks (FAULT at the sender); once
        the window closes the same link delivers."""

        async def main():
            plan = FaultPlan(seed=3).drop(1.0, end=0.35)
            transport = await _transport(
                "a.example", "b.example",
                config=NetworkConfig(read_timeout=0.25, connect_timeout=0.5),
                chaos=ChaosRules.from_plan(plan),
            )
            try:
                seen = []
                transport.listen(
                    "b.example", QUERY_PORT, lambda src, msg: seen.append(msg)
                )
                first = await _send(
                    transport, "a.example", "b.example", QUERY_PORT, _payload(1)
                )
                assert first in (SendOutcome.FAULT, SendOutcome.HOST_DOWN)
                assert seen == []
                await asyncio.sleep(0.4)  # window closes
                second = await _send(
                    transport, "a.example", "b.example", QUERY_PORT, _payload(2)
                )
                assert second is SendOutcome.DELIVERED
                assert seen == [_payload(2)]
                summary = transport.chaos_summary()
                assert summary["frames_swallowed"] + summary["connections_reset"] >= 1
                assert summary["frames_forwarded"] >= 1
            finally:
                await transport.aclose()

        asyncio.run(main())

    def test_clean_rules_pass_everything_through(self):
        async def main():
            transport = await _transport(
                "a.example", "b.example", chaos=ChaosRules(seed=0)
            )
            try:
                transport.listen("b.example", QUERY_PORT, lambda s, m: None)
                for i in range(3):
                    assert (
                        await _send(
                            transport, "a.example", "b.example", QUERY_PORT, _payload(i)
                        )
                        is SendOutcome.DELIVERED
                    )
                summary = transport.chaos_summary()
                assert summary["frames_forwarded"] == 3
                assert summary["frames_swallowed"] == 0
                assert summary["connections_reset"] == 0
            finally:
                await transport.aclose()

        asyncio.run(main())

    def test_proxy_is_in_path(self):
        # The advertised port and the inner upstream port must differ —
        # otherwise chaos could be bypassed by the transport dialing direct.
        async def main():
            transport = await _transport(
                "a.example", "b.example", chaos=ChaosRules(seed=0)
            )
            try:
                transport.listen("b.example", QUERY_PORT, lambda s, m: None)
                proxy = transport._proxies[("b.example", QUERY_PORT)]
                assert isinstance(proxy, ChaosProxy)
                advertised = transport.port_map.lookup("b.example", QUERY_PORT)
                assert advertised is not None
                assert advertised != proxy.upstream_port
            finally:
                await transport.aclose()

        asyncio.run(main())


def _small_web():
    builder = WebBuilder()
    builder.site("root.example").page(
        "/", title="root",
        links=[("one", "http://one.example/"), ("two", "http://two.example/")],
    )
    builder.site("one.example").page("/", title="one", emphasized=[("b", "answer 1")])
    builder.site("two.example").page("/", title="two", emphasized=[("b", "answer 2")])
    return builder.build()


SMALL_QUERY = (
    'select d.url, r.text\n'
    'from document d such that "http://root.example/" G d,\n'
    '     relinfon r such that r.delimiter = "b"\n'
    'where r.text contains "answer"'
)


def _retrying_config(seed: int = 0) -> EngineConfig:
    return EngineConfig(
        transport="asyncio",
        retry_policy=RetryPolicy(
            max_attempts=5, base_delay=0.05, multiplier=1.8, max_delay=0.5,
            jitter=0.3, seed=seed,
        ),
    )


def _distinct(handle) -> set:
    return {(label, row.header, row.values) for label, row, __ in handle.results}


class TestAsyncioEngine:
    def test_fault_free_run_matches_simulator(self):
        sim = WebDisEngine(_small_web(), config=EngineConfig())
        sim_handle = sim.submit_disql(SMALL_QUERY)
        sim.run()
        assert sim_handle.status is QueryStatus.COMPLETE

        async def main():
            engine = AsyncioWebDisEngine(
                _small_web(), config=_retrying_config(), trace=True
            )
            try:
                handle = engine.submit_disql(SMALL_QUERY)
                await engine.run([handle], timeout=30.0)
                assert handle.status is QueryStatus.COMPLETE
                assert check_run(engine, [handle]) == []
                return _distinct(handle)
            finally:
                await engine.aclose()

        assert asyncio.run(main()) == _distinct(sim_handle)

    def test_build_engine_dispatches_on_transport(self):
        assert isinstance(build_engine(_small_web()), WebDisEngine)

        async def main():
            engine = build_engine(_small_web(), config=_retrying_config())
            assert isinstance(engine, AsyncioWebDisEngine)
            await engine.aclose()

        asyncio.run(main())

    def test_central_fallback_rejected(self):
        async def main():
            with pytest.raises(SimulationError, match="central_fallback"):
                AsyncioWebDisEngine(
                    _small_web(),
                    config=EngineConfig(transport="asyncio", central_fallback=True),
                )

        asyncio.run(main())

    def test_crash_and_restart_recovers(self):
        """A leaf's sockets die for real mid-run; the supervisor re-forwards
        after restart and the query still completes with full rows."""

        async def main():
            engine = AsyncioWebDisEngine(
                _small_web(), config=_retrying_config(seed=1), trace=True
            )
            try:
                supervisor = QuerySupervisor(
                    engine.client,
                    RecoveryPolicy(
                        quiet_timeout=0.4, max_recoveries=5,
                        backoff_multiplier=1.3, deadline=25.0,
                    ),
                )
                engine.crash_server("one.example")
                handle = engine.submit_disql(SMALL_QUERY)
                supervisor.supervise(handle)
                engine.restart_server("one.example", at=engine.clock.now + 0.5)
                await engine.run([handle], timeout=30.0)
                assert handle.status in (QueryStatus.COMPLETE, QueryStatus.PARTIAL)
                assert check_run(engine, [handle]) == []
                if handle.status is QueryStatus.PARTIAL:
                    coverage = supervisor.coverage(handle)
                    assert coverage.unreachable_sites
                return handle.recovery_epoch, _distinct(handle)

            finally:
                await engine.aclose()

        __, rows = asyncio.run(main())
        # Soundness either way: nothing invented beyond the reference rows.
        sim = WebDisEngine(_small_web(), config=EngineConfig())
        sim_handle = sim.submit_disql(SMALL_QUERY)
        sim.run()
        assert rows <= _distinct(sim_handle)

    def test_apply_faults_directs_to_chaos(self):
        async def main():
            engine = AsyncioWebDisEngine(_small_web(), config=_retrying_config())
            try:
                with pytest.raises(SimulationError, match="chaos"):
                    engine.apply_faults(FaultPlan(seed=0).drop(0.5))
            finally:
                await engine.aclose()

        asyncio.run(main())
