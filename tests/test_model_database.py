"""Tests for virtual-relation construction (the Database Constructor)."""

from __future__ import annotations

from repro.html.generator import PageSpec, render_page
from repro.model import LinkType
from repro.model.database import DatabaseConstructor, build_node_database
from repro.urlutils import Url, parse_url

URL = parse_url("http://a.example/dir/page.html")


def _db(spec: PageSpec, url: Url = URL):
    return build_node_database(url, render_page(spec))


class TestDocumentRelation:
    def test_single_row(self):
        db = _db(PageSpec(title="T"))
        assert len(db.document) == 1

    def test_url_and_title(self):
        row = next(_db(PageSpec(title="My Title")).document.rows())
        assert row[0] == str(URL)
        assert row[1] == "My Title"

    def test_length_is_html_size(self):
        html = render_page(PageSpec(title="T"))
        db = build_node_database(URL, html)
        assert next(db.document.rows())[3] == len(html)


class TestAnchorRelation:
    def test_link_types_classified(self):
        spec = PageSpec(
            title="t",
            links=[
                ("global", "http://b.example/"),
                ("local", "/other.html"),
                ("relative-local", "sibling.html"),
                ("interior", "#top"),
            ],
        )
        db = _db(spec)
        types = [row[3] for row in db.anchor.rows()]
        assert types == ["G", "L", "L", "I"]

    def test_base_column_is_document_url(self):
        db = _db(PageSpec(title="t", links=[("x", "/y")]))
        assert next(db.anchor.rows())[1] == str(URL)

    def test_relative_href_resolved(self):
        db = _db(PageSpec(title="t", links=[("x", "sibling.html")]))
        assert next(db.anchor.rows())[2] == "http://a.example/dir/sibling.html"

    def test_outgoing_links_filter(self):
        spec = PageSpec(title="t", links=[("g", "http://b.example/"), ("l", "/x")])
        db = _db(spec)
        assert len(db.outgoing_links(LinkType.GLOBAL)) == 1
        assert len(db.outgoing_links(LinkType.LOCAL)) == 1
        assert db.outgoing_links(LinkType.INTERIOR) == []

    def test_unresolvable_href_skipped(self):
        html = '<html><body><a href="">empty</a><a href="/ok">ok</a></body></html>'
        db = build_node_database(URL, html)
        assert len(db.anchor) == 1


class TestRelInfonRelation:
    def test_infon_rows(self):
        db = _db(PageSpec(title="t", emphasized=[("b", "hello world")]))
        rows = [r for r in db.relinfon.rows() if r[0] == "b"]
        assert rows and rows[0][2] == "hello world"

    def test_infon_length(self):
        db = _db(PageSpec(title="t", emphasized=[("b", "abc")]))
        row = [r for r in db.relinfon.rows() if r[0] == "b"][0]
        assert row[3] == 3

    def test_infon_url_matches_document(self):
        db = _db(PageSpec(title="t", ruled=["X"]))
        assert all(r[1] == str(URL) for r in db.relinfon.rows())


class TestConstructorCache:
    def test_no_cache_rebuilds(self):
        constructor = DatabaseConstructor(cache_size=0)
        html = render_page(PageSpec(title="t"))
        constructor.construct(URL, html)
        constructor.construct(URL, html)
        assert constructor.builds == 2
        assert constructor.cache_hits == 0

    def test_cache_hit(self):
        constructor = DatabaseConstructor(cache_size=4)
        html = render_page(PageSpec(title="t"))
        first = constructor.construct(URL, html)
        second = constructor.construct(URL, html)
        assert first is second
        assert constructor.builds == 1
        assert constructor.cache_hits == 1

    def test_cache_eviction_lru(self):
        constructor = DatabaseConstructor(cache_size=1)
        html = render_page(PageSpec(title="t"))
        other = parse_url("http://a.example/other")
        constructor.construct(URL, html)
        constructor.construct(other, html)
        constructor.construct(URL, html)  # evicted, rebuilt
        assert constructor.builds == 3

    def test_fragment_ignored_in_cache_key(self):
        constructor = DatabaseConstructor(cache_size=4)
        html = render_page(PageSpec(title="t"))
        a = constructor.construct(URL, html)
        b = constructor.construct(URL.with_fragment("x"), html)
        assert a is b

    def test_purge(self):
        constructor = DatabaseConstructor(cache_size=4)
        html = render_page(PageSpec(title="t"))
        constructor.construct(URL, html)
        constructor.purge()
        constructor.construct(URL, html)
        assert constructor.builds == 2

    def test_tuple_count(self):
        db = _db(PageSpec(title="t", links=[("x", "/y")], emphasized=[("b", "z")]))
        assert db.tuple_count() == len(db.document) + len(db.anchor) + len(db.relinfon)


class TestBaseHrefResolution:
    def test_relative_links_resolve_against_base(self):
        html = (
            '<html><head><base href="http://cdn.example/assets/"></head>'
            '<body><a href="style.css">s</a></body></html>'
        )
        db = build_node_database(URL, html)
        assert next(db.anchor.rows())[2] == "http://cdn.example/assets/style.css"

    def test_ltype_still_relative_to_document(self):
        # The destination lands on another host: that's a GLOBAL link even
        # though the href was written relative (to the <base>).
        html = (
            '<html><head><base href="http://cdn.example/"></head>'
            '<body><a href="x.html">x</a></body></html>'
        )
        db = build_node_database(URL, html)
        assert next(db.anchor.rows())[3] == "G"

    def test_base_on_same_host_keeps_local(self):
        html = (
            '<html><head><base href="/deep/dir/"></head>'
            '<body><a href="x.html">x</a></body></html>'
        )
        db = build_node_database(URL, html)
        row = next(db.anchor.rows())
        assert row[2] == "http://a.example/deep/dir/x.html"
        assert row[3] == "L"

    def test_unparseable_base_ignored(self):
        html = (
            '<html><head><base href=""></head>'
            '<body><a href="x.html">x</a></body></html>'
        )
        db = build_node_database(URL, html)
        assert next(db.anchor.rows())[2] == "http://a.example/dir/x.html"
