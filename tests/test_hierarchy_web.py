"""Tests for the hierarchical web generator."""

from __future__ import annotations

import pytest

from repro import QueryStatus, WebDisEngine
from repro.urlutils import parse_url
from repro.web.hierarchy import (
    HierarchyConfig,
    build_hierarchy_web,
    hierarchy_root_url,
    sites_at_depth,
)


class TestShape:
    def test_site_count_formula(self):
        config = HierarchyConfig(depth=2, fanout=3, leaf_pages=1)
        web = build_hierarchy_web(config)
        assert len(web.site_names) == config.site_count() == 1 + 3 + 9

    def test_pages_per_site(self):
        config = HierarchyConfig(depth=1, fanout=2, leaf_pages=3)
        web = build_hierarchy_web(config)
        for site_name in web.site_names:
            assert len(web.site(site_name)) == 1 + 3  # homepage + content

    def test_root_exists(self):
        web = build_hierarchy_web(HierarchyConfig(depth=1))
        assert web.resolves(parse_url(hierarchy_root_url()))

    def test_children_reachable_via_global_links(self):
        config = HierarchyConfig(depth=1, fanout=2, leaf_pages=1)
        web = build_hierarchy_web(config)
        links = web.out_links(parse_url(hierarchy_root_url()))
        global_targets = {str(u) for u, t in links if t == "G"}
        assert global_targets == {
            "http://org-0.example/",
            "http://org-1.example/",
        }

    def test_leaves_have_no_global_links(self):
        config = HierarchyConfig(depth=1, fanout=2, leaf_pages=1)
        web = build_hierarchy_web(config)
        leaf_links = web.out_links(parse_url("http://org-0.example/"))
        assert all(t != "G" for __, t in leaf_links)

    def test_sites_at_depth(self):
        config = HierarchyConfig(depth=3, fanout=3)
        assert sites_at_depth(config, 0) == 1
        assert sites_at_depth(config, 3) == 27
        assert sites_at_depth(config, 4) == 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            HierarchyConfig(fanout=0)

    def test_deterministic(self):
        config = HierarchyConfig(depth=2, fanout=2)
        a = build_hierarchy_web(config)
        b = build_hierarchy_web(config)
        assert a.total_bytes() == b.total_bytes()


class TestQueries:
    def test_level_markers_reachable(self):
        config = HierarchyConfig(depth=2, fanout=2, leaf_pages=2)
        web = build_hierarchy_web(config)
        engine = WebDisEngine(web)
        handle = engine.run_query(
            'select d.url, r.text\n'
            f'from document d such that "{hierarchy_root_url()}" (G*2).(L*1) d,\n'
            '     relinfon r such that r.delimiter = "b"\n'
            'where r.text contains "marker level-2"'
        )
        assert handle.status is QueryStatus.COMPLETE
        assert len(handle.unique_rows()) == 4 * 2  # 4 depth-2 sites x 2 pages
