"""Tests for PRE operations: derivatives, nullability, subsumption, rewrite."""

from __future__ import annotations

import pytest

from repro.model.relations import LinkType
from repro.pre import (
    LogComparison,
    accepts,
    advance,
    compare_for_log,
    decompose_repeat_head,
    enumerate_paths,
    first_symbols,
    nullable,
    parse_pre,
    pre_size,
    rewrite_superset,
)
from repro.pre.ast import EMPTY, NEVER, Never

L = LinkType.LOCAL
G = LinkType.GLOBAL
I = LinkType.INTERIOR


def paths(text: str, max_len: int = 4) -> set[str]:
    return {
        "".join(s.value for s in p) for p in enumerate_paths(parse_pre(text), max_len)
    }


class TestNullable:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("N", True),
            ("G", False),
            ("L*4", True),
            ("L*", True),
            ("G.L", False),
            ("N|G", True),
            ("G.(L*1)", False),
            ("(L*2).(G*3)", True),
        ],
    )
    def test_nullable(self, text, expected):
        assert nullable(parse_pre(text)) is expected

    def test_never_not_nullable(self):
        assert not nullable(NEVER)


class TestFirstSymbols:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("G", {G}),
            ("N", set()),
            ("G|L", {G, L}),
            ("L*2.G", {L, G}),  # L*2 is nullable, so G is reachable first
            ("G.L", {G}),
            ("N|G.(L*4)", {G}),
        ],
    )
    def test_first(self, text, expected):
        assert set(first_symbols(parse_pre(text))) == expected


class TestAdvance:
    def test_atom_consumed(self):
        assert advance(parse_pre("G"), G) == EMPTY

    def test_atom_mismatch_is_never(self):
        assert isinstance(advance(parse_pre("G"), L), Never)

    def test_concat_steps_head(self):
        assert advance(parse_pre("G.L"), G) == parse_pre("L")

    def test_bounded_repeat_steps_down(self):
        assert advance(parse_pre("L*4"), L) == parse_pre("L*3")

    def test_repeat_to_empty(self):
        assert advance(parse_pre("L*1"), L) == EMPTY

    def test_unbounded_repeat_stable(self):
        assert advance(parse_pre("L*"), L) == parse_pre("L*")

    def test_alt_advances_both(self):
        pre = parse_pre("G.L|G.G")
        assert advance(pre, G) == parse_pre("L|G")

    def test_nullable_head_skipped(self):
        # L*2.G can start with G because L*2 is nullable.
        assert advance(parse_pre("L*2.G"), G) == EMPTY

    def test_paper_g_l1(self):
        pre = parse_pre("G.(L*1)")
        after_g = advance(pre, G)
        assert after_g == parse_pre("L*1")
        assert nullable(after_g)
        assert advance(after_g, L) == EMPTY

    def test_interior_symbol(self):
        assert advance(parse_pre("I.G"), I) == parse_pre("G")


class TestAccepts:
    @pytest.mark.parametrize(
        "text,path,expected",
        [
            ("N|G.(L*4)", "", True),
            ("N|G.(L*4)", "G", True),
            ("N|G.(L*4)", "GLLLL", True),
            ("N|G.(L*4)", "GLLLLL", False),
            ("N|G.(L*4)", "L", False),
            ("G.(G|L)", "GG", True),
            ("G.(G|L)", "GL", True),
            ("G.(G|L)", "G", False),
            ("L*", "LLLLLLLL", True),
        ],
    )
    def test_accepts(self, text, path, expected):
        symbols = [LinkType.from_symbol(c) for c in path]
        assert accepts(parse_pre(text), symbols) is expected


class TestEnumeratePaths:
    def test_bounded_set(self):
        assert paths("G.(G|L)") == {"GG", "GL"}

    def test_zero_length_included(self):
        assert "" in paths("N|G")

    def test_star_bounded_by_max_len(self):
        assert paths("L*", max_len=3) == {"", "L", "LL", "LLL"}

    def test_repeat_counts(self):
        assert paths("L*2") == {"", "L", "LL"}


class TestDecompose:
    def test_repeat_only(self):
        head = decompose_repeat_head(parse_pre("L*3"))
        assert head is not None
        assert head.bound == 3 and head.tail == EMPTY

    def test_repeat_with_tail(self):
        head = decompose_repeat_head(parse_pre("L*3.G"))
        assert head is not None
        assert head.tail == parse_pre("G")

    def test_unbounded(self):
        head = decompose_repeat_head(parse_pre("L*"))
        assert head is not None and head.bound is None

    def test_non_repeat_shapes(self):
        assert decompose_repeat_head(parse_pre("G.L")) is None
        assert decompose_repeat_head(parse_pre("G")) is None
        assert decompose_repeat_head(EMPTY) is None


class TestLogComparison:
    def test_exact_duplicate(self):
        pre = parse_pre("G.L")
        assert compare_for_log(pre, pre) is LogComparison.DUPLICATE

    def test_smaller_bound_subsumed(self):
        # Paper: rem L*1.G arriving after L*2.G logged -> drop.
        assert (
            compare_for_log(parse_pre("L*1.G"), parse_pre("L*2.G"))
            is LogComparison.DUPLICATE
        )

    def test_equal_bound_subsumed(self):
        assert (
            compare_for_log(parse_pre("L*2.G"), parse_pre("L*2.G"))
            is LogComparison.DUPLICATE
        )

    def test_larger_bound_superset(self):
        # Paper: rem L*4.G arriving after L*2.G logged -> rewrite.
        assert (
            compare_for_log(parse_pre("L*4.G"), parse_pre("L*2.G"))
            is LogComparison.SUPERSET
        )

    def test_unbounded_supersedes_bounded(self):
        assert (
            compare_for_log(parse_pre("L*"), parse_pre("L*3"))
            is LogComparison.SUPERSET
        )

    def test_bounded_subsumed_by_unbounded(self):
        assert (
            compare_for_log(parse_pre("L*3"), parse_pre("L*"))
            is LogComparison.DUPLICATE
        )

    def test_different_body_unrelated(self):
        assert (
            compare_for_log(parse_pre("G*2.L"), parse_pre("L*2.L"))
            is LogComparison.UNRELATED
        )

    def test_different_tail_unrelated(self):
        assert (
            compare_for_log(parse_pre("L*2.G"), parse_pre("L*2.I"))
            is LogComparison.UNRELATED
        )

    def test_non_repeat_unrelated(self):
        assert (
            compare_for_log(parse_pre("G.L"), parse_pre("G.G"))
            is LogComparison.UNRELATED
        )


class TestRewrite:
    def test_paper_rewrite(self):
        rewritten = rewrite_superset(parse_pre("L*4.G"))
        assert str(rewritten) == "L.L*3.G"

    def test_rewrite_not_nullable(self):
        # Forcing the node to act as a PureRouter.
        assert not nullable(rewrite_superset(parse_pre("L*4")))

    def test_rewrite_unbounded(self):
        assert str(rewrite_superset(parse_pre("L*"))) == "L.L*"

    def test_rewrite_language_smaller_by_epsilon_only(self):
        original = parse_pre("L*3")
        rewritten = rewrite_superset(original)
        original_paths = enumerate_paths(original, 4)
        rewritten_paths = enumerate_paths(rewritten, 4)
        assert rewritten_paths == original_paths - {()}

    def test_rewrite_requires_shape(self):
        with pytest.raises(ValueError):
            rewrite_superset(parse_pre("G.L"))

    def test_rewritten_advance_recovers_shape(self):
        # After one L, the rewritten clone looks like L*3.G again, so the
        # *next* site's log table can compare it (multi-rewrite behaviour).
        rewritten = rewrite_superset(parse_pre("L*4.G"))
        assert advance(rewritten, L) == parse_pre("L*3.G")


class TestPreSize:
    def test_atom(self):
        assert pre_size(parse_pre("G")) == 1

    def test_grows_with_structure(self):
        assert pre_size(parse_pre("N|G.(L*4)")) > pre_size(parse_pre("G.L"))
