"""Tests for the standalone HTML run report."""

from __future__ import annotations

from repro import WebDisEngine
from repro.html.parser import parse_html
from repro.report_html import render_run_report
from repro.web.campus import CAMPUS_QUERY_DISQL


def _report(campus_web, trace=True):
    engine = WebDisEngine(campus_web, trace=trace)
    handle = engine.run_query(CAMPUS_QUERY_DISQL)
    return render_run_report(engine, handle, title="campus run")


class TestRenderRunReport:
    def test_is_complete_html_document(self, campus_web):
        html = _report(campus_web)
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")

    def test_contains_results(self, campus_web):
        html = _report(campus_web)
        assert "CONVENER Jayant Haritsa" in html
        assert "q2" in html

    def test_contains_formalism(self, campus_web):
        html = _report(campus_web)
        assert "Q = http://www.csa.iisc.ernet.in/" in html

    def test_contains_trace_when_enabled(self, campus_web):
        html = _report(campus_web, trace=True)
        assert "Traversal" in html
        assert "duplicate-dropped" in html or "answered" in html

    def test_no_trace_section_when_disabled(self, campus_web):
        html = _report(campus_web, trace=False)
        assert "<h2>Traversal</h2>" not in html

    def test_traffic_summary_present(self, campus_web):
        html = _report(campus_web)
        assert "documents_shipped" in html
        assert "Messages by kind" in html

    def test_parses_with_own_parser(self, campus_web):
        # Eat our own dogfood: the report must survive the library's parser.
        doc = parse_html(_report(campus_web))
        assert doc.title == "campus run"
        assert "CONVENER Jayant Haritsa" in doc.text

    def test_escaping(self, campus_web):
        engine = WebDisEngine(campus_web)
        handle = engine.run_query(
            'select d.text from document d such that'
            ' "http://www.iisc.ernet.in/" N d'
        )
        html = render_run_report(engine, handle, title="<script>alert(1)</script>")
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html
