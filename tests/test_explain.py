"""Tests for the paper-formalism explain output."""

from __future__ import annotations

from repro.disql import compile_disql, explain_webquery, format_node_query
from tests.test_disql_parser import EXAMPLE_2


class TestExplain:
    def test_headline_matches_paper(self):
        text = explain_webquery(compile_disql(EXAMPLE_2))
        first = text.splitlines()[0]
        # Paper: Q = http://csa.iisc.ernet.in  L  q1  G.(L*1)  q2
        assert first == "Q = http://csa.iisc.ernet.in/  L  q1  G.L*1  q2"

    def test_lists_each_node_query(self):
        text = explain_webquery(compile_disql(EXAMPLE_2))
        assert "where q1 is" in text
        assert "where q2 is" in text
        assert 'd0.title contains "lab"' in text

    def test_multiple_start_nodes(self):
        query = compile_disql(
            'select d.url from document d such that'
            ' "http://a.example/" | "http://b.example/" G d'
        )
        headline = explain_webquery(query).splitlines()[0]
        assert "http://a.example/ | http://b.example/" in headline

    def test_node_query_without_where(self):
        query = compile_disql(
            'select a.href from document d such that "http://a.example/" L d, anchor a'
        )
        rendered = format_node_query(query.steps[0].query)
        assert "where" not in rendered
        assert "document d,\n     anchor a" in rendered

    def test_sitewide_shown(self):
        query = compile_disql(
            "select d.url, e.url\n"
            'from document d such that "http://a.example/" L d,\n'
            "     document e such that sitewide\n"
            'where e.title contains "contact"'
        )
        rendered = format_node_query(query.steps[0].query)
        assert "document e such that sitewide" in rendered

    def test_fuzzy_contains_rendered(self):
        query = compile_disql(
            'select d.url from document d such that "http://a.example/" L d\n'
            'where d.title contains~2 "convener"'
        )
        assert "contains~2" in explain_webquery(query)
