"""Property tests for the log table's ``A*m·B`` subsumption analysis.

Unit level: random bodies, tails and bounds drive
:func:`repro.pre.ops.compare_for_log` and
:func:`repro.pre.ops.rewrite_superset`; the classification must match the
bound arithmetic (``None`` = unbounded), and the multi-rewrite must
preserve the language it is allowed to drop nothing from —
``A*m·B  =  B  ∪  A·A*(m-1)·B``, the rewritten clone covering exactly the
paths with at least one leading repetition.

Engine level: the rewrite-and-forward path (log table on, which rewrites
superset arrivals and drops duplicates) must produce the same distinct
result set as the same query with the log table disabled, fault-free, on
randomly generated webs.  Bounded repeats only — without the log table an
unbounded PRE never terminates on a cyclic web.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.config import EngineConfig
from repro.core.engine import WebDisEngine
from repro.model.relations import LinkType
from repro.pre.ast import Atom, alt, concat, repeat
from repro.pre.automaton import language_equivalent
from repro.pre.ops import LogComparison, compare_for_log, nullable, rewrite_superset
from repro.testing import build_web, generate_case

ATOMS = st.sampled_from([Atom(LinkType.LOCAL), Atom(LinkType.GLOBAL), Atom(LinkType.INTERIOR)])

# Non-nullable repeat bodies: atoms and two-way alternations of atoms.
bodies = st.one_of(
    ATOMS,
    st.tuples(ATOMS, ATOMS).map(lambda pair: alt(pair)),
)

# Tails: empty (pure A*m), one atom, or atom·atom.
tails = st.one_of(
    st.just(()),
    ATOMS.map(lambda a: (a,)),
    st.tuples(ATOMS, ATOMS),
)

bounds = st.one_of(st.none(), st.integers(1, 5))


def _bound_le(m, n):
    if n is None:
        return True
    if m is None:
        return False
    return m <= n


class TestCompareForLog:
    @settings(max_examples=300, deadline=None)
    @given(body=bodies, tail=tails, m=bounds, n=bounds)
    def test_same_shape_classified_by_bound(self, body, tail, m, n):
        incoming = concat((repeat(body, m), *tail))
        logged = concat((repeat(body, n), *tail))
        expected = (
            LogComparison.DUPLICATE if _bound_le(m, n) else LogComparison.SUPERSET
        )
        assert compare_for_log(incoming, logged) == expected

    @settings(max_examples=200, deadline=None)
    @given(body=bodies, tail=tails, m=bounds)
    def test_exact_match_is_duplicate(self, body, tail, m):
        pre = concat((repeat(body, m), *tail))
        assert compare_for_log(pre, pre) == LogComparison.DUPLICATE

    @settings(max_examples=200, deadline=None)
    @given(body=bodies, tail=tails.filter(bool), m=bounds, n=bounds)
    def test_different_tail_unrelated(self, body, tail, m, n):
        incoming = concat((repeat(body, m), *tail))
        logged = repeat(body, n)
        if incoming == logged:  # smart constructors may collapse the shapes
            return
        assert compare_for_log(incoming, logged) == LogComparison.UNRELATED


class TestRewriteSuperset:
    @settings(max_examples=200, deadline=None)
    @given(body=bodies, tail=tails, m=bounds)
    def test_rewrite_preserves_language_modulo_tail(self, body, tail, m):
        """``A*m·B  ≡  B | A·A*(m-1)·B`` — the rewrite drops exactly the
        zero-repetition branch, which the logged clone already covers."""
        original = concat((repeat(body, m), *tail))
        rewritten = rewrite_superset(original)
        zero_branch = concat(tail)
        assert language_equivalent(alt((zero_branch, rewritten)), original)

    @settings(max_examples=200, deadline=None)
    @given(body=bodies, tail=tails, m=bounds)
    def test_rewrite_is_a_pure_router(self, body, tail, m):
        """The rewritten PRE starts with a mandatory body traversal: the
        rewritten clone is strictly narrower than the original."""
        original = concat((repeat(body, m), *tail))
        rewritten = rewrite_superset(original)
        assert not nullable(rewritten)
        # Re-classifying against the original log entry can only find
        # DUPLICATE or UNRELATED, never SUPERSET again (no rewrite loops).
        assert compare_for_log(rewritten, original) != LogComparison.SUPERSET


def _distinct_rows(handle):
    return {(label, row.header, row.values) for label, row, __ in handle.results}


class TestEngineEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 400), m=st.integers(1, 3))
    def test_log_table_rewrites_lose_no_rows(self, seed, m):
        """Fault-free, the rewrite-and-forward path returns the same
        distinct rows as the raw (log-disabled) traversal."""
        spec = generate_case(seed)
        query = (
            "select d.url, d.title\n"
            f'from document d such that "http://s0.example/" (L|G)*{m} d'
        )
        results = {}
        for flag in (True, False):
            engine = WebDisEngine(
                build_web(spec), config=EngineConfig(log_table_enabled=flag)
            )
            handle = engine.submit_disql(query)
            engine.run()
            results[flag] = _distinct_rows(handle)
        assert results[True] == results[False]
