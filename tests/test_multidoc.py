"""Multi-document node-queries (§7.1 footnote 2 — the sitewide extension)."""

from __future__ import annotations

import pytest

from repro import QueryStatus, WebDisEngine
from repro.baselines import DataShippingEngine, HybridEngine
from repro.disql import compile_disql, format_disql, parse_disql
from repro.errors import DisqlSemanticsError, DisqlSyntaxError
from repro.model.database import build_documents_table, build_node_database
from repro.relational.expr import Attr, Compare, Literal
from repro.relational.query import NodeQuery, TableDecl, evaluate_node_query
from repro.urlutils import parse_url
from repro.web.builders import WebBuilder
from repro.wire import decode_message, encode_message
from repro.core.webquery import QueryClone


def _dept_web():
    """Two department sites; pages reference a sitewide 'contact' page.

    The query: find pages whose title mentions 'projects', and — at the
    same site — the site's contact page (a second document alias).
    """
    builder = WebBuilder()
    for name in ("alpha", "beta"):
        site = builder.site(f"{name}.example")
        site.page(
            "/",
            title=f"{name} department",
            links=[("projects", "/projects.html"), ("contact", "/contact.html")],
        )
        site.page(
            "/projects.html",
            title=f"{name} projects overview",
            paragraphs=["Ongoing research projects."],
        )
        site.page(
            "/contact.html",
            title=f"contact the {name} office",
            paragraphs=[f"Write to office@{name}.example."],
        )
    return builder.build()


MULTIDOC_QUERY = (
    "select d.url, e.url, e.title\n"
    'from document d such that "http://alpha.example/" | "http://beta.example/" L*1 d,\n'
    "     document e such that sitewide\n"
    'where d.title contains "projects" and e.title contains "contact"'
)


class TestRelationalLayer:
    URL = parse_url("http://alpha.example/projects.html")

    def _site_table(self):
        web = _dept_web()
        site = web.site("alpha.example")
        return build_documents_table(
            [(site.url_of(p), pg.html) for p, pg in sorted(site.pages.items())]
        )

    def _db(self):
        web = _dept_web()
        return build_node_database(self.URL, web.html_for(self.URL))

    def test_sitewide_join(self):
        query = NodeQuery(
            select=(Attr("d", "url"), Attr("e", "url")),
            tables=(TableDecl("document", "d"), TableDecl("document", "e")),
            where=Compare("=", Attr("e", "title"), Literal("contact the alpha office")),
            sitewide_aliases=("e",),
        )
        rows = evaluate_node_query(query, self._db(), self._site_table())
        assert [r.values for r in rows] == [
            (
                "http://alpha.example/projects.html",
                "http://alpha.example/contact.html",
            )
        ]

    def test_sitewide_without_table_raises(self):
        query = NodeQuery(
            select=(Attr("e", "url"),),
            tables=(TableDecl("document", "e"),),
            sitewide_aliases=("e",),
        )
        with pytest.raises(DisqlSemanticsError):
            evaluate_node_query(query, self._db(), None)

    def test_undeclared_sitewide_alias_rejected(self):
        with pytest.raises(DisqlSemanticsError):
            NodeQuery(
                select=(Attr("d", "url"),),
                tables=(TableDecl("document", "d"),),
                sitewide_aliases=("z",),
            )

    def test_non_document_sitewide_rejected(self):
        with pytest.raises(DisqlSemanticsError):
            NodeQuery(
                select=(Attr("a", "href"),),
                tables=(TableDecl("anchor", "a"),),
                sitewide_aliases=("a",),
            )

    def test_documents_table_one_row_per_page(self):
        assert len(self._site_table()) == 3


class TestDisqlSurface:
    def test_parse_sitewide(self):
        query = parse_disql(MULTIDOC_QUERY)
        decls = query.subqueries[0].decls
        assert decls[1].sitewide and decls[1].alias == "e"

    def test_translate_sets_aliases(self):
        webquery = compile_disql(MULTIDOC_QUERY)
        assert webquery.steps[0].query.sitewide_aliases == ("e",)

    def test_sitewide_on_relinfon_rejected(self):
        with pytest.raises(DisqlSyntaxError):
            parse_disql(
                'select r.text from document d such that "http://a.example/" L d,\n'
                "     relinfon r such that sitewide"
            )

    def test_formatter_round_trip(self):
        parsed = parse_disql(MULTIDOC_QUERY)
        assert parse_disql(format_disql(parsed)) == parsed

    def test_wire_round_trip(self):
        webquery = compile_disql(MULTIDOC_QUERY)
        clone = QueryClone(
            webquery, 0, webquery.steps[0].pre, (parse_url("http://alpha.example/"),)
        )
        decoded = decode_message(encode_message(clone))
        assert decoded == clone
        assert decoded.query.steps[0].query.sitewide_aliases == ("e",)


class TestEndToEnd:
    EXPECTED = {
        (
            "http://alpha.example/projects.html",
            "http://alpha.example/contact.html",
            "contact the alpha office",
        ),
        (
            "http://beta.example/projects.html",
            "http://beta.example/contact.html",
            "contact the beta office",
        ),
    }

    def test_distributed(self):
        engine = WebDisEngine(_dept_web())
        handle = engine.run_query(MULTIDOC_QUERY)
        assert handle.status is QueryStatus.COMPLETE
        assert {r.values for r in handle.unique_rows()} == self.EXPECTED

    def test_data_shipping_agrees(self):
        result = DataShippingEngine(_dept_web()).run_query(MULTIDOC_QUERY)
        assert {r.values for r in result.unique_rows()} == self.EXPECTED

    def test_hybrid_agrees_at_zero_participation(self):
        hybrid = HybridEngine(_dept_web(), [])
        handle = hybrid.run_query(MULTIDOC_QUERY)
        assert handle.status is QueryStatus.COMPLETE
        assert {r.values for r in handle.unique_rows()} == self.EXPECTED

    def test_join_stays_site_local(self):
        """alpha's projects page must never join with beta's contact page."""
        engine = WebDisEngine(_dept_web())
        handle = engine.run_query(MULTIDOC_QUERY)
        for row in handle.unique_rows():
            d_host = row.values[0].split("://")[1].split("/")[0]
            e_host = row.values[1].split("://")[1].split("/")[0]
            assert d_host == e_host
