"""Tests for the web substrate: sites, builders, generators."""

from __future__ import annotations

import pytest

from repro.errors import WebDisError
from repro.html.generator import PageSpec
from repro.urlutils import parse_url
from repro.web import (
    SyntheticWebConfig,
    Web,
    WebBuilder,
    build_campus_web,
    build_figure1_web,
    build_figure5_web,
    build_synthetic_web,
)
from repro.web.site import Page, Site
from repro.web.synthetic import synthetic_start_url


class TestPageAndSite:
    def test_page_requires_exactly_one_source(self):
        with pytest.raises(WebDisError):
            Page("/x")
        with pytest.raises(WebDisError):
            Page("/x", spec=PageSpec(title="t"), html="<html></html>")

    def test_page_path_must_be_absolute(self):
        with pytest.raises(WebDisError):
            Page("x.html", html="<html></html>")

    def test_lazy_render_cached(self):
        page = Page("/x", spec=PageSpec(title="T"))
        assert page.html is page.html

    def test_site_duplicate_path_rejected(self):
        site = Site("a.example")
        site.add(Page("/x", html="<p>1</p>"))
        with pytest.raises(WebDisError):
            site.add(Page("/x", html="<p>2</p>"))

    def test_site_name_lowercased(self):
        assert Site("A.Example").name == "a.example"

    def test_url_of(self):
        assert str(Site("a.example").url_of("/x")) == "http://a.example/x"


class TestWeb:
    def _web(self):
        builder = WebBuilder()
        builder.site("a.example").page("/", title="root", links=[("x", "/x.html")])
        builder.site("a.example").page("/x.html", title="x")
        builder.site("b.example").page("/", title="b root")
        return builder.build()

    def test_html_for(self):
        web = self._web()
        assert web.html_for(parse_url("http://a.example/")) is not None

    def test_html_for_missing_page(self):
        assert self._web().html_for(parse_url("http://a.example/zzz")) is None

    def test_html_for_missing_site(self):
        assert self._web().html_for(parse_url("http://zzz.example/")) is None

    def test_fragment_ignored(self):
        web = self._web()
        assert web.html_for(parse_url("http://a.example/#frag")) is not None

    def test_duplicate_site_rejected(self):
        web = Web()
        web.add_site(Site("a.example"))
        with pytest.raises(WebDisError):
            web.add_site(Site("a.example"))

    def test_ensure_site_idempotent(self):
        web = Web()
        assert web.ensure_site("x.example") is web.ensure_site("x.example")

    def test_urls_sorted_deterministic(self):
        urls = [str(u) for u in self._web().urls()]
        assert urls == sorted(urls)

    def test_page_count_and_bytes(self):
        web = self._web()
        assert web.page_count() == 3
        assert web.total_bytes() > 0

    def test_out_links_classified(self):
        web = self._web()
        links = web.out_links(parse_url("http://a.example/"))
        assert [(str(u), t) for u, t in links] == [("http://a.example/x.html", "L")]

    def test_to_networkx(self):
        graph = self._web().to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.has_edge("http://a.example/", "http://a.example/x.html")


class TestSyntheticWeb:
    def test_deterministic_in_seed(self):
        config = SyntheticWebConfig(sites=3, pages_per_site=3, seed=5)
        a = build_synthetic_web(config)
        b = build_synthetic_web(config)
        assert [str(u) for u in a.urls()] == [str(u) for u in b.urls()]
        assert a.total_bytes() == b.total_bytes()

    def test_different_seeds_differ(self):
        a = build_synthetic_web(SyntheticWebConfig(sites=3, pages_per_site=4, seed=1))
        b = build_synthetic_web(SyntheticWebConfig(sites=3, pages_per_site=4, seed=2))
        assert a.total_bytes() != b.total_bytes()

    def test_size_parameters(self):
        web = build_synthetic_web(SyntheticWebConfig(sites=4, pages_per_site=5))
        assert len(web.site_names) == 4
        assert web.page_count() == 20

    def test_padding_grows_corpus(self):
        small = build_synthetic_web(SyntheticWebConfig(padding_words=10, seed=3))
        big = build_synthetic_web(SyntheticWebConfig(padding_words=500, seed=3))
        assert big.total_bytes() > small.total_bytes() * 2

    def test_no_self_global_links(self):
        config = SyntheticWebConfig(sites=3, pages_per_site=2, seed=9)
        web = build_synthetic_web(config)
        for url in web.urls():
            for href, ltype in web.out_links(url):
                if ltype == "G":
                    assert href.host != url.host

    def test_floating_fraction_creates_dangling(self):
        config = SyntheticWebConfig(sites=3, pages_per_site=3, floating_fraction=0.5, seed=11)
        web = build_synthetic_web(config)
        dangling = sum(
            1
            for url in web.urls()
            for href, __ in web.out_links(url)
            if not web.resolves(href.without_fragment())
        )
        assert dangling > 0

    def test_zero_floating_all_resolve(self):
        config = SyntheticWebConfig(sites=3, pages_per_site=3, seed=11)
        web = build_synthetic_web(config)
        for url in web.urls():
            for href, __ in web.out_links(url):
                assert web.resolves(href.without_fragment())

    def test_start_url(self):
        assert synthetic_start_url(SyntheticWebConfig()) == "http://site000.example/"

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SyntheticWebConfig(sites=0)
        with pytest.raises(ValueError):
            SyntheticWebConfig(topic_fraction=1.5)


class TestFixtureWebs:
    def test_campus_shape(self):
        web = build_campus_web()
        assert len(web.site_names) == 5
        assert web.resolves(parse_url("http://www.csa.iisc.ernet.in/Labs"))
        assert web.resolves(parse_url("http://dsl.serc.iisc.ernet.in/people"))

    def test_campus_labs_page_title_contains_lab(self):
        from repro.html.parser import parse_html

        web = build_campus_web()
        html = web.html_for(parse_url("http://www.csa.iisc.ernet.in/Labs"))
        assert "lab" in parse_html(html).title.lower()

    def test_figure1_nine_nodes(self):
        assert build_figure1_web().page_count() == 9

    def test_figure5_shape(self):
        web = build_figure5_web()
        assert web.resolves(parse_url("http://site-four.example/"))
        # Exactly four pages link to node 4 (visits a + b + c,d,e sources).
        pointers = sum(
            1
            for url in web.urls()
            for href, __ in web.out_links(url)
            if href.host == "site-four.example"
        )
        assert pointers == 5
